"""Incremental re-analysis: patching round analyses through a delta.

The Figure 8 loop — renumber → analyze → color → spill → repeat —
rebuilt every analysis from scratch each round, although
:func:`~repro.regalloc.spill.insert_spill_code` never changes control
flow and rewrites only the blocks where a spilled live range occurs.
PR-3 patched the previous round's analyses through a
:class:`~repro.regalloc.spill.SpillDelta`; this module generalizes the
same machinery to an arbitrary :class:`~repro.ir.diff.FunctionDelta`,
so *source edits* (the session layer, :mod:`repro.service.session`)
patch analyses the same way spill rounds do:

* **CFG and loop nest** are reused outright while the delta leaves the
  edge set alone, and rebuilt (they are cheap) when it does not;
* **liveness** re-derives gen/kill summaries only for touched blocks
  and re-solves a worklist over masks translated through the delta's
  register rename;
* **interference** re-scans only touched blocks; untouched blocks'
  one-sided row contributions are translated and re-merged;
* **spill costs** re-scan only touched blocks; untouched contributions
  are renamed and re-summed.

Why translation + a monotone worklist is exact: the rename maps every
surviving live range bijectively, and a register that occurs in any
untouched block has — by per-register separability of liveness (the
bits of ``v`` depend only on ``v``'s own occurrences and the CFG) —
exactly the same bits it had before, under the rename.  Registers
whose occurrences may have changed (they occur in a touched or removed
base block) must not be re-iterated from the stale solution, because a
stale "live" bit can sustain itself around a cycle; their bits are
dropped from every translated seed, leaving a start point *below* the
new fixed point, and the worklist monotonically re-adds exactly what
the re-scanned blocks expose.  The fixed point of the (monotone,
finite) system is unique, so the patched solution equals the
from-scratch one bit for bit.  Spill rounds are the special case where
only the spilled ranges are unstable and they vanish entirely, so
seeding the worklist from the touched blocks alone suffices; source
edits re-enqueue every block (one cheap sweep over translated masks)
because an unstable register may also occur in untouched blocks.
Untouched interference rows additionally require the block's live-out
set to survive the edit unchanged — checked per block with one mask
compare (spill insertion cannot change a survivor's liveness, so the
spill path skips the gate) — and cost tables require the block's loop
frequency to survive, checked when the loop nest was rebuilt.

Any violated assumption — web splits, unreachable blocks, missing
per-block state, an inconsistent delta, or a delta touching more than
:data:`EDIT_TOUCHED_BAILOUT` of the blocks — makes the patchers return
``None`` and the caller falls back to a from-scratch
:func:`~repro.regalloc.base.compute_round_analyses`.

The escape hatches: ``REPRO_INCREMENTAL_ROUNDS`` governs spill rounds
and ``REPRO_INCREMENTAL_EDITS`` the session layer; both accept
``0``/``off``/``false`` (disable) and ``validate`` (run both paths,
raise on any divergence — the property suites run under it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.analysis import matrix
from repro.analysis.indexing import index_function
from repro.analysis.interference import (
    InterferenceGraph,
    finish_interference,
    scan_block_rows,
)
from repro.analysis.liveness import LazySetsLiveness, Liveness, _block_masks
from repro.analysis.renumber import RenumberResult
from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.config import knob_env
from repro.errors import AllocationError
from repro.ir.diff import FunctionDelta
from repro.ir.function import Function
from repro.ir.instructions import Move
from repro.ir.values import PReg, VReg
from repro.profiling import phase
from repro.regalloc.costs import block_spill_costs
from repro.regalloc.spill import SpillDelta

__all__ = [
    "PatchedAnalyses",
    "apply_spill_delta",
    "apply_function_delta",
    "incremental_mode",
    "incremental_edits_mode",
    "parse_incremental",
    "compare_analyses",
    "EDIT_TOUCHED_BAILOUT",
]

#: A :class:`FunctionDelta` touching more than this fraction of the new
#: function's blocks is not worth patching through — translation plus
#: re-scan would approach the cost of a from-scratch analysis, so the
#: patcher bails out conservatively.
EDIT_TOUCHED_BAILOUT = 0.5


def parse_incremental(raw: str) -> str:
    """Normalize an incremental-mode setting to on/off/validate."""
    raw = str(raw).strip().lower()
    if raw in {"0", "off", "false", "no"}:
        return "off"
    if raw == "validate":
        return "validate"
    return "on"


def incremental_mode() -> str:
    """``"on"`` (default), ``"off"``, or ``"validate"``.

    Controlled by the ``REPRO_INCREMENTAL_ROUNDS`` environment variable;
    any of ``0``/``off``/``false``/``no`` disables the incremental path.
    This is only the *environment default* — an explicit
    ``AllocationOptions.incremental`` always wins (the options loader
    :meth:`repro.regalloc.base.AllocationOptions.from_env` reads the
    same variable).
    """
    return parse_incremental(knob_env("REPRO_INCREMENTAL_ROUNDS", "1"))


def incremental_edits_mode() -> str:
    """The ``REPRO_INCREMENTAL_EDITS`` default for the session layer.

    Same grammar as :func:`incremental_mode`; an explicit
    ``AllocationOptions.incremental_edits`` always wins.
    """
    return parse_incremental(knob_env("REPRO_INCREMENTAL_EDITS", "1"))


@dataclass(eq=False)
class PatchedAnalyses:
    """The analyses a delta patch produced for the new round.

    ``cfg``/``loops`` are the tables valid for the patched function —
    the previous round's objects when the delta left the edge set
    alone, freshly built otherwise.
    """

    liveness: Liveness
    ig: InterferenceGraph
    spill_costs: dict[VReg, float]
    block_rows: dict[str, dict[int, int]]
    block_costs: dict[str, dict[VReg, float]]
    cfg: CFG | None = None
    loops: LoopInfo | None = None


@dataclass(eq=False)
class _PatchPlan:
    """How one delta maps onto the shared patch core.

    The spill plan and the edit plan differ only in flags: the spill
    path seeds its worklist from touched blocks alone and skips the
    reuse gates (its invariants make them vacuous), the edit path
    re-enqueues every block and gates row/cost reuse.
    """

    touched: set[str]
    rename: dict
    dropped: Iterable[VReg]
    cfg: CFG
    loops: LoopInfo
    #: spill mode: a survivor missing from the rename means the delta
    #: lied — bail instead of dropping
    strict: bool = True
    #: ignore the old solution entirely (the edge set changed, so stale
    #: bits need not sit below the new fixed point)
    seed_zero: bool = False
    #: enqueue every block, not just touched ones
    worklist_all: bool = False
    #: *base-side* labels whose registers' seed bits are unsafe
    stale_labels: frozenset = frozenset()
    #: compare each untouched block's live-out before reusing its rows
    gate_rows: bool = False
    #: compare each untouched block's loop frequency before reusing its
    #: cost table
    gate_costs: bool = False


def apply_spill_delta(
    func: Function,
    prev,
    delta: SpillDelta,
    renumbering: RenumberResult,
) -> PatchedAnalyses | None:
    """Patch ``prev`` (a ``RoundAnalyses``) through one spill round.

    ``func`` has already been rewritten by spill insertion *and*
    renumbered; ``renumbering`` is that renumber's result.  Returns
    ``None`` whenever an assumption the patch relies on does not hold,
    in which case the caller recomputes from scratch.

    The ``REPRO_DATAFLOW`` backend applies here too: the numpy variant
    translates every untouched mask through one batched column permute
    and re-solves with matrix sweeps, the int variant keeps the
    chunk-memoized scalar translation and worklist, and ``validate``
    runs both and raises on any divergence — so PR-3's byte-identical
    guarantee is enforced across backends, not just across rounds.
    """
    # A split web means renaming is not a bijection on survivors.
    if any(count != 1 for count in renumbering.split_counts.values()):
        return None
    fdelta = FunctionDelta.from_spill(delta, renumbering)

    def run(use_matrix: bool) -> PatchedAnalyses | None:
        plan = _PatchPlan(
            touched=set(fdelta.touched_blocks),
            rename=fdelta.rename,
            dropped=fdelta.deleted_vregs,
            cfg=prev.cfg,
            loops=prev.loops,
        )
        return _apply_delta(func, prev, plan, use_matrix)

    return _run_backends(run, "spill-delta")


def apply_function_delta(
    func: Function,
    prev,
    fdelta: FunctionDelta,
) -> PatchedAnalyses | None:
    """Patch ``prev`` (a ``RoundAnalyses``) through an edit delta.

    ``func`` is the new version, already prepared and renumbered;
    ``fdelta`` must come from a renumbered-mode
    :func:`~repro.ir.diff.diff_functions` of the previously analyzed
    function against ``func``.  Returns ``None`` when the delta is
    inconsistent, touches more than :data:`EDIT_TOUCHED_BAILOUT` of the
    blocks, or violates a patch precondition.
    """
    if not fdelta.consistent:
        return None
    if fdelta.touched_fraction(len(func.blocks)) > EDIT_TOUCHED_BAILOUT:
        return None

    with phase("patch"):
        if fdelta.changed_edges:
            with phase("cfg"):
                cfg = build_cfg(func)
                loops = compute_loops(cfg)
        else:
            cfg, loops = prev.cfg, prev.loops

        def run(use_matrix: bool) -> PatchedAnalyses | None:
            plan = _PatchPlan(
                touched=set(fdelta.touched_blocks) | set(fdelta.added_blocks),
                rename=fdelta.rename,
                dropped=fdelta.deleted_vregs,
                cfg=cfg,
                loops=loops,
                strict=False,
                seed_zero=fdelta.changed_edges,
                worklist_all=True,
                stale_labels=frozenset(fdelta.touched_blocks)
                | frozenset(fdelta.removed_blocks),
                gate_rows=True,
                gate_costs=fdelta.changed_edges,
            )
            return _apply_delta(func, prev, plan, use_matrix)

        return _run_backends(run, "edit-delta")


def _run_backends(run, what: str) -> PatchedAnalyses | None:
    """Dispatch a patch body over the selected dataflow backend(s)."""
    mode = matrix.dataflow_mode()
    if mode == "int":
        return run(False)
    if mode == "numpy":
        return run(True)
    got = run(True)
    want = run(False)
    if (got is None) != (want is None):
        raise AllocationError(
            f"dataflow backends disagree on {what} preconditions"
        )
    if got is not None:
        problems = compare_analyses(got, want)
        if problems:
            raise AllocationError(
                f"dataflow backends diverged in {what} patch: "
                + "; ".join(problems)
            )
    return got


def _apply_delta(
    func: Function,
    prev,
    plan: _PatchPlan,
    use_matrix: bool,
) -> PatchedAnalyses | None:
    old_liv: Liveness = prev.liveness
    old_index = old_liv.index
    if (old_index is None or prev.block_rows is None
            or prev.block_costs is None or not old_liv.use_mask):
        return None
    cfg = plan.cfg
    loops = plan.loops
    blocks = func.block_map()
    # Renumber skips unreachable blocks, so their registers keep stale
    # names the rename map cannot translate.
    if len(cfg.reachable()) != len(blocks):
        return None

    touched = plan.touched
    dropped = set(plan.dropped)
    rename = plan.rename

    # --- old dense id -> new dense bit (0 drops the register) ----------
    # The canonical index of the rewritten function: building it fresh
    # (one linear walk) is what makes every downstream mask, adjacency
    # insertion order, and node order byte-identical to from-scratch.
    index = index_function(func)
    new_ids = index.ids
    trans = [0] * len(old_index)
    #: old dense id -> new dense id (-1 drops), the batched-translation
    #: twin of ``trans``
    trans_pos = [-1] * len(old_index)
    for old_id, reg in enumerate(old_index.regs):
        if isinstance(reg, PReg):
            new = reg
        elif reg in dropped:
            continue
        else:
            new = rename.get(reg)
            if new is None:
                if plan.strict:
                    return None
                continue  # occurs only in re-scanned blocks: rediscover
        new_id = new_ids.get(new)
        if new_id is None:
            if plan.strict:
                return None
            continue  # no longer occurs anywhere in the new version
        trans[old_id] = 1 << new_id
        trans_pos[old_id] = new_id

    # Masks within one function repeat heavily — live-through sets and
    # interference rows of neighboring blocks share almost all their
    # bits — so translation is memoized on 32-bit chunks: each distinct
    # (offset, chunk) pair is expanded bit-by-bit once and every later
    # occurrence is a single dict hit.  This turns the dominant cost of
    # the patch (a full pass over all untouched masks) from
    # O(total set bits) into roughly O(distinct chunks).
    chunk_cache: dict[int, int] = {}
    chunk_get = chunk_cache.get

    def translate(mask: int) -> int:
        out = 0
        base = 0
        while mask:
            chunk = mask & 0xFFFFFFFF
            if chunk:
                key = (base << 32) | chunk
                val = chunk_get(key)
                if val is None:
                    val = 0
                    c = chunk
                    while c:
                        low = c & -c
                        val |= trans[base + low.bit_length() - 1]
                        c ^= low
                    chunk_cache[key] = val
                out |= val
            mask >>= 32
            base += 32
        return out

    old_gen = old_liv.use_mask
    old_kill = old_liv.defs_mask
    old_in = old_liv.live_in_mask
    old_out = old_liv.live_out_mask

    # Seed bits of registers occurring in re-scanned base blocks are
    # unsafe: the edit may have removed the occurrence sustaining them,
    # and a stale bit can keep itself alive around a CFG cycle.  Drop
    # them before translation; the worklist re-adds the true bits.
    stale = 0
    for label in plan.stale_labels:
        stale |= old_gen.get(label, 0) | old_kill.get(label, 0)

    # --- liveness: reuse untouched summaries, re-solve the worklist ----
    with phase("liveness"):
        gen: dict[str, int] = {}
        kill: dict[str, int] = {}
        live_in: dict[str, int] = {}
        live_out: dict[str, int] = {}
        #: untouched label -> faithful translation of its old live-out
        #: (the row-reuse gate; unmasked, unlike the seeds)
        gate_out: dict[str, int] = {}
        if use_matrix:
            # One batched column permute translates every untouched
            # summary, gate mask, and the whole seed solution at once.
            to_translate: list[int] = []
            untouched_labels: list[str] = []
            for blk in func.blocks:
                label = blk.label
                if label not in touched:
                    g_old = old_gen.get(label)
                    if g_old is None:
                        return None
                    untouched_labels.append(label)
                    to_translate.append(g_old)
                    to_translate.append(old_kill[label])
                    to_translate.append(old_out[label])
            seed_base = len(to_translate)
            if not plan.seed_zero:
                for blk in func.blocks:
                    label = blk.label
                    to_translate.append(old_in.get(label, 0) & ~stale)
                    to_translate.append(old_out.get(label, 0) & ~stale)
            translated = matrix.translate_masks(
                to_translate, trans_pos, len(old_index), len(index)
            )
            summaries = {
                label: (translated[3 * i], translated[3 * i + 1])
                for i, label in enumerate(untouched_labels)
            }
            gate_out = {
                label: translated[3 * i + 2]
                for i, label in enumerate(untouched_labels)
            }
            for blk in func.blocks:
                label = blk.label
                if label in touched:
                    g, k, phi_defs = _block_masks(blk, index)
                    if phi_defs:
                        return None  # allocation-time funcs are phi-free
                    gen[label], kill[label] = g, k
                else:
                    gen[label], kill[label] = summaries[label]
            for j, blk in enumerate(func.blocks):
                if plan.seed_zero:
                    live_in[blk.label] = 0
                    live_out[blk.label] = 0
                else:
                    live_in[blk.label] = translated[seed_base + 2 * j]
                    live_out[blk.label] = translated[seed_base + 2 * j + 1]
        else:
            for blk in func.blocks:
                label = blk.label
                if label in touched:
                    g, k, phi_defs = _block_masks(blk, index)
                    if phi_defs:
                        return None  # allocation-time funcs are phi-free
                    gen[label], kill[label] = g, k
                else:
                    g_old = old_gen.get(label)
                    if g_old is None:
                        return None
                    gen[label] = translate(g_old)
                    kill[label] = translate(old_kill[label])
                    if plan.gate_rows:
                        gate_out[label] = translate(old_out[label])
            for blk in func.blocks:
                label = blk.label
                if plan.seed_zero:
                    live_in[label] = 0
                    live_out[label] = 0
                else:
                    live_in[label] = translate(old_in.get(label, 0) & ~stale)
                    live_out[label] = translate(old_out.get(label, 0) & ~stale)

        with phase("solve"):
            if use_matrix:
                # The translated seed sits below the new fixed point
                # (unstable bits dropped, survivors renamed), so matrix
                # sweeps converge to — and certify — the same unique
                # fixed point the scalar worklist reaches.
                live_in, live_out = matrix.sweep_liveness(
                    gen, kill, live_in, cfg.succs, len(index)
                )
            else:
                succs = cfg.succs
                preds = cfg.preds
                if plan.worklist_all:
                    pending = deque(cfg.postorder())
                else:
                    pending = deque(
                        lbl for lbl in cfg.postorder() if lbl in touched
                    )
                queued = set(pending)
                while pending:
                    label = pending.popleft()
                    queued.discard(label)
                    out = 0
                    for succ in succs[label]:
                        out |= live_in[succ]
                    new_in = gen[label] | (out & ~kill[label])
                    live_out[label] = out
                    if new_in != live_in[label]:
                        live_in[label] = new_in
                        for pred in preds[label]:
                            if pred not in queued:
                                queued.add(pred)
                                pending.append(pred)

        if use_matrix:
            # Set views materialize lazily — the spill-round loop only
            # reads the mask tables.
            liveness = LazySetsLiveness(index=index, live_in_mask=live_in,
                                        live_out_mask=live_out,
                                        use_mask=gen, defs_mask=kill)
            liveness.mark_pending()
        else:
            liveness = Liveness(index=index, live_in_mask=live_in,
                                live_out_mask=live_out, use_mask=gen,
                                defs_mask=kill)
            set_of = index.set_of
            for blk in func.blocks:
                label = blk.label
                liveness.live_in[label] = set_of(live_in[label])
                liveness.live_out[label] = set_of(live_out[label])
                liveness.use[label] = set_of(gen[label])
                liveness.defs[label] = set_of(kill[label])

    # An untouched block's row contributions replay its backward scan,
    # which starts from its live-out: reuse is exact only if that
    # live-out survived the edit (up to the rename).  Spill insertion
    # cannot change a survivor's liveness, so the gate is enabled only
    # for edit deltas.
    rescan_rows = set(touched)
    if plan.gate_rows:
        for blk in func.blocks:
            label = blk.label
            if label not in touched and gate_out[label] != live_out[label]:
                rescan_rows.add(label)

    # --- interference: translate untouched rows, re-scan the rest -----
    with phase("interference"):
        moves: list[Move] = []
        rows: dict[int, int] = {}
        block_rows: dict[str, dict[int, int]] = {}
        with phase("rows"):
            translated_rows: list[int] = []
            pending_rows: dict[str, list[tuple[int, int]]] = {}
            if use_matrix:
                # Gather every untouched row first so one batched
                # permute translates them all.
                row_masks: list[int] = []
                for blk in func.blocks:
                    label = blk.label
                    if label in rescan_rows:
                        continue
                    old_rows = prev.block_rows.get(label)
                    if old_rows is None:
                        return None
                    placed: list[tuple[int, int]] = []
                    for i, row in old_rows.items():
                        bit = trans[i]
                        if not bit:
                            continue  # a deleted register's row vanishes
                        placed.append((bit.bit_length() - 1,
                                       len(row_masks)))
                        row_masks.append(row)
                    pending_rows[label] = placed
                translated_rows = matrix.translate_masks(
                    row_masks, trans_pos, len(old_index), len(index)
                )
            for blk in func.blocks:
                label = blk.label
                local: dict[int, int] = {}
                if label in rescan_rows:
                    scan_block_rows(blk, index, live_out[label], local,
                                    moves)
                else:
                    if use_matrix:
                        for new_id, mi in pending_rows[label]:
                            local[new_id] = translated_rows[mi]
                    else:
                        old_rows = prev.block_rows.get(label)
                        if old_rows is None:
                            return None
                        for i, row in old_rows.items():
                            bit = trans[i]
                            if not bit:
                                # a deleted register's own row vanishes
                                continue
                            local[bit.bit_length() - 1] = translate(row)
                    # Renumber rewrites instructions in place, so the
                    # block's Move objects persist; collect them in
                    # builder order.
                    for instr in reversed(blk.instrs):
                        if isinstance(instr, Move):
                            moves.append(instr)
                block_rows[label] = local
                for i, row in local.items():
                    rows[i] = rows.get(i, 0) | row
        if use_matrix:
            sym = matrix.symmetrize_matrix(
                matrix.rows_matrix(rows, len(index)), len(index)
            )
            ig = InterferenceGraph(moves=moves, index=index,
                                   rows=matrix.MatrixRows(sym))
        else:
            ig = finish_interference(index, rows, moves)
        ig.block_rows = block_rows

    # --- spill costs: rename untouched contributions, re-scan touched --
    with phase("spill-costs"):
        costs: dict[VReg, float] = {}
        block_costs: dict[str, dict[VReg, float]] = {}
        for blk in func.blocks:
            label = blk.label
            rescan = label in touched
            if not rescan and plan.gate_costs \
                    and prev.loops.freq(label) != loops.freq(label):
                rescan = True
            if rescan:
                # Re-weight with the policy the retained analyses were
                # computed under, or patched and from-scratch costs
                # would disagree for non-default policies.
                local = block_spill_costs(blk, loops.freq(label),
                                          prev.policy)
            else:
                old_local = prev.block_costs.get(label)
                if old_local is None:
                    return None
                local = {}
                for v, c in old_local.items():
                    nv = rename.get(v)
                    if nv is None:
                        # A register without a rename can only occur in
                        # re-scanned blocks; reaching here means the
                        # delta lied.
                        return None
                    local[nv] = c
            block_costs[label] = local
            for v, c in local.items():
                costs[v] = costs.get(v, 0.0) + c
        for param in func.params:
            if isinstance(param, VReg):
                costs.setdefault(param, 0.0)

    return PatchedAnalyses(liveness=liveness, ig=ig, spill_costs=costs,
                           block_rows=block_rows, block_costs=block_costs,
                           cfg=cfg, loops=loops)


def _mask_divergence(p_mask: dict, f_mask: dict, index) -> str:
    """Locate the first block/register where two mask tables differ."""
    for label in f_mask:
        p = p_mask.get(label)
        if p != f_mask[label]:
            if p is None:
                return f" at block {label!r} (missing)"
            diff = p ^ f_mask[label]
            bit = (diff & -diff).bit_length() - 1
            reg = (index.regs[bit] if index is not None
                   and bit < len(index.regs) else f"bit {bit}")
            return f" at block {label!r}, first at {reg}"
    extra = sorted(set(p_mask) - set(f_mask))
    return f" (extra block {extra[0]!r})" if extra else ""


def _set_divergence(p_sets: dict, f_sets: dict) -> str:
    for label in f_sets:
        p = p_sets.get(label, set())
        if p != f_sets[label]:
            delta = sorted(p ^ f_sets[label], key=str)
            return f" at block {label!r}, first at {delta[0]}"
    return ""


def compare_analyses(patched, fresh) -> list[str]:
    """Differences between a patched and a from-scratch round analysis.

    Empty list means value-identical (including the node insertion order
    the allocators' tie-breaks depend on).  Each problem names the first
    divergent block/register so validate-mode failures are actionable.
    Used by validate mode and the property suite.
    """
    problems: list[str] = []
    p_liv, f_liv = patched.liveness, fresh.liveness
    index = getattr(f_liv, "index", None)
    for name in ("live_in_mask", "live_out_mask", "use_mask", "defs_mask"):
        p, f = getattr(p_liv, name), getattr(f_liv, name)
        if p != f:
            problems.append(
                f"liveness.{name} differs{_mask_divergence(p, f, index)}"
            )
    for name in ("live_in", "live_out", "use", "defs"):
        p, f = getattr(p_liv, name), getattr(f_liv, name)
        if p != f:
            problems.append(
                f"liveness.{name} differs{_set_divergence(p, f)}"
            )
    p_ig, f_ig = patched.ig, fresh.ig
    if list(p_ig.adjacency) != list(f_ig.adjacency):
        p_nodes, f_nodes = list(p_ig.adjacency), list(f_ig.adjacency)
        at = next(
            (i for i, (a, b) in enumerate(zip(p_nodes, f_nodes)) if a != b),
            min(len(p_nodes), len(f_nodes)),
        )
        where = (f" at position {at} ({p_nodes[at] if at < len(p_nodes) else '<end>'}"
                 f" vs {f_nodes[at] if at < len(f_nodes) else '<end>'})")
        problems.append(f"interference node order differs{where}")
    if p_ig.adjacency != f_ig.adjacency:
        detail = ""
        for node, f_row in f_ig.adjacency.items():
            p_row = p_ig.adjacency.get(node, set())
            if p_row != f_row:
                delta = sorted(p_row ^ f_row, key=str)
                detail = f" at {node}, first at {delta[0]}"
                break
        problems.append(f"interference adjacency differs{detail}")
    if [(m.dst, m.src) for m in p_ig.moves] != \
            [(m.dst, m.src) for m in f_ig.moves]:
        problems.append("move lists differ")
    if patched.spill_costs != fresh.spill_costs:
        detail = ""
        for v in sorted(set(patched.spill_costs) | set(fresh.spill_costs),
                        key=str):
            if patched.spill_costs.get(v) != fresh.spill_costs.get(v):
                detail = (f" at {v} ({patched.spill_costs.get(v)} vs "
                          f"{fresh.spill_costs.get(v)})")
                break
        problems.append(f"spill costs differ{detail}")
    if fresh.block_rows is not None and patched.block_rows != fresh.block_rows:
        detail = next(
            (f" at block {lbl!r}" for lbl in fresh.block_rows
             if patched.block_rows.get(lbl) != fresh.block_rows[lbl]),
            "",
        )
        problems.append(f"per-block interference rows differ{detail}")
    if (fresh.block_costs is not None
            and patched.block_costs != fresh.block_costs):
        detail = next(
            (f" at block {lbl!r}" for lbl in fresh.block_costs
             if patched.block_costs.get(lbl) != fresh.block_costs[lbl]),
            "",
        )
        problems.append(f"per-block cost tables differ{detail}")
    return problems
