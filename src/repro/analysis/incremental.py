"""Incremental re-analysis of spill rounds.

The Figure 8 loop — renumber → analyze → color → spill → repeat —
rebuilt every analysis from scratch each round, although
:func:`~repro.regalloc.spill.insert_spill_code` never changes control
flow and rewrites only the blocks where a spilled live range occurs.
This module patches the previous round's analyses through a
:class:`~repro.regalloc.spill.SpillDelta` instead:

* **CFG and loop nest** are reused outright (spill code is branch-free);
* **liveness** re-derives gen/kill summaries only for touched blocks and
  re-solves a worklist seeded from them, translating every untouched
  block's masks through the renumbering;
* **interference** re-scans only touched blocks; untouched blocks'
  one-sided row contributions are translated and re-merged;
* **spill costs** re-scan only touched blocks; untouched contributions
  are renamed and re-summed.

Why translation + a monotone worklist is exact: renumbering renames
every surviving live range bijectively (we bail out when any web
splits), and spill insertion leaves the occurrences of *surviving*
registers untouched — so each untouched block's gen/kill/row/cost
summaries are the old ones under the rename.  Deleted live ranges
(spilled or rematerialized — including a spilled parameter, whose old
whole-function range collapses to one entry-block store) must not be
re-iterated from the stale solution, because a stale "live" bit can
sustain itself around a cycle; instead their bits are dropped from every
translated mask, leaving a start point *below* the new fixed point, and
the worklist monotonically re-adds exactly what the touched blocks
expose.  The fixed point of the (monotone, finite) system is unique, so
the patched solution equals the from-scratch one bit for bit.

Any violated assumption — web splits, unreachable blocks, missing
per-block state — makes :func:`apply_spill_delta` return ``None`` and
the driver falls back to a from-scratch
:func:`~repro.regalloc.base.compute_round_analyses`.

The escape hatch: ``REPRO_INCREMENTAL_ROUNDS=0`` (or ``off``/``false``)
disables patching entirely; ``REPRO_INCREMENTAL_ROUNDS=validate`` runs
both paths every round and raises on any divergence (the property suite
runs under it).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass

from repro.analysis import matrix
from repro.analysis.indexing import index_function
from repro.analysis.interference import (
    InterferenceGraph,
    finish_interference,
    scan_block_rows,
)
from repro.analysis.liveness import LazySetsLiveness, Liveness, _block_masks
from repro.analysis.renumber import RenumberResult
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.instructions import Move
from repro.ir.values import PReg, VReg
from repro.profiling import phase
from repro.regalloc.costs import block_spill_costs
from repro.regalloc.spill import SpillDelta

__all__ = [
    "PatchedAnalyses",
    "apply_spill_delta",
    "incremental_mode",
    "parse_incremental",
    "compare_analyses",
]


def parse_incremental(raw: str) -> str:
    """Normalize an incremental-rounds setting to on/off/validate."""
    raw = str(raw).strip().lower()
    if raw in {"0", "off", "false", "no"}:
        return "off"
    if raw == "validate":
        return "validate"
    return "on"


def incremental_mode() -> str:
    """``"on"`` (default), ``"off"``, or ``"validate"``.

    Controlled by the ``REPRO_INCREMENTAL_ROUNDS`` environment variable;
    any of ``0``/``off``/``false``/``no`` disables the incremental path.
    This is only the *environment default* — an explicit
    ``AllocationOptions.incremental`` always wins (the options loader
    :meth:`repro.regalloc.base.AllocationOptions.from_env` reads the
    same variable).
    """
    return parse_incremental(os.environ.get("REPRO_INCREMENTAL_ROUNDS", "1"))


@dataclass(eq=False)
class PatchedAnalyses:
    """The analyses :func:`apply_spill_delta` produced for the new round."""

    liveness: Liveness
    ig: InterferenceGraph
    spill_costs: dict[VReg, float]
    block_rows: dict[str, dict[int, int]]
    block_costs: dict[str, dict[VReg, float]]


def apply_spill_delta(
    func: Function,
    prev,
    delta: SpillDelta,
    renumbering: RenumberResult,
) -> PatchedAnalyses | None:
    """Patch ``prev`` (a ``RoundAnalyses``) through one spill round.

    ``func`` has already been rewritten by spill insertion *and*
    renumbered; ``renumbering`` is that renumber's result.  Returns
    ``None`` whenever an assumption the patch relies on does not hold,
    in which case the caller recomputes from scratch.

    The ``REPRO_DATAFLOW`` backend applies here too: the numpy variant
    translates every untouched mask through one batched column permute
    and re-solves with matrix sweeps, the int variant keeps the
    chunk-memoized scalar translation and worklist, and ``validate``
    runs both and raises on any divergence — so PR-3's byte-identical
    guarantee is enforced across backends, not just across rounds.
    """
    mode = matrix.dataflow_mode()
    if mode == "int":
        return _apply_spill_delta(func, prev, delta, renumbering, False)
    if mode == "numpy":
        return _apply_spill_delta(func, prev, delta, renumbering, True)
    got = _apply_spill_delta(func, prev, delta, renumbering, True)
    want = _apply_spill_delta(func, prev, delta, renumbering, False)
    if (got is None) != (want is None):
        raise AllocationError(
            "dataflow backends disagree on spill-delta preconditions"
        )
    if got is not None:
        problems = compare_analyses(got, want)
        if problems:
            raise AllocationError(
                "dataflow backends diverged in spill-round patch: "
                + "; ".join(problems)
            )
    return got


def _apply_spill_delta(
    func: Function,
    prev,
    delta: SpillDelta,
    renumbering: RenumberResult,
    use_matrix: bool,
) -> PatchedAnalyses | None:
    old_liv: Liveness = prev.liveness
    old_index = old_liv.index
    if (old_index is None or prev.block_rows is None
            or prev.block_costs is None or not old_liv.use_mask):
        return None
    # A split web means renaming is not a bijection on survivors.
    if any(count != 1 for count in renumbering.split_counts.values()):
        return None
    cfg = prev.cfg
    blocks = func.block_map()
    # Renumber skips unreachable blocks, so their registers keep stale
    # names the rename map cannot translate.
    if len(cfg.reachable()) != len(blocks):
        return None

    touched = delta.touched_blocks
    deleted = delta.deleted_vregs
    rename = {w.original: w.reg for w in renumbering.webs}

    # --- old dense id -> new dense bit (0 drops the register) ----------
    # The canonical index of the rewritten function: building it fresh
    # (one linear walk) is what makes every downstream mask, adjacency
    # insertion order, and node order byte-identical to from-scratch.
    index = index_function(func)
    new_ids = index.ids
    trans = [0] * len(old_index)
    #: old dense id -> new dense id (-1 drops), the batched-translation
    #: twin of ``trans``
    trans_pos = [-1] * len(old_index)
    for old_id, reg in enumerate(old_index.regs):
        if isinstance(reg, PReg):
            new = reg
        elif reg in deleted:
            continue
        else:
            new = rename.get(reg)
            if new is None:
                return None
        new_id = new_ids.get(new)
        if new_id is None:
            return None
        trans[old_id] = 1 << new_id
        trans_pos[old_id] = new_id

    # Masks within one function repeat heavily — live-through sets and
    # interference rows of neighboring blocks share almost all their
    # bits — so translation is memoized on 32-bit chunks: each distinct
    # (offset, chunk) pair is expanded bit-by-bit once and every later
    # occurrence is a single dict hit.  This turns the dominant cost of
    # the patch (a full pass over all untouched masks) from
    # O(total set bits) into roughly O(distinct chunks).
    chunk_cache: dict[int, int] = {}
    chunk_get = chunk_cache.get

    def translate(mask: int) -> int:
        out = 0
        base = 0
        while mask:
            chunk = mask & 0xFFFFFFFF
            if chunk:
                key = (base << 32) | chunk
                val = chunk_get(key)
                if val is None:
                    val = 0
                    c = chunk
                    while c:
                        low = c & -c
                        val |= trans[base + low.bit_length() - 1]
                        c ^= low
                    chunk_cache[key] = val
                out |= val
            mask >>= 32
            base += 32
        return out

    # --- liveness: reuse untouched summaries, re-solve from touched ----
    with phase("liveness"):
        gen: dict[str, int] = {}
        kill: dict[str, int] = {}
        old_gen = old_liv.use_mask
        old_kill = old_liv.defs_mask
        old_in = old_liv.live_in_mask
        old_out = old_liv.live_out_mask
        live_in: dict[str, int] = {}
        live_out: dict[str, int] = {}
        if use_matrix:
            # One batched column permute translates every untouched
            # summary and the whole seed solution at once.
            to_translate: list[int] = []
            untouched_labels: list[str] = []
            for blk in func.blocks:
                label = blk.label
                if label not in touched:
                    g_old = old_gen.get(label)
                    if g_old is None:
                        return None
                    untouched_labels.append(label)
                    to_translate.append(g_old)
                    to_translate.append(old_kill[label])
            for blk in func.blocks:
                to_translate.append(old_in[blk.label])
                to_translate.append(old_out[blk.label])
            translated = matrix.translate_masks(
                to_translate, trans_pos, len(old_index), len(index)
            )
            summaries = {
                label: (translated[2 * i], translated[2 * i + 1])
                for i, label in enumerate(untouched_labels)
            }
            base = 2 * len(untouched_labels)
            for blk in func.blocks:
                label = blk.label
                if label in touched:
                    g, k, phi_defs = _block_masks(blk, index)
                    if phi_defs:
                        return None  # allocation-time funcs are phi-free
                    gen[label], kill[label] = g, k
                else:
                    gen[label], kill[label] = summaries[label]
            for j, blk in enumerate(func.blocks):
                live_in[blk.label] = translated[base + 2 * j]
                live_out[blk.label] = translated[base + 2 * j + 1]
        else:
            for blk in func.blocks:
                label = blk.label
                if label in touched:
                    g, k, phi_defs = _block_masks(blk, index)
                    if phi_defs:
                        return None  # allocation-time funcs are phi-free
                    gen[label], kill[label] = g, k
                else:
                    g_old = old_gen.get(label)
                    if g_old is None:
                        return None
                    gen[label] = translate(g_old)
                    kill[label] = translate(old_kill[label])
            for blk in func.blocks:
                label = blk.label
                live_in[label] = translate(old_in[label])
                live_out[label] = translate(old_out[label])

        with phase("solve"):
            if use_matrix:
                # The translated seed sits below the new fixed point
                # (deleted bits dropped, survivors renamed), so matrix
                # sweeps converge to — and certify — the same unique
                # fixed point the scalar worklist reaches.
                live_in, live_out = matrix.sweep_liveness(
                    gen, kill, live_in, cfg.succs, len(index)
                )
            else:
                succs = cfg.succs
                preds = cfg.preds
                pending = deque(
                    lbl for lbl in cfg.postorder() if lbl in touched
                )
                queued = set(pending)
                while pending:
                    label = pending.popleft()
                    queued.discard(label)
                    out = 0
                    for succ in succs[label]:
                        out |= live_in[succ]
                    new_in = gen[label] | (out & ~kill[label])
                    live_out[label] = out
                    if new_in != live_in[label]:
                        live_in[label] = new_in
                        for pred in preds[label]:
                            if pred not in queued:
                                queued.add(pred)
                                pending.append(pred)

        if use_matrix:
            # Set views materialize lazily — the spill-round loop only
            # reads the mask tables.
            liveness = LazySetsLiveness(index=index, live_in_mask=live_in,
                                        live_out_mask=live_out,
                                        use_mask=gen, defs_mask=kill)
            liveness.mark_pending()
        else:
            liveness = Liveness(index=index, live_in_mask=live_in,
                                live_out_mask=live_out, use_mask=gen,
                                defs_mask=kill)
            set_of = index.set_of
            for blk in func.blocks:
                label = blk.label
                liveness.live_in[label] = set_of(live_in[label])
                liveness.live_out[label] = set_of(live_out[label])
                liveness.use[label] = set_of(gen[label])
                liveness.defs[label] = set_of(kill[label])

    # --- interference: translate untouched rows, re-scan touched -------
    with phase("interference"):
        moves: list[Move] = []
        rows: dict[int, int] = {}
        block_rows: dict[str, dict[int, int]] = {}
        with phase("rows"):
            translated_rows: list[int] = []
            pending_rows: dict[str, list[tuple[int, int]]] = {}
            if use_matrix:
                # Gather every untouched row first so one batched
                # permute translates them all.
                row_masks: list[int] = []
                for blk in func.blocks:
                    label = blk.label
                    if label in touched:
                        continue
                    old_rows = prev.block_rows.get(label)
                    if old_rows is None:
                        return None
                    placed: list[tuple[int, int]] = []
                    for i, row in old_rows.items():
                        bit = trans[i]
                        if not bit:
                            continue  # a deleted register's row vanishes
                        placed.append((bit.bit_length() - 1,
                                       len(row_masks)))
                        row_masks.append(row)
                    pending_rows[label] = placed
                translated_rows = matrix.translate_masks(
                    row_masks, trans_pos, len(old_index), len(index)
                )
            for blk in func.blocks:
                label = blk.label
                local: dict[int, int] = {}
                if label in touched:
                    scan_block_rows(blk, index, live_out[label], local,
                                    moves)
                else:
                    if use_matrix:
                        for new_id, mi in pending_rows[label]:
                            local[new_id] = translated_rows[mi]
                    else:
                        old_rows = prev.block_rows.get(label)
                        if old_rows is None:
                            return None
                        for i, row in old_rows.items():
                            bit = trans[i]
                            if not bit:
                                # a deleted register's own row vanishes
                                continue
                            local[bit.bit_length() - 1] = translate(row)
                    # Renumber rewrites instructions in place, so the
                    # block's Move objects persist; collect them in
                    # builder order.
                    for instr in reversed(blk.instrs):
                        if isinstance(instr, Move):
                            moves.append(instr)
                block_rows[label] = local
                for i, row in local.items():
                    rows[i] = rows.get(i, 0) | row
        if use_matrix:
            sym = matrix.symmetrize_matrix(
                matrix.rows_matrix(rows, len(index)), len(index)
            )
            ig = InterferenceGraph(moves=moves, index=index,
                                   rows=matrix.MatrixRows(sym))
        else:
            ig = finish_interference(index, rows, moves)
        ig.block_rows = block_rows

    # --- spill costs: rename untouched contributions, re-scan touched --
    with phase("spill-costs"):
        loops = prev.loops
        costs: dict[VReg, float] = {}
        block_costs: dict[str, dict[VReg, float]] = {}
        for blk in func.blocks:
            label = blk.label
            if label in touched:
                local = block_spill_costs(blk, loops.freq(label))
            else:
                old_local = prev.block_costs.get(label)
                if old_local is None:
                    return None
                local = {}
                for v, c in old_local.items():
                    nv = rename.get(v)
                    if nv is None:
                        # A deleted register can only occur in touched
                        # blocks; reaching here means the delta lied.
                        return None
                    local[nv] = c
            block_costs[label] = local
            for v, c in local.items():
                costs[v] = costs.get(v, 0.0) + c
        for param in func.params:
            if isinstance(param, VReg):
                costs.setdefault(param, 0.0)

    return PatchedAnalyses(liveness=liveness, ig=ig, spill_costs=costs,
                           block_rows=block_rows, block_costs=block_costs)


def compare_analyses(patched, fresh) -> list[str]:
    """Differences between a patched and a from-scratch round analysis.

    Empty list means value-identical (including the node insertion order
    the allocators' tie-breaks depend on).  Used by validate mode and
    the property suite.
    """
    problems: list[str] = []
    p_liv, f_liv = patched.liveness, fresh.liveness
    for name in ("live_in", "live_out", "use", "defs",
                 "live_in_mask", "live_out_mask", "use_mask", "defs_mask"):
        if getattr(p_liv, name) != getattr(f_liv, name):
            problems.append(f"liveness.{name} differs")
    p_ig, f_ig = patched.ig, fresh.ig
    if list(p_ig.adjacency) != list(f_ig.adjacency):
        problems.append("interference node order differs")
    if p_ig.adjacency != f_ig.adjacency:
        problems.append("interference adjacency differs")
    if [(m.dst, m.src) for m in p_ig.moves] != \
            [(m.dst, m.src) for m in f_ig.moves]:
        problems.append("move lists differ")
    if patched.spill_costs != fresh.spill_costs:
        problems.append("spill costs differ")
    if fresh.block_rows is not None and patched.block_rows != fresh.block_rows:
        problems.append("per-block interference rows differ")
    if (fresh.block_costs is not None
            and patched.block_costs != fresh.block_costs):
        problems.append("per-block cost tables differ")
    return problems
