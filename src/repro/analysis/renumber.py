"""The *renumber* phase: split virtual registers into maximal webs.

Every allocator in the paper (Figures 1–3, 8) starts with "renumber":
rename each def-use web of a variable to its own live-range name so the
interference graph gets one node per web, not per source variable.

A web is a maximal set of defs and uses connected through du-chains: two
defs belong to the same web when some use is reached by both.  We compute
block-level reaching definitions with integer bitsets, walk each block to
attach reaching defs to uses, and union-find the defs.  Physical registers
are never renumbered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.analysis import CFG, build_cfg
from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import VReg

__all__ = ["Web", "RenumberResult", "renumber"]


@dataclass(eq=False)
class Web:
    """One allocatable live range after renumbering."""

    reg: VReg
    original: VReg
    n_defs: int = 0
    n_uses: int = 0


@dataclass(eq=False)
class RenumberResult:
    webs: list[Web] = field(default_factory=list)
    #: original vreg -> number of webs it split into
    split_counts: dict[VReg, int] = field(default_factory=dict)


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def renumber(func: Function, cfg: CFG | None = None) -> RenumberResult:
    """Rewrite ``func`` in place so each web has a unique virtual register."""
    if any(isinstance(i, Phi) for b in func.blocks for i in b.instrs):
        raise ValueError("renumber runs after out-of-SSA (phis present)")
    if cfg is None:
        cfg = build_cfg(func)

    # --- enumerate definition points ------------------------------------
    # A def point is (block, instr index, vreg); parameters and
    # never-defined uses get synthetic entry defs.
    defs: list[tuple[str, int, VReg]] = []
    def_ids_of: dict[VReg, list[int]] = {}

    def add_def(label: str, index: int, var: VReg) -> int:
        def_id = len(defs)
        defs.append((label, index, var))
        def_ids_of.setdefault(var, []).append(def_id)
        return def_id

    entry_label = func.entry.label
    synthetic: dict[VReg, int] = {}
    for param in func.params:
        synthetic[param] = add_def(entry_label, -1, param)
    for blk in func.blocks:
        for idx, instr in enumerate(blk.instrs):
            for d in instr.defs():
                if isinstance(d, VReg):
                    add_def(blk.label, idx, d)
    # Synthetic defs for uses that no real def can reach (defensive).
    for blk in func.blocks:
        for instr in blk.instrs:
            for u in instr.uses():
                if isinstance(u, VReg) and u not in def_ids_of:
                    synthetic[u] = add_def(entry_label, -1, u)

    n = len(defs)
    masks_of: dict[VReg, int] = {}
    for var, ids in def_ids_of.items():
        mask = 0
        for i in ids:
            mask |= 1 << i
        masks_of[var] = mask

    # --- block-level reaching definitions (bitsets) ----------------------
    gen: dict[str, int] = {}
    kill: dict[str, int] = {}
    for blk in func.blocks:
        g = 0
        killed_vars: set[VReg] = set()
        current: dict[VReg, int] = {}
        for def_id, (label, idx, var) in enumerate(defs):
            if label == blk.label:
                current[var] = def_id  # later defs overwrite: last wins
                killed_vars.add(var)
        for var, def_id in current.items():
            g |= 1 << def_id
        k = 0
        for var in killed_vars:
            k |= masks_of[var]
        k &= ~g
        gen[blk.label] = g
        kill[blk.label] = k

    reach_in: dict[str, int] = {blk.label: 0 for blk in func.blocks}
    reach_out: dict[str, int] = {
        blk.label: gen[blk.label] for blk in func.blocks
    }
    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for label in order:
            rin = 0
            for pred in cfg.preds[label]:
                rin |= reach_out[pred]
            rout = gen[label] | (rin & ~kill[label])
            if rin != reach_in[label] or rout != reach_out[label]:
                reach_in[label] = rin
                reach_out[label] = rout
                changed = True

    # --- attach reaching defs to uses; union defs sharing a use ---------
    uf = _UnionFind(n)
    blocks = func.block_map()
    use_class: dict[tuple[int, VReg], int] = {}  # (id(instr), var) -> def class
    for label in order:
        blk = blocks[label]
        current_def: dict[VReg, int] = {}
        rin = reach_in[label]
        for var, mask in masks_of.items():
            live_defs = rin & mask
            if live_defs:
                current_def[var] = live_defs
        for var, def_id in synthetic.items():
            current_def.setdefault(var, 1 << def_id)
        for idx, instr in enumerate(blk.instrs):
            for u in instr.uses():
                if not isinstance(u, VReg):
                    continue
                mask = current_def.get(u, 0)
                if mask == 0:
                    mask = 1 << synthetic.setdefault(
                        u, add_def(entry_label, -1, u)
                    )
                    # (new synthetic defs can't appear here in practice;
                    # the pre-pass above registered them)
                first = _lowest_bit(mask)
                rest = mask & (mask - 1)
                while rest:
                    bit = _lowest_bit(rest)
                    uf.union(first, bit)
                    rest &= rest - 1
                use_class[(id(instr), u)] = first
            for d in instr.defs():
                if isinstance(d, VReg):
                    # locate this def's id (same label+idx+var)
                    current_def[d] = 1 << _def_id_at(def_ids_of, defs, label,
                                                     idx, d)

    # --- build webs and rewrite -----------------------------------------
    web_of_class: dict[int, Web] = {}
    result = RenumberResult()

    def web_for(def_id: int, var: VReg) -> Web:
        root = uf.find(def_id)
        if root not in web_of_class:
            count = result.split_counts.get(var, 0)
            result.split_counts[var] = count + 1
            name = var.name or f"{var.rclass.prefix()}{var.id}"
            if count:
                name = f"{name}.w{count}"
            reg = func.new_vreg(var.rclass, name=name, no_spill=var.no_spill)
            web = Web(reg=reg, original=var)
            web_of_class[root] = web
            result.webs.append(web)
        return web_of_class[root]

    reachable = set(order)
    for blk in func.blocks:
        if blk.label not in reachable:
            continue
        for idx, instr in enumerate(blk.instrs):
            use_map = {}
            for u in instr.uses():
                if isinstance(u, VReg):
                    cls = use_class[(id(instr), u)]
                    web = web_for(cls, u)
                    web.n_uses += 1
                    use_map[u] = web.reg
            def_map = {}
            for d in instr.defs():
                if isinstance(d, VReg):
                    def_id = _def_id_at(def_ids_of, defs, blk.label, idx, d)
                    web = web_for(def_id, d)
                    web.n_defs += 1
                    def_map[d] = web.reg
            if use_map:
                instr.replace_uses(use_map)
            if def_map:
                instr.replace_defs(def_map)

    func.params = [
        web_for(synthetic[p], p).reg if p in synthetic else p
        for p in func.params
    ]
    return result


def _lowest_bit(mask: int) -> int:
    return (mask & -mask).bit_length() - 1


def _def_id_at(def_ids_of, defs, label: str, idx: int, var: VReg) -> int:
    for def_id in def_ids_of[var]:
        d_label, d_idx, _ = defs[def_id]
        if d_label == label and d_idx == idx:
            return def_id
    raise AssertionError(f"no def record for {var} at {label}:{idx}")
