"""Dataflow analyses feeding the register allocators."""

from repro.analysis.interference import InterferenceGraph, build_interference
from repro.analysis.liveness import (
    Liveness,
    compute_liveness,
    instruction_liveness,
)
from repro.analysis.matrix import dataflow_mode, have_numpy, parse_dataflow
from repro.analysis.renumber import RenumberResult, Web, renumber

__all__ = [
    "InterferenceGraph",
    "build_interference",
    "Liveness",
    "compute_liveness",
    "instruction_liveness",
    "dataflow_mode",
    "have_numpy",
    "parse_dataflow",
    "RenumberResult",
    "Web",
    "renumber",
]
