"""Dense per-function register indexing for bitset dataflow kernels.

All dataflow-heavy analyses (liveness, interference) run over Python
integers used as bitsets: every :class:`~repro.ir.values.Register` that
occurs in a function gets a small dense id, sets of registers become int
masks, and set algebra becomes single machine-word-per-64-registers
``&``/``|``/``~`` operations.

Ids are assigned in *first-encounter order* of a deterministic walk
(parameters, then instructions in block order), so the same function —
or two identical clones of it — produces the same index in every
process.  Nothing here depends on hash order.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import PReg, RegClass, Register, VReg

__all__ = ["RegisterIndex", "index_function", "iter_bits"]


def iter_bits(mask: int):
    """Yield the set bit positions of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class RegisterIndex:
    """Bidirectional Register <-> dense-int mapping plus group masks."""

    __slots__ = ("ids", "regs", "int_mask", "float_mask", "preg_mask")

    def __init__(self) -> None:
        self.ids: dict[Register, int] = {}
        self.regs: list[Register] = []
        #: masks over all indexed registers, by class / physicality
        self.int_mask: int = 0
        self.float_mask: int = 0
        self.preg_mask: int = 0

    def __len__(self) -> int:
        return len(self.regs)

    def add(self, reg: Register) -> int:
        """Id of ``reg``, assigning the next dense id on first sight."""
        idx = self.ids.get(reg)
        if idx is None:
            idx = len(self.regs)
            self.ids[reg] = idx
            self.regs.append(reg)
            bit = 1 << idx
            if reg.rclass is RegClass.INT:
                self.int_mask |= bit
            else:
                self.float_mask |= bit
            if isinstance(reg, PReg):
                self.preg_mask |= bit
        return idx

    def id_of(self, reg: Register) -> int:
        return self.ids[reg]

    def bit_of(self, reg: Register) -> int:
        """``1 << id``, indexing ``reg`` on demand."""
        return 1 << self.add(reg)

    def class_mask(self, reg: Register) -> int:
        """Mask of all indexed registers sharing ``reg``'s class."""
        return self.int_mask if reg.rclass is RegClass.INT else self.float_mask

    def mask_of(self, regs) -> int:
        """Bitset of an iterable of registers (indexed on demand)."""
        mask = 0
        for reg in regs:
            mask |= 1 << self.add(reg)
        return mask

    def set_of(self, mask: int) -> set[Register]:
        """Materialize a mask back into a ``set[Register]``."""
        regs = self.regs
        return {regs[i] for i in iter_bits(mask)}

    def regs_of(self, mask: int) -> list[Register]:
        """Registers of ``mask`` in dense-id (deterministic) order."""
        regs = self.regs
        return [regs[i] for i in iter_bits(mask)]


def index_function(func: Function) -> RegisterIndex:
    """Index every register of ``func`` in deterministic walk order."""
    index = RegisterIndex()
    add = index.add
    for param in func.params:
        add(param)
    for blk in func.blocks:
        for instr in blk.instrs:
            for d in instr.defs():
                if isinstance(d, (VReg, PReg)):
                    add(d)
            if isinstance(instr, Phi):
                for value in instr.incoming.values():
                    if isinstance(value, (VReg, PReg)):
                        add(value)
            else:
                for u in instr.uses():
                    if isinstance(u, (VReg, PReg)):
                        add(u)
    return index
