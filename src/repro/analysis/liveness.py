"""Backward liveness dataflow over registers.

Works both before and after SSA: phi instructions are handled with the
standard convention that a phi's arm ``(pred, value)`` is a *use at the end
of pred*, not a use in the phi's own block, and the phi destination is a
def at the top of its block.  Physical registers are tracked exactly like
virtual ones — their live ranges (argument setup before calls, the return
register, ...) create the dedicated-register interference the allocators
must respect.

The fixed point runs as a *worklist algorithm over int bitmasks*: every
register gets a dense id (:mod:`repro.analysis.indexing`), each block is
summarized once into gen (upward-exposed use) / kill (def) masks, and one
transfer step is a handful of word-wide ``&``/``|`` operations instead of
per-register set algebra.  :func:`compute_liveness_reference` retains the
direct set-based formulation; the property suite asserts the two agree
set-for-set on randomized CFGs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.indexing import RegisterIndex, index_function
from repro.cfg.analysis import CFG, build_cfg
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Phi
from repro.ir.values import PReg, Register, VReg

__all__ = [
    "Liveness",
    "compute_liveness",
    "compute_liveness_reference",
    "instruction_liveness",
    "instruction_liveness_masks",
]


def _regs(values) -> set[Register]:
    return {v for v in values if isinstance(v, (VReg, PReg))}


@dataclass(eq=False)
class Liveness:
    """Per-block live-in/live-out sets plus block-local summaries."""

    live_in: dict[str, set[Register]] = field(default_factory=dict)
    live_out: dict[str, set[Register]] = field(default_factory=dict)
    #: upward-exposed uses per block (phi arms excluded)
    use: dict[str, set[Register]] = field(default_factory=dict)
    #: registers defined per block (phi dsts included)
    defs: dict[str, set[Register]] = field(default_factory=dict)
    #: dense register index shared by the mask fields (None when the
    #: object was built by hand rather than by :func:`compute_liveness`)
    index: RegisterIndex | None = None
    #: bitmask twins of ``live_in``/``live_out``, for mask-level consumers
    live_in_mask: dict[str, int] = field(default_factory=dict)
    live_out_mask: dict[str, int] = field(default_factory=dict)
    #: bitmask twins of ``use``/``defs`` (the gen/kill summaries) — kept so
    #: incremental spill-round re-analysis can reuse untouched blocks'
    #: summaries without rescanning their instructions
    use_mask: dict[str, int] = field(default_factory=dict)
    defs_mask: dict[str, int] = field(default_factory=dict)

    def live_across_instr(self, block: BasicBlock, index: int) -> set[Register]:
        """Registers live immediately *after* ``block.instrs[index]``.

        A convenience for tests and for the call-crossing cost evaluation;
        recomputes a backward scan of the block suffix on each call.
        """
        live = set(self.live_out[block.label])
        for instr in reversed(block.instrs[index + 1:]):
            live -= _regs(instr.defs())
            if isinstance(instr, Phi):
                continue
            live |= _regs(instr.uses())
        return live


def block_uses_defs(block: BasicBlock) -> tuple[set[Register], set[Register]]:
    """Upward-exposed uses and defs of one block (phi arms excluded)."""
    uses: set[Register] = set()
    defs: set[Register] = set()
    for instr in block.instrs:
        if not isinstance(instr, Phi):
            for u in _regs(instr.uses()):
                if u not in defs:
                    uses.add(u)
        defs |= _regs(instr.defs())
    return uses, defs


def phi_uses_on_edge(succ_block: BasicBlock, pred_label: str) -> set[Register]:
    """Registers consumed by ``succ_block``'s phis along edge from ``pred``."""
    out: set[Register] = set()
    for phi in succ_block.phis():
        value = phi.incoming.get(pred_label)
        if isinstance(value, (VReg, PReg)):
            out.add(value)
    return out


def _block_masks(
    block: BasicBlock, index: RegisterIndex
) -> tuple[int, int, int]:
    """(gen, kill, phi-def) masks of one block."""
    bit_of = index.bit_of
    gen = kill = phi_defs = 0
    for instr in block.instrs:
        if isinstance(instr, Phi):
            dbit = bit_of(instr.dst)
            kill |= dbit
            phi_defs |= dbit
            continue
        for u in instr.uses():
            if isinstance(u, (VReg, PReg)):
                ubit = bit_of(u)
                if not kill & ubit:
                    gen |= ubit
        for d in instr.defs():
            if isinstance(d, (VReg, PReg)):
                kill |= bit_of(d)
    return gen, kill, phi_defs


def compute_liveness(func: Function, cfg: CFG | None = None) -> Liveness:
    """Worklist bitmask dataflow to a fixed point."""
    if cfg is None:
        cfg = build_cfg(func)
    index = index_function(func)
    blocks = func.block_map()

    gen: dict[str, int] = {}
    kill: dict[str, int] = {}
    phi_defs: dict[str, int] = {}
    #: per-edge phi-arm uses: (pred, succ) -> mask
    edge_use: dict[tuple[str, str], int] = {}
    for label, blk in blocks.items():
        gen[label], kill[label], phi_defs[label] = _block_masks(blk, index)
        for phi in blk.phis():
            for pred, value in phi.incoming.items():
                if isinstance(value, (VReg, PReg)):
                    key = (pred, label)
                    edge_use[key] = edge_use.get(key, 0) | index.bit_of(value)

    live_in: dict[str, int] = {label: 0 for label in blocks}
    live_out: dict[str, int] = {label: 0 for label in blocks}

    # Postorder seeding converges a backward problem fastest; blocks are
    # re-queued only when a successor's live-in actually changes.
    order = cfg.postorder()
    preds = cfg.preds
    succs = cfg.succs
    pending = deque(order)
    queued = set(order)
    while pending:
        label = pending.popleft()
        queued.discard(label)
        out = 0
        for succ in succs[label]:
            out |= live_in[succ] & ~phi_defs[succ]
            out |= edge_use.get((label, succ), 0)
        new_in = (gen[label] | (out & ~kill[label])) & ~phi_defs[label]
        live_out[label] = out
        if new_in != live_in[label]:
            live_in[label] = new_in
            for pred in preds[label]:
                if pred not in queued:
                    queued.add(pred)
                    pending.append(pred)

    result = Liveness(index=index, live_in_mask=live_in,
                      live_out_mask=live_out, use_mask=gen, defs_mask=kill)
    set_of = index.set_of
    for label, blk in blocks.items():
        result.live_in[label] = set_of(live_in[label])
        result.live_out[label] = set_of(live_out[label])
        result.use[label] = set_of(gen[label])
        result.defs[label] = set_of(kill[label])
    return result


def compute_liveness_reference(
    func: Function, cfg: CFG | None = None
) -> Liveness:
    """The direct set-based fixed point (oracle for the bitset kernel)."""
    if cfg is None:
        cfg = build_cfg(func)
    blocks = func.block_map()
    result = Liveness()
    for label, blk in blocks.items():
        uses, defs = block_uses_defs(blk)
        result.use[label] = uses
        result.defs[label] = defs
        result.live_in[label] = set()
        result.live_out[label] = set()

    # Iterate in postorder for fast convergence of a backward problem.
    order = cfg.postorder()
    # Unreachable blocks still get (empty) entries but aren't iterated.
    changed = True
    while changed:
        changed = False
        for label in order:
            blk = blocks[label]
            out: set[Register] = set()
            for succ in cfg.succs[label]:
                sblk = blocks[succ]
                phi_defs = _regs(p.dst for p in sblk.phis())
                out |= result.live_in[succ] - phi_defs
                out |= phi_uses_on_edge(sblk, label)
            new_in = result.use[label] | (out - result.defs[label])
            # Phi destinations are defined at the very top of the block, so
            # they are not live-in even if used later in the same block.
            new_in -= _regs(p.dst for p in blk.phis())
            if out != result.live_out[label] or new_in != result.live_in[label]:
                result.live_out[label] = out
                result.live_in[label] = new_in
                changed = True
    return result


def instruction_liveness_masks(
    func: Function, liveness: Liveness
) -> tuple[RegisterIndex, dict[int, int]]:
    """Live masks *after* each instruction, keyed by ``id(instr)``.

    Requires a :func:`compute_liveness`-built ``liveness`` (one carrying
    the dense index and mask tables).
    """
    index = liveness.index
    assert index is not None, "liveness was not built by compute_liveness"
    bit_of = index.bit_of
    out_mask = liveness.live_out_mask
    after: dict[int, int] = {}
    for blk in func.blocks:
        live = out_mask[blk.label]
        for instr in reversed(blk.instrs):
            after[id(instr)] = live
            for d in instr.defs():
                if isinstance(d, (VReg, PReg)):
                    live &= ~bit_of(d)
            if not isinstance(instr, Phi):
                for u in instr.uses():
                    if isinstance(u, (VReg, PReg)):
                        live |= bit_of(u)
    return index, after


def instruction_liveness(
    func: Function, liveness: Liveness
) -> dict[int, set[Register]]:
    """Live sets *after* each instruction, keyed by ``id(instr)``.

    One backward scan per block; used by the interference builder and by
    the cycle evaluator's call-crossing accounting.  Identical masks
    share one materialized set (consumers treat the sets as read-only).
    """
    if liveness.index is None:
        # Hand-built Liveness (tests): fall back to the set formulation.
        after_sets: dict[int, set[Register]] = {}
        for blk in func.blocks:
            live = set(liveness.live_out[blk.label])
            for instr in reversed(blk.instrs):
                after_sets[id(instr)] = set(live)
                live -= _regs(instr.defs())
                if not isinstance(instr, Phi):
                    live |= _regs(instr.uses())
        return after_sets

    index, after = instruction_liveness_masks(func, liveness)
    set_of = index.set_of
    cache: dict[int, set[Register]] = {}
    out: dict[int, set[Register]] = {}
    for key, mask in after.items():
        materialized = cache.get(mask)
        if materialized is None:
            materialized = cache[mask] = set_of(mask)
        out[key] = materialized
    return out
