"""Backward liveness dataflow over registers.

Works both before and after SSA: phi instructions are handled with the
standard convention that a phi's arm ``(pred, value)`` is a *use at the end
of pred*, not a use in the phi's own block, and the phi destination is a
def at the top of its block.  Physical registers are tracked exactly like
virtual ones — their live ranges (argument setup before calls, the return
register, ...) create the dedicated-register interference the allocators
must respect.

The fixed point runs as a *worklist algorithm over int bitmasks*: every
register gets a dense id (:mod:`repro.analysis.indexing`), each block is
summarized once into gen (upward-exposed use) / kill (def) masks, and one
transfer step is a handful of word-wide ``&``/``|`` operations instead of
per-register set algebra.  :func:`compute_liveness_reference` retains the
direct set-based formulation; the property suite asserts the two agree
set-for-set on randomized CFGs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis import matrix
from repro.analysis.indexing import RegisterIndex, index_function
from repro.cfg.analysis import CFG, build_cfg
from repro.errors import AllocationError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Phi
from repro.ir.values import PReg, Register, VReg
from repro.profiling import phase

__all__ = [
    "Liveness",
    "compute_liveness",
    "compute_liveness_reference",
    "instruction_liveness",
    "instruction_liveness_masks",
]


def _regs(values) -> set[Register]:
    return {v for v in values if isinstance(v, (VReg, PReg))}


@dataclass(eq=False)
class Liveness:
    """Per-block live-in/live-out sets plus block-local summaries."""

    live_in: dict[str, set[Register]] = field(default_factory=dict)
    live_out: dict[str, set[Register]] = field(default_factory=dict)
    #: upward-exposed uses per block (phi arms excluded)
    use: dict[str, set[Register]] = field(default_factory=dict)
    #: registers defined per block (phi dsts included)
    defs: dict[str, set[Register]] = field(default_factory=dict)
    #: dense register index shared by the mask fields (None when the
    #: object was built by hand rather than by :func:`compute_liveness`)
    index: RegisterIndex | None = None
    #: bitmask twins of ``live_in``/``live_out``, for mask-level consumers
    live_in_mask: dict[str, int] = field(default_factory=dict)
    live_out_mask: dict[str, int] = field(default_factory=dict)
    #: bitmask twins of ``use``/``defs`` (the gen/kill summaries) — kept so
    #: incremental spill-round re-analysis can reuse untouched blocks'
    #: summaries without rescanning their instructions
    use_mask: dict[str, int] = field(default_factory=dict)
    defs_mask: dict[str, int] = field(default_factory=dict)
    #: the :class:`~repro.analysis.matrix.FunctionPack` this liveness was
    #: computed from (numpy backend only; None on the int backend).  The
    #: interference builder reuses it to skip re-walking the function.
    pack: object | None = field(default=None, repr=False)

    def live_across_instr(self, block: BasicBlock, index: int) -> set[Register]:
        """Registers live immediately *after* ``block.instrs[index]``.

        A convenience for tests and for the call-crossing cost evaluation;
        recomputes a backward scan of the block suffix on each call.
        """
        live = set(self.live_out[block.label])
        for instr in reversed(block.instrs[index + 1:]):
            live -= _regs(instr.defs())
            if isinstance(instr, Phi):
                continue
            live |= _regs(instr.uses())
        return live


def block_uses_defs(block: BasicBlock) -> tuple[set[Register], set[Register]]:
    """Upward-exposed uses and defs of one block (phi arms excluded)."""
    uses: set[Register] = set()
    defs: set[Register] = set()
    for instr in block.instrs:
        if not isinstance(instr, Phi):
            for u in _regs(instr.uses()):
                if u not in defs:
                    uses.add(u)
        defs |= _regs(instr.defs())
    return uses, defs


def phi_uses_on_edge(succ_block: BasicBlock, pred_label: str) -> set[Register]:
    """Registers consumed by ``succ_block``'s phis along edge from ``pred``."""
    out: set[Register] = set()
    for phi in succ_block.phis():
        value = phi.incoming.get(pred_label)
        if isinstance(value, (VReg, PReg)):
            out.add(value)
    return out


def _block_masks(
    block: BasicBlock, index: RegisterIndex
) -> tuple[int, int, int]:
    """(gen, kill, phi-def) masks of one block."""
    bit_of = index.bit_of
    gen = kill = phi_defs = 0
    for instr in block.instrs:
        if isinstance(instr, Phi):
            dbit = bit_of(instr.dst)
            kill |= dbit
            phi_defs |= dbit
            continue
        for u in instr.uses():
            if isinstance(u, (VReg, PReg)):
                ubit = bit_of(u)
                if not kill & ubit:
                    gen |= ubit
        for d in instr.defs():
            if isinstance(d, (VReg, PReg)):
                kill |= bit_of(d)
    return gen, kill, phi_defs


def _lazy_set_field(name: str) -> property:
    storage = "_" + name

    def getter(self):
        self._ensure_sets()
        return self.__dict__[storage]

    def setter(self, value):
        self.__dict__[storage] = value

    return property(getter, setter)


class LazySetsLiveness(Liveness):
    """Liveness whose Register-set views materialize on first access.

    The allocation loop consumes only the mask tables; the set dicts
    serve SSA construction, the reference oracles, and tests.  The
    numpy backend therefore defers their (batched, vectorized)
    materialization until something actually reads one — any access
    fills all four dicts, after which they behave exactly like the
    eagerly-built ones (same contents, same block insertion order).
    """

    live_in = _lazy_set_field("live_in")
    live_out = _lazy_set_field("live_out")
    use = _lazy_set_field("use")
    defs = _lazy_set_field("defs")

    def mark_pending(self) -> None:
        self.__dict__["_pending_sets"] = True

    def _ensure_sets(self) -> None:
        if not self.__dict__.get("_pending_sets"):
            return
        self.__dict__["_pending_sets"] = False
        labels = list(self.use_mask)
        masks: list[int] = []
        in_m, out_m = self.live_in_mask, self.live_out_mask
        g_m, k_m = self.use_mask, self.defs_mask
        for label in labels:
            masks.append(in_m[label])
            masks.append(out_m[label])
            masks.append(g_m[label])
            masks.append(k_m[label])
        sets = matrix.sets_of_masks(self.index, masks)
        d = self.__dict__
        li, lo, us, df = d["_live_in"], d["_live_out"], d["_use"], d["_defs"]
        for i, label in enumerate(labels):
            li[label] = sets[4 * i]
            lo[label] = sets[4 * i + 1]
            us[label] = sets[4 * i + 2]
            df[label] = sets[4 * i + 3]


def compute_liveness(func: Function, cfg: CFG | None = None) -> Liveness:
    """Block liveness via the selected dataflow backend.

    ``REPRO_DATAFLOW`` picks the engine: the int worklist kernel, the
    numpy bit-matrix sweeps (:mod:`repro.analysis.matrix`), or
    ``validate`` which runs both and raises
    :class:`~repro.errors.AllocationError` on any mask divergence.  All
    modes produce identical results — the fixed point is unique.
    """
    if cfg is None:
        cfg = build_cfg(func)
    mode = matrix.dataflow_mode()
    if mode == "int":
        return _compute_liveness_int(func, cfg)
    if mode == "numpy":
        return _compute_liveness_numpy(func, cfg)
    result = _compute_liveness_numpy(func, cfg)
    expect = _compute_liveness_int(func, cfg)
    problems = _compare_liveness(result, expect)
    if problems:
        raise AllocationError(
            "dataflow backends diverged in liveness: " + "; ".join(problems)
        )
    return result


def _compare_liveness(got: Liveness, want: Liveness) -> list[str]:
    """Field-by-field divergence report between two Liveness results."""
    problems = []
    if got.index.regs != want.index.regs:
        problems.append("register index order differs")
    for name in ("live_in_mask", "live_out_mask", "use_mask", "defs_mask",
                 "live_in", "live_out", "use", "defs"):
        if getattr(got, name) != getattr(want, name):
            problems.append(f"{name} differs")
    return problems


def _compute_liveness_numpy(func: Function, cfg: CFG) -> Liveness:
    """The numpy bit-matrix backend: one pack walk + row sweeps."""
    pack = matrix.build_pack(func)
    with phase("solve"):
        live_in, live_out = matrix.solve_liveness(pack, cfg)
    result = LazySetsLiveness(index=pack.index, live_in_mask=live_in,
                              live_out_mask=live_out, use_mask=pack.gen,
                              defs_mask=pack.kill, pack=pack)
    result.mark_pending()
    return result


def _compute_liveness_int(func: Function, cfg: CFG) -> Liveness:
    """Worklist bitmask dataflow to a fixed point (int backend)."""
    index = index_function(func)
    blocks = func.block_map()

    gen: dict[str, int] = {}
    kill: dict[str, int] = {}
    phi_defs: dict[str, int] = {}
    #: per-edge phi-arm uses: (pred, succ) -> mask
    edge_use: dict[tuple[str, str], int] = {}
    for label, blk in blocks.items():
        gen[label], kill[label], phi_defs[label] = _block_masks(blk, index)
        for phi in blk.phis():
            for pred, value in phi.incoming.items():
                if isinstance(value, (VReg, PReg)):
                    key = (pred, label)
                    edge_use[key] = edge_use.get(key, 0) | index.bit_of(value)

    live_in: dict[str, int] = {label: 0 for label in blocks}
    live_out: dict[str, int] = {label: 0 for label in blocks}

    # Postorder seeding converges a backward problem fastest; blocks are
    # re-queued only when a successor's live-in actually changes.
    order = cfg.postorder()
    preds = cfg.preds
    succs = cfg.succs
    with phase("solve"):
        pending = deque(order)
        queued = set(order)
        while pending:
            label = pending.popleft()
            queued.discard(label)
            out = 0
            for succ in succs[label]:
                out |= live_in[succ] & ~phi_defs[succ]
                out |= edge_use.get((label, succ), 0)
            new_in = (gen[label] | (out & ~kill[label])) & ~phi_defs[label]
            live_out[label] = out
            if new_in != live_in[label]:
                live_in[label] = new_in
                for pred in preds[label]:
                    if pred not in queued:
                        queued.add(pred)
                        pending.append(pred)

    result = Liveness(index=index, live_in_mask=live_in,
                      live_out_mask=live_out, use_mask=gen, defs_mask=kill)
    set_of = index.set_of
    for label, blk in blocks.items():
        result.live_in[label] = set_of(live_in[label])
        result.live_out[label] = set_of(live_out[label])
        result.use[label] = set_of(gen[label])
        result.defs[label] = set_of(kill[label])
    return result


def compute_liveness_reference(
    func: Function, cfg: CFG | None = None
) -> Liveness:
    """The direct set-based fixed point (oracle for the bitset kernel)."""
    if cfg is None:
        cfg = build_cfg(func)
    blocks = func.block_map()
    result = Liveness()
    for label, blk in blocks.items():
        uses, defs = block_uses_defs(blk)
        result.use[label] = uses
        result.defs[label] = defs
        result.live_in[label] = set()
        result.live_out[label] = set()

    # Iterate in postorder for fast convergence of a backward problem.
    order = cfg.postorder()
    # Unreachable blocks still get (empty) entries but aren't iterated.
    changed = True
    while changed:
        changed = False
        for label in order:
            blk = blocks[label]
            out: set[Register] = set()
            for succ in cfg.succs[label]:
                sblk = blocks[succ]
                phi_defs = _regs(p.dst for p in sblk.phis())
                out |= result.live_in[succ] - phi_defs
                out |= phi_uses_on_edge(sblk, label)
            new_in = result.use[label] | (out - result.defs[label])
            # Phi destinations are defined at the very top of the block, so
            # they are not live-in even if used later in the same block.
            new_in -= _regs(p.dst for p in blk.phis())
            if out != result.live_out[label] or new_in != result.live_in[label]:
                result.live_out[label] = out
                result.live_in[label] = new_in
                changed = True
    return result


def instruction_liveness_masks(
    func: Function, liveness: Liveness
) -> tuple[RegisterIndex, dict[int, int]]:
    """Live masks *after* each instruction, keyed by ``id(instr)``.

    Requires a :func:`compute_liveness`-built ``liveness`` (one carrying
    the dense index and mask tables).
    """
    index = liveness.index
    assert index is not None, "liveness was not built by compute_liveness"
    bit_of = index.bit_of
    out_mask = liveness.live_out_mask
    after: dict[int, int] = {}
    for blk in func.blocks:
        live = out_mask[blk.label]
        for instr in reversed(blk.instrs):
            after[id(instr)] = live
            for d in instr.defs():
                if isinstance(d, (VReg, PReg)):
                    live &= ~bit_of(d)
            if not isinstance(instr, Phi):
                for u in instr.uses():
                    if isinstance(u, (VReg, PReg)):
                        live |= bit_of(u)
    return index, after


def instruction_liveness(
    func: Function, liveness: Liveness
) -> dict[int, set[Register]]:
    """Live sets *after* each instruction, keyed by ``id(instr)``.

    One backward scan per block; used by the interference builder and by
    the cycle evaluator's call-crossing accounting.  Identical masks
    share one materialized set (consumers treat the sets as read-only).
    """
    if liveness.index is None:
        # Hand-built Liveness (tests): fall back to the set formulation.
        after_sets: dict[int, set[Register]] = {}
        for blk in func.blocks:
            live = set(liveness.live_out[blk.label])
            for instr in reversed(blk.instrs):
                after_sets[id(instr)] = set(live)
                live -= _regs(instr.defs())
                if not isinstance(instr, Phi):
                    live |= _regs(instr.uses())
        return after_sets

    index, after = instruction_liveness_masks(func, liveness)
    set_of = index.set_of
    cache: dict[int, set[Register]] = {}
    out: dict[int, set[Register]] = {}
    for key, mask in after.items():
        materialized = cache.get(mask)
        if materialized is None:
            materialized = cache[mask] = set_of(mask)
        out[key] = materialized
    return out
