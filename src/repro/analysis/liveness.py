"""Backward liveness dataflow over registers.

Works both before and after SSA: phi instructions are handled with the
standard convention that a phi's arm ``(pred, value)`` is a *use at the end
of pred*, not a use in the phi's own block, and the phi destination is a
def at the top of its block.  Physical registers are tracked exactly like
virtual ones — their live ranges (argument setup before calls, the return
register, ...) create the dedicated-register interference the allocators
must respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.analysis import CFG, build_cfg
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Phi
from repro.ir.values import PReg, Register, VReg

__all__ = ["Liveness", "compute_liveness"]


def _regs(values) -> set[Register]:
    return {v for v in values if isinstance(v, (VReg, PReg))}


@dataclass(eq=False)
class Liveness:
    """Per-block live-in/live-out sets plus block-local summaries."""

    live_in: dict[str, set[Register]] = field(default_factory=dict)
    live_out: dict[str, set[Register]] = field(default_factory=dict)
    #: upward-exposed uses per block (phi arms excluded)
    use: dict[str, set[Register]] = field(default_factory=dict)
    #: registers defined per block (phi dsts included)
    defs: dict[str, set[Register]] = field(default_factory=dict)

    def live_across_instr(self, block: BasicBlock, index: int) -> set[Register]:
        """Registers live immediately *after* ``block.instrs[index]``.

        A convenience for tests and for the call-crossing cost evaluation;
        recomputes a backward scan of the block suffix on each call.
        """
        live = set(self.live_out[block.label])
        for instr in reversed(block.instrs[index + 1:]):
            live -= _regs(instr.defs())
            if isinstance(instr, Phi):
                continue
            live |= _regs(instr.uses())
        return live


def block_uses_defs(block: BasicBlock) -> tuple[set[Register], set[Register]]:
    """Upward-exposed uses and defs of one block (phi arms excluded)."""
    uses: set[Register] = set()
    defs: set[Register] = set()
    for instr in block.instrs:
        if not isinstance(instr, Phi):
            for u in _regs(instr.uses()):
                if u not in defs:
                    uses.add(u)
        defs |= _regs(instr.defs())
    return uses, defs


def phi_uses_on_edge(succ_block: BasicBlock, pred_label: str) -> set[Register]:
    """Registers consumed by ``succ_block``'s phis along edge from ``pred``."""
    out: set[Register] = set()
    for phi in succ_block.phis():
        value = phi.incoming.get(pred_label)
        if isinstance(value, (VReg, PReg)):
            out.add(value)
    return out


def compute_liveness(func: Function, cfg: CFG | None = None) -> Liveness:
    """Iterative backward dataflow to a fixed point."""
    if cfg is None:
        cfg = build_cfg(func)
    blocks = func.block_map()
    result = Liveness()
    for label, blk in blocks.items():
        uses, defs = block_uses_defs(blk)
        result.use[label] = uses
        result.defs[label] = defs
        result.live_in[label] = set()
        result.live_out[label] = set()

    # Iterate in postorder for fast convergence of a backward problem.
    order = cfg.postorder()
    # Unreachable blocks still get (empty) entries but aren't iterated.
    changed = True
    while changed:
        changed = False
        for label in order:
            blk = blocks[label]
            out: set[Register] = set()
            for succ in cfg.succs[label]:
                sblk = blocks[succ]
                phi_defs = _regs(p.dst for p in sblk.phis())
                out |= result.live_in[succ] - phi_defs
                out |= phi_uses_on_edge(sblk, label)
            new_in = result.use[label] | (out - result.defs[label])
            # Phi destinations are defined at the very top of the block, so
            # they are not live-in even if used later in the same block.
            new_in -= _regs(p.dst for p in blk.phis())
            if out != result.live_out[label] or new_in != result.live_in[label]:
                result.live_out[label] = out
                result.live_in[label] = new_in
                changed = True
    return result


def instruction_liveness(
    func: Function, liveness: Liveness
) -> dict[int, set[Register]]:
    """Live sets *after* each instruction, keyed by ``id(instr)``.

    One backward scan per block; used by the interference builder and by
    the cycle evaluator's call-crossing accounting.
    """
    after: dict[int, set[Register]] = {}
    for blk in func.blocks:
        live = set(liveness.live_out[blk.label])
        for instr in reversed(blk.instrs):
            after[id(instr)] = set(live)
            live -= _regs(instr.defs())
            if not isinstance(instr, Phi):
                live |= _regs(instr.uses())
    return after
