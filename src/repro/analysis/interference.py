"""Interference-graph construction.

Chaitin's definition with the standard refinements:

* at every definition point, the defined register interferes with every
  register live *after* the instruction (this covers dead definitions,
  which still clobber), and with the other registers defined by the same
  instruction;
* for a copy ``dst = src`` the edge ``dst–src`` is *not* added (they may
  share a register; that is the whole point of coalescing);
* registers of different classes never interfere (separate files);
* physical–physical edges are implicit and not stored.

The result also collects the function's move instructions — the
coalescing worklist every allocator variant starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import Liveness, compute_liveness
from repro.cfg.analysis import CFG, build_cfg
from repro.ir.function import Function
from repro.ir.instructions import Move, Phi
from repro.ir.values import PReg, Register, VReg

__all__ = ["InterferenceGraph", "build_interference"]


@dataclass(eq=False)
class InterferenceGraph:
    """Adjacency over virtual and physical registers, plus the move list."""

    adjacency: dict[Register, set[Register]] = field(default_factory=dict)
    moves: list[Move] = field(default_factory=list)

    def nodes(self) -> list[Register]:
        return list(self.adjacency)

    def vregs(self) -> list[VReg]:
        return [n for n in self.adjacency if isinstance(n, VReg)]

    def ensure(self, node: Register) -> None:
        self.adjacency.setdefault(node, set())

    def add_edge(self, a: Register, b: Register) -> None:
        if a is b or a == b:
            return
        if a.rclass is not b.rclass:
            return
        if isinstance(a, PReg) and isinstance(b, PReg):
            return
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def interferes(self, a: Register, b: Register) -> bool:
        if isinstance(a, PReg) and isinstance(b, PReg):
            return a != b and a.rclass is b.rclass
        return b in self.adjacency.get(a, ())

    def degree(self, node: Register) -> int:
        return len(self.adjacency.get(node, ()))

    def neighbors(self, node: Register) -> set[Register]:
        return self.adjacency.get(node, set())


def build_interference(
    func: Function,
    cfg: CFG | None = None,
    liveness: Liveness | None = None,
) -> InterferenceGraph:
    """Build the interference graph of a phi-free, lowered function."""
    if cfg is None:
        cfg = build_cfg(func)
    if liveness is None:
        liveness = compute_liveness(func, cfg)

    graph = InterferenceGraph()
    for param in func.params:
        graph.ensure(param)

    for blk in func.blocks:
        live: set[Register] = set(liveness.live_out[blk.label])
        for instr in reversed(blk.instrs):
            if isinstance(instr, Phi):
                raise ValueError("interference runs after out-of-SSA")
            defs = [d for d in instr.defs() if isinstance(d, (VReg, PReg))]
            uses = [u for u in instr.uses() if isinstance(u, (VReg, PReg))]
            for reg in defs + uses:
                graph.ensure(reg)

            if isinstance(instr, Move):
                graph.moves.append(instr)
                live.discard(instr.src)

            for d in defs:
                for other in live:
                    graph.add_edge(d, other)
                for d2 in defs:
                    graph.add_edge(d, d2)
            live -= set(defs)
            live |= set(uses)
    return graph
