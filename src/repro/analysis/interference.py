"""Interference-graph construction.

Chaitin's definition with the standard refinements:

* at every definition point, the defined register interferes with every
  register live *after* the instruction (this covers dead definitions,
  which still clobber), and with the other registers defined by the same
  instruction;
* for a copy ``dst = src`` the edge ``dst–src`` is *not* added (they may
  share a register; that is the whole point of coalescing);
* registers of different classes never interfere (separate files);
* physical–physical edges are implicit and not stored.

The builder accumulates adjacency as *bitmasks* over the dense register
index that liveness computed: one backward scan per block keeps the live
set as an int, and each definition point ORs the whole live mask into
the definer's adjacency row in one operation.  Rows are symmetrized at
the end but the public dict-of-sets ``adjacency`` stays *lazy*: the
per-class coloring graphs (:func:`~repro.regalloc.igraph.build_alloc_graph`)
read the symmetrized rows directly, so the Register-object sets are
built exactly once — in the coloring graph — instead of once here and
again per class per round.  Anything that does ask for ``adjacency``
(the verifier, the visualizer, the reference comparisons) materializes
it on first access and caches it.
:func:`build_interference_reference` retains the direct set-based
builder as the property-test oracle.

The result also collects the function's move instructions — the
coalescing worklist every allocator variant starts from.
"""

from __future__ import annotations

from repro.analysis import matrix
from repro.analysis.liveness import Liveness, compute_liveness
from repro.cfg.analysis import CFG, build_cfg
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.instructions import Move, Phi
from repro.ir.values import PReg, RegClass, Register, VReg
from repro.profiling import phase

__all__ = [
    "InterferenceGraph",
    "build_interference",
    "build_interference_reference",
    "scan_block_rows",
    "symmetrize_rows",
    "finish_interference",
]


class InterferenceGraph:
    """Adjacency over virtual and physical registers, plus the move list.

    Two backing representations coexist: the classic dict-of-sets
    ``adjacency`` (always available, built eagerly by the reference
    builder and by tests) and the dense bitmask form ``index`` + ``rows``
    (symmetrized full rows keyed by dense id) the fast builder produces.
    In the bitmask form ``adjacency`` is materialized lazily on first
    access, so the common allocation path — which projects per-class
    coloring graphs straight off the rows — never pays for the
    function-wide set-of-Registers dictionary at all.
    """

    def __init__(
        self,
        adjacency: dict[Register, set[Register]] | None = None,
        moves: list[Move] | None = None,
        block_rows: dict[str, dict[int, int]] | None = None,
        index=None,
        rows: dict[int, int] | None = None,
    ):
        if adjacency is None and rows is None:
            adjacency = {}
        self._adjacency = adjacency
        self.moves = moves if moves is not None else []
        #: per-block one-sided row contributions (dense id -> neighbor
        #: mask), populated by ``build_interference(collect_block_rows=
        #: True)`` so incremental spill-round re-analysis can reuse
        #: untouched blocks
        self.block_rows = block_rows
        #: dense register index / symmetrized full rows of the bitmask
        #: form (None for eagerly-built graphs)
        self.index = index
        self.rows = rows

    @property
    def adjacency(self) -> dict[Register, set[Register]]:
        adj = self._adjacency
        if adj is None:
            adj = self._adjacency = self._materialize()
        return adj

    @property
    def materialized(self) -> bool:
        return self._adjacency is not None

    def _materialize(self) -> dict[Register, set[Register]]:
        # Every indexed register becomes a node: the index covers exactly
        # the parameters, defs and uses of the function, which is the
        # same population the scan's live/def masks range over, so no
        # indexed register can be absent.  Nodes are inserted in
        # dense-id order — the deterministic first-encounter order of
        # the index walk — which downstream tie-breaks depend on.
        regs = self.index.regs
        get = self.rows.get
        adj: dict[Register, set[Register]] = {}
        for i in range(len(regs)):
            row = get(i, 0)
            neighbors = set()
            while row:
                low = row & -row
                neighbors.add(regs[low.bit_length() - 1])
                row ^= low
            adj[regs[i]] = neighbors
        return adj

    def nodes(self) -> list[Register]:
        if self._adjacency is None:
            return list(self.index.regs)
        return list(self.adjacency)

    def vregs(self) -> list[VReg]:
        source = (self.index.regs if self._adjacency is None
                  else self.adjacency)
        return [n for n in source if isinstance(n, VReg)]

    def nodes_by_class(self) -> dict[RegClass, list[Register]]:
        """Nodes partitioned by register class, in insertion order.

        Computed once and cached so per-class projections
        (:func:`~repro.regalloc.igraph.build_alloc_graph`) do not rescan
        every node of the function for every class; the cache refreshes
        if nodes were added since it was built.  The bitmask form
        partitions ``index.regs`` directly — same population, same
        order — without materializing any set.
        """
        source = (self.index.regs if self._adjacency is None
                  else self._adjacency)
        cached = getattr(self, "_class_cache", None)
        if cached is not None and cached[0] == len(source):
            return cached[1]
        partition: dict[RegClass, list[Register]] = {}
        for node in source:
            partition.setdefault(node.rclass, []).append(node)
        self._class_cache = (len(source), partition)
        return partition

    def row_set(self, node: Register) -> set[Register] | None:
        """``node``'s neighbor set straight off the bitmask row.

        Returns None when the graph has no bitmask form.  Unlike
        :meth:`neighbors` this never materializes the full adjacency;
        the caller owns the returned set.  Matrix-backed rows decode
        every row in one vectorized batch on the first call (per-class
        projection touches them all anyway); each call still hands out
        a fresh copy.
        """
        rows = self.rows
        if rows is None:
            return None
        if isinstance(rows, matrix.MatrixRows):
            sets = getattr(self, "_row_sets", None)
            if sets is None:
                sets = self._row_sets = matrix.sets_of_masks(
                    self.index, rows.masks()
                )
            i = self.index.ids[node]
            return set(sets[i]) if i < len(sets) else set()
        regs = self.index.regs
        row = rows.get(self.index.ids[node], 0)
        neighbors = set()
        while row:
            low = row & -row
            neighbors.add(regs[low.bit_length() - 1])
            row ^= low
        return neighbors

    def ensure(self, node: Register) -> None:
        self.adjacency.setdefault(node, set())

    def add_edge(self, a: Register, b: Register) -> None:
        if a is b or a == b:
            return
        if a.rclass is not b.rclass:
            return
        if isinstance(a, PReg) and isinstance(b, PReg):
            return
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def interferes(self, a: Register, b: Register) -> bool:
        if isinstance(a, PReg) and isinstance(b, PReg):
            return a != b and a.rclass is b.rclass
        return b in self.adjacency.get(a, ())

    def degree(self, node: Register) -> int:
        return len(self.adjacency.get(node, ()))

    def neighbors(self, node: Register) -> set[Register]:
        return self.adjacency.get(node, set())


def scan_block_rows(
    blk,
    index,
    live_out: int,
    rows: dict[int, int],
    moves: list[Move],
) -> None:
    """Backward scan of one block, OR-ing one-sided rows into ``rows``.

    ``live_out`` is the block's live-out bitmask.  The block's ``Move``
    instructions are appended to ``moves`` in scan (reversed) order —
    the same order :func:`build_interference` has always produced.
    """
    bit_of = index.bit_of
    live = live_out
    for instr in reversed(blk.instrs):
        if isinstance(instr, Phi):
            raise ValueError("interference runs after out-of-SSA")
        defs = [d for d in instr.defs() if isinstance(d, (VReg, PReg))]
        uses = [u for u in instr.uses() if isinstance(u, (VReg, PReg))]

        if isinstance(instr, Move):
            moves.append(instr)
            if isinstance(instr.src, (VReg, PReg)):
                live &= ~bit_of(instr.src)

        defs_mask = 0
        for d in defs:
            defs_mask |= bit_of(d)
        targets = live | defs_mask
        for d in defs:
            dbit = bit_of(d)
            row = (targets & index.class_mask(d)) & ~dbit
            if isinstance(d, PReg):
                # Physical-physical edges are implicit, never stored.
                row &= ~index.preg_mask
            i = dbit.bit_length() - 1
            rows[i] = rows.get(i, 0) | row

        live &= ~defs_mask
        for u in uses:
            live |= bit_of(u)


def symmetrize_rows(rows: dict[int, int]) -> None:
    """Mirror one-sided ``rows`` in place: j in rows[i] => i in rows[j]."""
    get = rows.get
    for i, row in list(rows.items()):
        bit = 1 << i
        while row:
            low = row & -row
            j = low.bit_length() - 1
            rows[j] = get(j, 0) | bit
            row ^= low


def finish_interference(
    index, rows: dict[int, int], moves: list[Move]
) -> InterferenceGraph:
    """Symmetrize one-sided ``rows`` and wrap them as a (lazy) graph.

    Mutates ``rows`` (the symmetrization is in place).  The returned
    graph keeps the bitmask form; the dict-of-sets adjacency is only
    materialized if someone asks for it.
    """
    symmetrize_rows(rows)
    return InterferenceGraph(moves=moves, index=index, rows=rows)


def build_interference(
    func: Function,
    cfg: CFG | None = None,
    liveness: Liveness | None = None,
    collect_block_rows: bool = False,
) -> InterferenceGraph:
    """Build the interference graph of a phi-free, lowered function.

    ``collect_block_rows=True`` additionally records each block's
    one-sided row contributions on the result's ``block_rows`` — the
    state incremental spill-round re-analysis patches from.
    """
    if cfg is None:
        cfg = build_cfg(func)
    if liveness is None:
        liveness = compute_liveness(func, cfg)
    if liveness.index is None:
        return build_interference_reference(func, cfg, liveness)
    mode = matrix.dataflow_mode()
    if mode == "int":
        return _build_interference_int(func, liveness, collect_block_rows)
    if mode == "numpy":
        return _build_interference_numpy(func, liveness, collect_block_rows)
    got = _build_interference_numpy(func, liveness, collect_block_rows)
    want = _build_interference_int(func, liveness, collect_block_rows)
    problems = _compare_interference(got, want)
    if problems:
        raise AllocationError(
            "dataflow backends diverged in interference: "
            + "; ".join(problems)
        )
    return got


def _compare_interference(got: InterferenceGraph,
                          want: InterferenceGraph) -> list[str]:
    """Row-by-row divergence report between two bitmask-form graphs."""
    problems = []
    if got.index.regs != want.index.regs:
        problems.append("register index order differs")
    for i in range(len(want.index)):
        if got.rows.get(i, 0) != want.rows.get(i, 0):
            problems.append(f"adjacency row {i} differs")
            break
    if ([(m.dst, m.src) for m in got.moves]
            != [(m.dst, m.src) for m in want.moves]):
        problems.append("move list differs")
    if got.block_rows != want.block_rows:
        problems.append("block rows differ")
    return problems


def _build_interference_int(
    func: Function, liveness: Liveness, collect_block_rows: bool
) -> InterferenceGraph:
    index = liveness.index
    out_mask = liveness.live_out_mask

    moves: list[Move] = []
    #: dense id -> adjacency mask (one-sided; symmetrized at the end)
    rows: dict[int, int] = {}
    block_rows: dict[str, dict[int, int]] | None = (
        {} if collect_block_rows else None
    )

    with phase("rows"):
        for blk in func.blocks:
            if block_rows is None:
                scan_block_rows(blk, index, out_mask[blk.label], rows, moves)
            else:
                local: dict[int, int] = {}
                scan_block_rows(blk, index, out_mask[blk.label], local, moves)
                block_rows[blk.label] = local
                for i, row in local.items():
                    rows[i] = rows.get(i, 0) | row

    graph = finish_interference(index, rows, moves)
    graph.block_rows = block_rows
    return graph


def _build_interference_numpy(
    func: Function, liveness: Liveness, collect_block_rows: bool
) -> InterferenceGraph:
    """Pack-driven scan + one matrix symmetrization.

    Produces the same one-sided rows as the int scan (mask-for-mask,
    including per-block ``block_rows``), then symmetrizes them with one
    bit-transpose instead of the per-bit mirroring loop.  The graph's
    ``rows`` is a :class:`~repro.analysis.matrix.MatrixRows` view —
    same ``.get`` contract, rows decoded lazily.
    """
    pack = liveness.pack
    if pack is None:
        # Liveness came from the int backend (e.g. the mode changed
        # between phases); one extra walk rebuilds the packed form.
        pack = matrix.build_pack(func)
    index = liveness.index
    out_mask = liveness.live_out_mask
    entries_of = pack.block_entries
    has_phi = pack.has_phi

    moves: list[Move] = []
    #: dense one-sided rows, indexed by dense id (the pack walk has
    #: already registered every register, so the index is complete)
    rows: list[int] = [0] * len(index)
    block_rows: dict[str, dict[int, int]] | None = (
        {} if collect_block_rows else None
    )

    with phase("rows"):
        row_and = pack.def_and_masks()
        for blk in func.blocks:
            label = blk.label
            if label in has_phi:
                raise ValueError("interference runs after out-of-SSA")
            entries = entries_of[label]
            if block_rows is None:
                matrix.scan_packed_block_dense(entries, out_mask[label],
                                               rows, moves, row_and)
            else:
                local: dict[int, int] = {}
                matrix.scan_packed_block(entries, out_mask[label], local,
                                         moves, row_and)
                block_rows[label] = local
                for i, row in local.items():
                    rows[i] |= row

    sym = matrix.symmetrize_matrix(
        matrix.pack_masks(rows, matrix.words_for(len(index))), len(index)
    )
    graph = InterferenceGraph(moves=moves, index=index,
                              rows=matrix.MatrixRows(sym))
    graph.block_rows = block_rows
    return graph


def build_interference_reference(
    func: Function,
    cfg: CFG | None = None,
    liveness: Liveness | None = None,
) -> InterferenceGraph:
    """The direct set-based builder (oracle for the bitset kernel)."""
    if cfg is None:
        cfg = build_cfg(func)
    if liveness is None:
        liveness = compute_liveness(func, cfg)

    graph = InterferenceGraph()
    for param in func.params:
        graph.ensure(param)

    for blk in func.blocks:
        live: set[Register] = set(liveness.live_out[blk.label])
        for instr in reversed(blk.instrs):
            if isinstance(instr, Phi):
                raise ValueError("interference runs after out-of-SSA")
            defs = [d for d in instr.defs() if isinstance(d, (VReg, PReg))]
            uses = [u for u in instr.uses() if isinstance(u, (VReg, PReg))]
            for reg in defs + uses:
                graph.ensure(reg)

            if isinstance(instr, Move):
                graph.moves.append(instr)
                live.discard(instr.src)

            for d in defs:
                for other in live:
                    graph.add_edge(d, other)
                for d2 in defs:
                    graph.add_edge(d, d2)
            live -= set(defs)
            live |= set(uses)
    return graph
