"""Interference-graph construction.

Chaitin's definition with the standard refinements:

* at every definition point, the defined register interferes with every
  register live *after* the instruction (this covers dead definitions,
  which still clobber), and with the other registers defined by the same
  instruction;
* for a copy ``dst = src`` the edge ``dst–src`` is *not* added (they may
  share a register; that is the whole point of coalescing);
* registers of different classes never interfere (separate files);
* physical–physical edges are implicit and not stored.

The builder accumulates adjacency as *bitmasks* over the dense register
index that liveness computed: one backward scan per block keeps the live
set as an int, and each definition point ORs the whole live mask into
the definer's adjacency row in one operation.  Rows are symmetrized and
materialized into the public dict-of-sets adjacency at the end.
:func:`build_interference_reference` retains the direct set-based
builder as the property-test oracle.

The result also collects the function's move instructions — the
coalescing worklist every allocator variant starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.indexing import iter_bits
from repro.analysis.liveness import Liveness, compute_liveness
from repro.cfg.analysis import CFG, build_cfg
from repro.ir.function import Function
from repro.ir.instructions import Move, Phi
from repro.ir.values import PReg, RegClass, Register, VReg

__all__ = [
    "InterferenceGraph",
    "build_interference",
    "build_interference_reference",
]


@dataclass(eq=False)
class InterferenceGraph:
    """Adjacency over virtual and physical registers, plus the move list."""

    adjacency: dict[Register, set[Register]] = field(default_factory=dict)
    moves: list[Move] = field(default_factory=list)

    def nodes(self) -> list[Register]:
        return list(self.adjacency)

    def vregs(self) -> list[VReg]:
        return [n for n in self.adjacency if isinstance(n, VReg)]

    def nodes_by_class(self) -> dict[RegClass, list[Register]]:
        """Nodes partitioned by register class, in insertion order.

        Computed once and cached so per-class projections
        (:func:`~repro.regalloc.igraph.build_alloc_graph`) do not rescan
        every node of the function for every class; the cache refreshes
        if nodes were added since it was built.
        """
        cached = getattr(self, "_class_cache", None)
        if cached is not None and cached[0] == len(self.adjacency):
            return cached[1]
        partition: dict[RegClass, list[Register]] = {}
        for node in self.adjacency:
            partition.setdefault(node.rclass, []).append(node)
        self._class_cache = (len(self.adjacency), partition)
        return partition

    def ensure(self, node: Register) -> None:
        self.adjacency.setdefault(node, set())

    def add_edge(self, a: Register, b: Register) -> None:
        if a is b or a == b:
            return
        if a.rclass is not b.rclass:
            return
        if isinstance(a, PReg) and isinstance(b, PReg):
            return
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def interferes(self, a: Register, b: Register) -> bool:
        if isinstance(a, PReg) and isinstance(b, PReg):
            return a != b and a.rclass is b.rclass
        return b in self.adjacency.get(a, ())

    def degree(self, node: Register) -> int:
        return len(self.adjacency.get(node, ()))

    def neighbors(self, node: Register) -> set[Register]:
        return self.adjacency.get(node, set())


def build_interference(
    func: Function,
    cfg: CFG | None = None,
    liveness: Liveness | None = None,
) -> InterferenceGraph:
    """Build the interference graph of a phi-free, lowered function."""
    if cfg is None:
        cfg = build_cfg(func)
    if liveness is None:
        liveness = compute_liveness(func, cfg)
    if liveness.index is None:
        return build_interference_reference(func, cfg, liveness)

    index = liveness.index
    bit_of = index.bit_of
    out_mask = liveness.live_out_mask

    graph = InterferenceGraph()
    moves = graph.moves
    #: dense id -> adjacency mask (one-sided; symmetrized below)
    rows: dict[int, int] = {}
    seen = 0

    for param in func.params:
        seen |= bit_of(param)

    for blk in func.blocks:
        live = out_mask[blk.label]
        for instr in reversed(blk.instrs):
            if isinstance(instr, Phi):
                raise ValueError("interference runs after out-of-SSA")
            defs = [d for d in instr.defs() if isinstance(d, (VReg, PReg))]
            uses = [u for u in instr.uses() if isinstance(u, (VReg, PReg))]

            if isinstance(instr, Move):
                moves.append(instr)
                if isinstance(instr.src, (VReg, PReg)):
                    live &= ~bit_of(instr.src)

            defs_mask = 0
            for d in defs:
                defs_mask |= bit_of(d)
            seen |= defs_mask
            targets = live | defs_mask
            for d in defs:
                dbit = bit_of(d)
                row = (targets & index.class_mask(d)) & ~dbit
                if isinstance(d, PReg):
                    # Physical-physical edges are implicit, never stored.
                    row &= ~index.preg_mask
                i = dbit.bit_length() - 1
                rows[i] = rows.get(i, 0) | row

            live &= ~defs_mask
            for u in uses:
                live |= bit_of(u)
            seen |= live

    # Symmetrize: every edge recorded on the definer's row lands on the
    # partner's row too (cost: one pass over the stored edges).
    for i, row in list(rows.items()):
        bit = 1 << i
        for j in iter_bits(row):
            rows[j] = rows.get(j, 0) | bit

    # Materialize the public dict-of-sets adjacency in dense-id order so
    # node insertion order is deterministic.
    regs = index.regs
    adjacency = graph.adjacency
    for i in iter_bits(seen):
        adjacency[regs[i]] = {regs[j] for j in iter_bits(rows.get(i, 0))}
    return graph


def build_interference_reference(
    func: Function,
    cfg: CFG | None = None,
    liveness: Liveness | None = None,
) -> InterferenceGraph:
    """The direct set-based builder (oracle for the bitset kernel)."""
    if cfg is None:
        cfg = build_cfg(func)
    if liveness is None:
        liveness = compute_liveness(func, cfg)

    graph = InterferenceGraph()
    for param in func.params:
        graph.ensure(param)

    for blk in func.blocks:
        live: set[Register] = set(liveness.live_out[blk.label])
        for instr in reversed(blk.instrs):
            if isinstance(instr, Phi):
                raise ValueError("interference runs after out-of-SSA")
            defs = [d for d in instr.defs() if isinstance(d, (VReg, PReg))]
            uses = [u for u in instr.uses() if isinstance(u, (VReg, PReg))]
            for reg in defs + uses:
                graph.ensure(reg)

            if isinstance(instr, Move):
                graph.moves.append(instr)
                live.discard(instr.src)

            for d in defs:
                for other in live:
                    graph.add_edge(d, other)
                for d2 in defs:
                    graph.add_edge(d, d2)
            live -= set(defs)
            live |= set(uses)
    return graph
