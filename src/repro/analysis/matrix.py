"""numpy ``uint64`` bit-matrix backend for the dataflow kernels.

The PR-1 kernels run set algebra over Python big-int bitmasks.  That is
fast per operation but pays Python-interpreter cost per *block* and per
*instruction*: the index walk, the gen/kill summaries, and the
interference scan each re-traverse every instruction calling
``defs()``/``uses()`` and re-testing ``isinstance``.  This module packs
those traversals into one :class:`FunctionPack` walk and re-expresses
the whole-function phases as ``uint64`` bit-matrix operations (shape
``n_rows x ceil(n_bits/64)``):

* liveness solving becomes row-wise OR/AND-NOT sweeps over the packed
  gen/kill matrices with a vectorized changed-row test
  (:func:`solve_liveness`), seeded by one cheap in-order pass;
* interference rows are accumulated from pre-packed per-instruction
  masks and symmetrized by one bit-transpose
  (:func:`symmetrize_matrix`), with :class:`MatrixRows` handing the
  result to :class:`~repro.analysis.interference.InterferenceGraph`
  through the same lazy ``rows`` mapping contract the int backend uses;
* the incremental spill-round mask translation becomes one batched
  unpack / column-permute / repack (:func:`translate_masks`);
* popcounts go through ``np.bitwise_count`` when available
  (:func:`popcount_rows`), falling back to an unpackbits sum.

Backend choice follows the ``REPRO_SELECT_INDEX`` escape-hatch pattern:
``REPRO_DATAFLOW=int`` (or ``0``/``off``/``false``/``no``) keeps the
retained int kernels, ``numpy`` selects this module, ``validate`` runs
both and raises on the first divergent mask, and the default is numpy
whenever it imports (silently falling back to int when it does not —
numpy is only the optional ``[perf]`` extra).  The knob is strategy-only
— every mode produces byte-identical analyses — so it deliberately
stays out of ``AllocationOptions`` and the service cache fingerprint.
``REPRO_NO_NUMPY=1`` makes the interpreter behave as if numpy were not
installed (the CI no-numpy leg runs under it).
"""

from __future__ import annotations

import warnings
from collections import deque

from repro.config import knob_env
from repro.ir.instructions import Move, Phi
from repro.ir.values import PReg, VReg

from repro.analysis.indexing import RegisterIndex

__all__ = [
    "parse_dataflow",
    "dataflow_mode",
    "have_numpy",
    "numpy_version",
    "active_backend",
    "FunctionPack",
    "build_pack",
    "scan_packed_block",
    "scan_packed_block_dense",
    "solve_liveness",
    "sets_of_masks",
    "MatrixRows",
    "pack_masks",
    "unpack_masks",
    "symmetrize_matrix",
    "translate_masks",
    "popcount_rows",
    "words_for",
]

WORD = 64

#: Below this many matrix cells (``n_rows * words``) the liveness
#: sweeps stay on the int worklist: per-call numpy overhead beats the
#: word-parallel win on small functions, and both schedules reach the
#: same unique fixed point.  The CPG replay has its own analogous
#: threshold (:data:`repro.core.cpg.MATRIX_MIN_NODES`).
MATRIX_MIN_CELLS = 512


# ----------------------------------------------------------------------
# backend selection

_np = None
_np_checked = False
_warned_missing = False


def _numpy():
    """The numpy module, or None when absent (or suppressed for tests)."""
    global _np, _np_checked
    suppressed = knob_env("REPRO_NO_NUMPY")
    if suppressed is not None and suppressed.strip().lower() in {
        "1", "on", "true", "yes"
    }:
        return None
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy-less environments
            numpy = None
        _np = numpy
    return _np


def have_numpy() -> bool:
    return _numpy() is not None


def numpy_version() -> str | None:
    np = _numpy()
    return None if np is None else np.__version__


def parse_dataflow(raw: str) -> str:
    """Normalize a dataflow-backend setting to int/numpy/validate."""
    raw = str(raw).strip().lower()
    if raw in {"0", "off", "false", "no", "int"}:
        return "int"
    if raw == "validate":
        return "validate"
    return "numpy"


def dataflow_mode() -> str:
    """``"numpy"`` (default when importable), ``"int"``, or ``"validate"``.

    Controlled by the ``REPRO_DATAFLOW`` environment variable.  An
    unset variable picks numpy when it imports and silently falls back
    to int otherwise; an *explicit* ``numpy``/``validate`` request
    without numpy warns once (``RuntimeWarning``) and falls back.
    """
    global _warned_missing
    raw = knob_env("REPRO_DATAFLOW")
    if raw is None:
        return "numpy" if have_numpy() else "int"
    mode = parse_dataflow(raw)
    if mode != "int" and not have_numpy():
        if not _warned_missing:
            _warned_missing = True
            warnings.warn(
                f"REPRO_DATAFLOW={raw!r} requested but numpy is not "
                f"available; falling back to the int dataflow backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return "int"
    return mode


def active_backend() -> str:
    """``"int"`` or ``"numpy"`` — what the current mode computes with.

    Validate mode reports ``"numpy"``: it runs both backends but
    returns the numpy results.
    """
    return "int" if dataflow_mode() == "int" else "numpy"


# ----------------------------------------------------------------------
# int mask <-> uint64 row conversions

def words_for(n_bits: int) -> int:
    """uint64 words needed for ``n_bits`` (always at least one)."""
    return max(1, (n_bits + WORD - 1) // WORD)


def pack_masks(masks, words: int):
    """Pack an iterable of int masks into one ``(len, words)`` matrix."""
    np = _numpy()
    nbytes = words * 8
    buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
    n = len(buf) // nbytes
    if n == 0:
        return np.zeros((0, words), dtype=np.uint64)
    return np.frombuffer(buf, dtype="<u8").reshape(n, words).astype(
        np.uint64, copy=True
    )


def unpack_masks(matrix) -> list[int]:
    """Rows of a uint64 bit-matrix back as Python int masks."""
    nbytes = matrix.shape[1] * 8
    buf = matrix.tobytes()
    return [
        int.from_bytes(buf[i * nbytes:(i + 1) * nbytes], "little")
        for i in range(matrix.shape[0])
    ]


def popcount_rows(matrix):
    """Per-row set-bit counts (``np.bitwise_count`` with a fallback)."""
    np = _numpy()
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
    bits = np.unpackbits(matrix.view(np.uint8), axis=1)
    return bits.sum(axis=1, dtype=np.int64)


def sets_of_masks(index: RegisterIndex, masks) -> list[set]:
    """Materialize many masks into Register sets in one vectorized pass.

    Equivalent to ``[index.set_of(m) for m in masks]`` but unpacks all
    masks at once and splits one global ``nonzero`` instead of
    bit-iterating each big int.  Elements are inserted in ascending
    dense-id order, exactly like ``set_of``.
    """
    np = _numpy()
    masks = list(masks)
    if not masks:
        return []
    matrix = pack_masks(masks, words_for(len(index)))
    bits = np.unpackbits(matrix.view(np.uint8), axis=1, bitorder="little")
    rows, cols = np.nonzero(bits)
    bounds = np.searchsorted(rows, np.arange(len(masks) + 1)).tolist()
    cols = cols.tolist()
    regs = index.regs
    return [
        {regs[j] for j in cols[bounds[i]:bounds[i + 1]]}
        for i in range(len(masks))
    ]


# ----------------------------------------------------------------------
# the pack: one walk replacing the index / summary / scan traversals

class FunctionPack:
    """Everything the matrix kernels need, gathered in one function walk.

    The walk assigns dense ids in *exactly*
    :func:`~repro.analysis.indexing.index_function` order (parameters,
    then per instruction defs before uses / phi-incoming values), so the
    resulting :attr:`index` — and every mask built on it — is
    interchangeable with the int backend's.
    """

    __slots__ = ("index", "gen", "kill", "phi_defs", "edge_use",
                 "block_entries", "has_phi", "words", "_row_and")

    def __init__(self) -> None:
        self.index = RegisterIndex()
        #: per-block gen (upward-exposed use) / kill (def) / phi-def masks
        self.gen: dict[str, int] = {}
        self.kill: dict[str, int] = {}
        self.phi_defs: dict[str, int] = {}
        #: per-edge phi-arm uses: (pred, succ) -> mask
        self.edge_use: dict[tuple[str, str], int] = {}
        #: per-block interference-scan entries in reversed (scan) order:
        #: (defs_mask, uses_mask, move_src_clear, move).  Runs of
        #: consecutive use-only instructions are merged into one entry
        #: (only their combined ``live |= uses`` effect is observable)
        #: and operand-free instructions are dropped outright.
        self.block_entries: dict[str, tuple] = {}
        #: labels still containing phis (their entries must not be
        #: interference-scanned; the builder raises like the int scan)
        self.has_phi: set[str] = set()
        self.words: int = 1
        self._row_and: list[int] | None = None

    def def_and_masks(self) -> list[int]:
        """Per-dense-id row AND-mask (class projection, self-bit strip,
        and preg-preg suppression), built once on first scan."""
        row_and = self._row_and
        if row_and is None:
            index = self.index
            int_mask = index.int_mask
            float_mask = index.float_mask
            preg_mask = index.preg_mask
            not_preg = ~preg_mask
            row_and = []
            bit = 1
            for _ in range(len(index.regs)):
                base = int_mask if bit & int_mask else float_mask
                mask = base & ~bit
                if bit & preg_mask:
                    mask &= not_preg
                row_and.append(mask)
                bit <<= 1
            self._row_and = row_and
        return row_and


def build_pack(func) -> FunctionPack:
    """One deterministic walk of ``func`` producing its pack."""
    pack = FunctionPack()
    index = pack.index
    ids = index.ids
    iget = ids.get
    add = index.add
    edge_use = pack.edge_use
    for param in func.params:
        add(param)
    for blk in func.blocks:
        label = blk.label
        gen = kill = phi_defs = 0
        entries = []
        for instr in blk.instrs:
            if isinstance(instr, Phi):
                pack.has_phi.add(label)
                dmask = 0
                for d in instr.defs():
                    if isinstance(d, (VReg, PReg)):
                        i = iget(d)
                        dmask |= 1 << (add(d) if i is None else i)
                kill |= dmask
                phi_defs |= dmask
                for pred, value in instr.incoming.items():
                    if isinstance(value, (VReg, PReg)):
                        i = iget(value)
                        key = (pred, label)
                        edge_use[key] = edge_use.get(key, 0) | (
                            1 << (add(value) if i is None else i)
                        )
                continue
            dmask = 0
            for d in instr.defs():
                if isinstance(d, (VReg, PReg)):
                    i = iget(d)
                    dmask |= 1 << (add(d) if i is None else i)
            umask = 0
            for u in instr.uses():
                if isinstance(u, (VReg, PReg)):
                    i = iget(u)
                    umask |= 1 << (add(u) if i is None else i)
            gen |= umask & ~kill
            kill |= dmask
            if isinstance(instr, Move):
                src = instr.src
                srcclear = (
                    1 << ids[src] if isinstance(src, (VReg, PReg)) else 0
                )
                entries.append((dmask, umask, srcclear, instr))
            elif dmask:
                entries.append((dmask, umask, 0, None))
            elif umask:
                # Use-only instruction: fold into an adjacent use-only
                # entry — the scan only ever observes the combined OR.
                if entries and entries[-1][0] == 0 and entries[-1][3] is None:
                    prev = entries[-1]
                    entries[-1] = (0, prev[1] | umask, 0, None)
                else:
                    entries.append((0, umask, 0, None))
        pack.gen[label] = gen
        pack.kill[label] = kill
        pack.phi_defs[label] = phi_defs
        entries.reverse()
        pack.block_entries[label] = tuple(entries)
    pack.words = words_for(len(index))
    return pack


def scan_packed_block(entries, live_out: int, rows: dict[int, int],
                      moves: list, row_and: list[int]) -> None:
    """Backward interference scan of one pre-packed block.

    Mask-for-mask and move-for-move identical to
    :func:`~repro.analysis.interference.scan_block_rows`, but over the
    pack's per-instruction masks — no ``defs()``/``uses()`` calls, no
    isinstance tests, no per-register bit lookups.  ``row_and`` is the
    pack's :meth:`~FunctionPack.def_and_masks` table.
    """
    live = live_out
    get = rows.get
    append = moves.append
    for dmask, umask, srcclear, move in entries:
        if move is not None:
            append(move)
            if srcclear:
                live &= ~srcclear
        if dmask:
            targets = live | dmask
            rest = dmask
            while rest:
                low = rest & -rest
                rest ^= low
                i = low.bit_length() - 1
                rows[i] = get(i, 0) | (targets & row_and[i])
        live = (live & ~dmask) | umask


def scan_packed_block_dense(entries, live_out: int, rows: list[int],
                            moves: list, row_and: list[int]) -> None:
    """:func:`scan_packed_block` accumulating into a dense row list.

    Same masks, same move order; ``rows`` is indexed by dense id (one
    slot per indexed register), skipping the sparse dict's hashing.
    """
    live = live_out
    append = moves.append
    for dmask, umask, srcclear, move in entries:
        if move is not None:
            append(move)
            if srcclear:
                live &= ~srcclear
        if dmask:
            targets = live | dmask
            rest = dmask
            while rest:
                low = rest & -rest
                rest ^= low
                i = low.bit_length() - 1
                rows[i] |= targets & row_and[i]
        live = (live & ~dmask) | umask


# ----------------------------------------------------------------------
# liveness: seeded row-OR/AND-NOT sweeps

def solve_liveness(pack: FunctionPack, cfg) -> tuple[dict, dict]:
    """Fixed-point live-in/live-out masks per block label.

    One in-order (postorder) Gauss–Seidel pass over int masks seeds the
    solution below the fixed point; matrix sweeps — a gathered
    successor OR, a row-wise ``gen | (out & ~kill)`` transfer, and one
    vectorized changed-row test — then drive it to (and certify) the
    fixed point.  The fixed point is unique, so the result is
    mask-identical to the int worklist's regardless of schedule.
    Unreachable blocks keep zero masks, exactly like the int worklist
    (which never queues them).

    Below :data:`MATRIX_MIN_CELLS` cells the sweeps stay on a plain int
    worklist — same unique fixed point, none of the per-call numpy
    overhead that dominates on small functions.
    """
    gen, kill, phi_defs = pack.gen, pack.kill, pack.phi_defs
    edge_use = pack.edge_use
    live_in = {label: 0 for label in gen}
    live_out = {label: 0 for label in gen}
    order = cfg.postorder()
    succs = cfg.succs
    if not order:
        return live_in, live_out
    words = pack.words
    if len(order) * words < MATRIX_MIN_CELLS:
        preds = cfg.preds
        pending = deque(order)
        queued = set(order)
        while pending:
            label = pending.popleft()
            queued.discard(label)
            out = 0
            for succ in succs[label]:
                out |= live_in[succ] & ~phi_defs[succ]
                out |= edge_use.get((label, succ), 0)
            new_in = (gen[label] | (out & ~kill[label])) & ~phi_defs[label]
            live_out[label] = out
            if new_in != live_in[label]:
                live_in[label] = new_in
                for pred in preds[label]:
                    if pred not in queued:
                        queued.add(pred)
                        pending.append(pred)
        return live_in, live_out

    np = _numpy()
    for label in order:
        out = 0
        for succ in succs[label]:
            out |= live_in[succ] & ~phi_defs[succ]
            out |= edge_use.get((label, succ), 0)
        live_out[label] = out
        live_in[label] = (
            gen[label] | (out & ~kill[label])
        ) & ~phi_defs[label]

    pos = {label: i for i, label in enumerate(order)}
    gen_m = pack_masks((gen[la] for la in order), words)
    nkill_m = ~pack_masks((kill[la] for la in order), words)
    nphi_m = ~pack_masks((phi_defs[la] for la in order), words)
    in_m = pack_masks((live_in[la] for la in order), words)

    e_dst: list[int] = []
    e_masks: list[int] = []
    starts: list[int] = []
    out_rows: list[int] = []
    for i, label in enumerate(order):
        slist = succs[label]
        if not slist:
            continue
        starts.append(len(e_dst))
        out_rows.append(i)
        for succ in slist:
            e_dst.append(pos[succ])
            e_masks.append(edge_use.get((label, succ), 0))
    out_m = np.zeros_like(in_m)
    if e_dst:
        e_dst_a = np.asarray(e_dst, dtype=np.intp)
        starts_a = np.asarray(starts, dtype=np.intp)
        out_rows_a = np.asarray(out_rows, dtype=np.intp)
        edge_m = pack_masks(e_masks, words)
        while True:
            out_m = np.zeros_like(in_m)
            contrib = (in_m[e_dst_a] & nphi_m[e_dst_a]) | edge_m
            out_m[out_rows_a] = np.bitwise_or.reduceat(
                contrib, starts_a, axis=0
            )
            new_in = (gen_m | (out_m & nkill_m)) & nphi_m
            if np.array_equal(new_in, in_m):
                break
            in_m = new_in
    in_masks = unpack_masks(in_m)
    out_masks = unpack_masks(out_m)
    for i, label in enumerate(order):
        live_in[label] = in_masks[i]
        live_out[label] = out_masks[i]
    return live_in, live_out


def sweep_liveness(gen: dict, kill: dict, seed_in: dict, succs,
                   n_regs: int) -> tuple[dict, dict]:
    """Drive a below-fixpoint seed to the liveness fixed point.

    The phi-free variant of :func:`solve_liveness`'s sweep stage, used
    by incremental spill-round re-analysis: ``seed_in`` (the translated
    previous-round solution) must be pointwise at or below the fixed
    point, which the monotone sweeps then reach and certify.  All
    blocks in ``gen`` participate (the incremental path requires a
    fully-reachable CFG).  Like :func:`solve_liveness`, functions below
    :data:`MATRIX_MIN_CELLS` cells drain a plain int worklist instead.
    """
    labels = list(gen)
    live_in = dict(seed_in)
    live_out = {label: 0 for label in labels}
    if not labels:
        return live_in, live_out
    words = words_for(n_regs)
    if len(labels) * words < MATRIX_MIN_CELLS:
        preds: dict[str, list[str]] = {label: [] for label in labels}
        for label in labels:
            for succ in succs[label]:
                preds[succ].append(label)
        pending = deque(labels)
        queued = set(labels)
        while pending:
            label = pending.popleft()
            queued.discard(label)
            out = 0
            for succ in succs[label]:
                out |= live_in[succ]
            new_in = gen[label] | (out & ~kill[label])
            live_out[label] = out
            if new_in != live_in[label]:
                live_in[label] = new_in
                for pred in preds[label]:
                    if pred not in queued:
                        queued.add(pred)
                        pending.append(pred)
        return live_in, live_out

    np = _numpy()
    pos = {label: i for i, label in enumerate(labels)}
    gen_m = pack_masks((gen[la] for la in labels), words)
    nkill_m = ~pack_masks((kill[la] for la in labels), words)
    in_m = pack_masks((live_in[la] for la in labels), words)

    e_dst: list[int] = []
    starts: list[int] = []
    out_rows: list[int] = []
    for i, label in enumerate(labels):
        slist = succs[label]
        if not slist:
            continue
        starts.append(len(e_dst))
        out_rows.append(i)
        for succ in slist:
            e_dst.append(pos[succ])
    out_m = np.zeros_like(in_m)
    if e_dst:
        e_dst_a = np.asarray(e_dst, dtype=np.intp)
        starts_a = np.asarray(starts, dtype=np.intp)
        out_rows_a = np.asarray(out_rows, dtype=np.intp)
        while True:
            out_m = np.zeros_like(in_m)
            out_m[out_rows_a] = np.bitwise_or.reduceat(
                in_m[e_dst_a], starts_a, axis=0
            )
            new_in = gen_m | (out_m & nkill_m)
            if np.array_equal(new_in, in_m):
                break
            in_m = new_in
    else:
        in_m = gen_m | (out_m & nkill_m)
    in_masks = unpack_masks(in_m)
    out_masks = unpack_masks(out_m)
    for i, label in enumerate(labels):
        live_in[label] = in_masks[i]
        live_out[label] = out_masks[i]
    return live_in, live_out


# ----------------------------------------------------------------------
# interference: matrix symmetrization + the lazy rows mapping

def symmetrize_matrix(matrix, n_bits: int):
    """``matrix | matrix^T`` over the leading ``n_bits`` bit columns.

    One unpack / boolean transpose-OR / repack replaces the int
    backend's per-bit mirroring loop.  Returns a fresh matrix of the
    same shape.
    """
    np = _numpy()
    rows, words = matrix.shape
    bits = np.unpackbits(matrix.view(np.uint8), axis=1, bitorder="little")
    square = bits[:, :n_bits]
    bits[:, :n_bits] = square | square.T
    packed = np.packbits(bits, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64).reshape(rows, words)


class MatrixRows:
    """The ``rows`` mapping of a bit-matrix interference graph.

    Duck-types the ``dict[int, int]`` rows the int backend stores on
    :class:`~repro.analysis.interference.InterferenceGraph` — consumers
    only ever call ``.get(dense_id, default)`` — while keeping the
    symmetrized adjacency as one numpy matrix.  The first ``get``
    decodes *every* row in one batch (graph consumers — the per-class
    projection, simplify, select — end up touching nearly all of them),
    after which lookups are plain list indexing.
    """

    __slots__ = ("matrix", "_masks")

    def __init__(self, matrix) -> None:
        self.matrix = matrix
        self._masks: list[int] | None = None

    def get(self, i: int, default: int = 0) -> int:
        masks = self._masks
        if masks is None:
            masks = self._masks = unpack_masks(self.matrix)
        if 0 <= i < len(masks):
            return masks[i]
        return default

    def masks(self) -> list[int]:
        if self._masks is None:
            self._masks = unpack_masks(self.matrix)
        return list(self._masks)


def rows_matrix(rows: dict[int, int], n_bits: int):
    """A dense ``(n_bits, words)`` matrix from a sparse rows dict."""
    get = rows.get
    return pack_masks((get(i, 0) for i in range(n_bits)),
                      words_for(n_bits))


# ----------------------------------------------------------------------
# incremental re-analysis: batched row translation

def translate_masks(masks, trans_pos, old_n: int, new_n: int) -> list[int]:
    """Translate many masks through a dense-id renumbering at once.

    ``trans_pos[old_id]`` is the new dense id, or -1 when the register
    was deleted.  The mapping is injective on survivors (renumbering is
    a bijection on surviving webs), so the column permute below never
    collides.  Equivalent to the int backend's chunk-memoized
    ``translate`` applied to each mask.
    """
    np = _numpy()
    masks = list(masks)
    if not masks:
        return []
    trans_pos = np.asarray(trans_pos, dtype=np.int64)
    matrix = pack_masks(masks, words_for(old_n))
    bits = np.unpackbits(
        matrix.view(np.uint8), axis=1, bitorder="little"
    )[:, :old_n]
    valid = trans_pos >= 0
    new_bits = np.zeros((len(masks), words_for(new_n) * WORD), np.uint8)
    new_bits[:, trans_pos[valid]] = bits[:, valid]
    packed = np.packbits(new_bits, axis=1, bitorder="little")
    out = np.ascontiguousarray(packed).view(np.uint64).reshape(
        len(masks), words_for(new_n)
    )
    return unpack_masks(out)
