"""SSA construction and destruction."""

from repro.ssa.construct import to_ssa
from repro.ssa.dce import eliminate_dead_code
from repro.ssa.destruct import from_ssa, split_critical_edges

__all__ = ["to_ssa", "from_ssa", "split_critical_edges", "eliminate_dead_code"]
