"""Out-of-SSA: naive phi elimination through copies.

This is deliberately the *naive* scheme the paper's introduction motivates
("a naive SSA-transformed program has many copy operations, and therefore
it is necessary to remove as many copies as possible by a good register
selection"): each phi ``d = phi[P1: v1, ..., Pn: vn]`` becomes

* a fresh carrier ``t``,
* ``t = vi`` at the end of every predecessor ``Pi``,
* ``d = t`` at the phi's position.

Routing every arm through a single carrier temp sidesteps both the
lost-copy and the swap problem (all arm reads happen in the predecessors,
before any phi destination is overwritten), at the price of one extra copy
per phi — which is exactly the copy pressure the coalescing evaluation in
Figure 9 is about.  Critical edges are split first so arm copies never
execute on an unrelated path.
"""

from __future__ import annotations

from repro.cfg.analysis import build_cfg
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import ConstInst, Jump, Move, Phi
from repro.ir.values import Const

__all__ = ["from_ssa", "split_critical_edges"]


def split_critical_edges(func: Function) -> int:
    """Split every edge whose source has >1 successor and target >1
    predecessor; returns the number of edges split."""
    cfg = build_cfg(func)
    blocks = func.block_map()
    split = 0
    for src_label in list(cfg.succs):
        succs = cfg.succs[src_label]
        if len(succs) < 2:
            continue
        for dst_label in succs:
            if len(cfg.preds[dst_label]) < 2:
                continue
            split += 1
            mid_label = f"{src_label}.{dst_label}.{split}"
            mid = BasicBlock(mid_label, [Jump(dst_label)])
            # Place the split block right before its target for readability.
            index = func.blocks.index(blocks[dst_label])
            func.blocks.insert(index, mid)
            term = blocks[src_label].terminator
            assert term is not None
            _retarget(term, dst_label, mid_label)
            for phi in blocks[dst_label].phis():
                if src_label in phi.incoming:
                    phi.incoming[mid_label] = phi.incoming.pop(src_label)
            # Rebuild edge snapshots that the loop still consults.
            cfg = build_cfg(func)
            blocks = func.block_map()
    return split


def _retarget(term, old: str, new: str) -> None:
    from repro.ir.instructions import Branch, Jump as J

    if isinstance(term, J):
        if term.target == old:
            term.target = new
    elif isinstance(term, Branch):
        if term.iftrue == old:
            term.iftrue = new
        if term.iffalse == old:
            term.iffalse = new


def from_ssa(func: Function) -> Function:
    """Replace all phis with copies, in place (also returns the function)."""
    split_critical_edges(func)
    blocks = func.block_map()
    for blk in func.blocks:
        phis = blk.phis()
        if not phis:
            continue
        for phi in phis:
            carrier = func.new_vreg(
                phi.dst.rclass, name=_carrier_name(phi)
            )
            for pred_label, value in phi.incoming.items():
                pred = blocks[pred_label]
                if isinstance(value, Const):
                    pred.insert_before_terminator(ConstInst(carrier, value.value))
                else:
                    pred.insert_before_terminator(Move(carrier, value))
            # The phi slot itself becomes `dst = carrier`.
            index = blk.instrs.index(phi)
            blk.instrs[index] = Move(phi.dst, carrier)
    assert not any(isinstance(i, Phi) for b in func.blocks for i in b.instrs)
    return func


def _carrier_name(phi: Phi) -> str | None:
    base = getattr(phi.dst, "name", None)
    return f"{base}.c" if base else None
