"""SSA construction: pruned phi insertion + dominator-tree renaming.

Follows Cytron et al. [5] with the usual pruning refinement: a phi for
variable ``v`` is only placed at a dominance-frontier block where ``v`` is
live-in, which avoids dead phis (and the undefined-operand headaches they
bring).  Renaming walks the dominator tree iteratively.

The input is the generator's (or builder's) multiple-assignment IR; the
output is strict SSA over fresh virtual registers, validated by
``validate_function(..., ssa=True)``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.liveness import compute_liveness
from repro.cfg.analysis import build_cfg, remove_unreachable_blocks
from repro.cfg.dominance import compute_dominance
from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import Value, VReg

__all__ = ["to_ssa"]


def to_ssa(func: Function) -> Function:
    """Convert ``func`` to pruned SSA in place (also returns it)."""
    remove_unreachable_blocks(func)
    cfg = build_cfg(func)
    dom = compute_dominance(cfg)
    liveness = compute_liveness(func, cfg)
    blocks = func.block_map()

    # --- phi insertion at iterated dominance frontiers -----------------
    def_blocks: dict[VReg, set[str]] = defaultdict(set)
    for blk in func.blocks:
        for instr in blk.instrs:
            for d in instr.defs():
                if isinstance(d, VReg):
                    def_blocks[d].add(blk.label)
    for param in func.params:
        def_blocks[param].add(func.entry.label)

    phi_vars: dict[str, list[VReg]] = defaultdict(list)
    for var, sites in def_blocks.items():
        worklist = list(sites)
        placed: set[str] = set()
        while worklist:
            site = worklist.pop()
            for front in dom.frontier.get(site, ()):
                if front in placed:
                    continue
                if var not in liveness.live_in[front]:
                    continue  # pruned SSA: dead here
                placed.add(front)
                phi_vars[front].append(var)
                if front not in sites:
                    worklist.append(front)

    for label, variables in phi_vars.items():
        blk = blocks[label]
        for var in variables:
            # Placeholder phi over the original name; renaming fixes arms.
            arms: dict[str, Value] = {p: var for p in cfg.preds[label]}
            blk.instrs.insert(0, Phi(var, arms))

    # --- renaming along the dominator tree -----------------------------
    stacks: dict[VReg, list[VReg]] = defaultdict(list)
    new_params: list[VReg] = []
    for param in func.params:
        fresh = func.new_vreg(param.rclass, name=_versioned(param, 0))
        stacks[param].append(fresh)
        new_params.append(fresh)
    versions: dict[VReg, int] = {p: 1 for p in func.params}

    undef_names: dict[VReg, VReg] = {}

    def fresh_def(var: VReg) -> VReg:
        n = versions.get(var, 0)
        versions[var] = n + 1
        reg = func.new_vreg(var.rclass, name=_versioned(var, n))
        stacks[var].append(reg)
        return reg

    def current(var: VReg) -> VReg:
        if not stacks[var]:
            # Use of a never-defined variable on this path: a single shared
            # "undef" name per variable (the interpreters read it as zero).
            # It must NOT be pushed, or sibling dom subtrees would see it.
            if var not in undef_names:
                undef_names[var] = func.new_vreg(
                    var.rclass, name=_versioned(var, "undef")
                )
            return undef_names[var]
        return stacks[var][-1]

    # Iterative preorder walk with explicit "pop" events so stack discipline
    # matches the recursive formulation.
    actions: list[tuple[str, str]] = [("visit", dom.entry)]
    pushed_log: dict[str, list[VReg]] = {}
    while actions:
        kind, label = actions.pop()
        if kind == "pop":
            for var in reversed(pushed_log[label]):
                stacks[var].pop()
            continue
        blk = blocks[label]
        pushed: list[VReg] = []
        for instr in blk.instrs:
            if isinstance(instr, Phi):
                old = instr.dst
                assert isinstance(old, VReg)
                instr.dst = fresh_def(old)
                pushed.append(old)
                continue
            mapping: dict[Value, Value] = {}
            for u in instr.uses():
                if isinstance(u, VReg):
                    mapping[u] = current(u)
            olds = [d for d in instr.defs() if isinstance(d, VReg)]
            instr.replace_uses(mapping)
            for old in olds:
                new = fresh_def(old)
                instr.replace_defs({old: new})
                pushed.append(old)
        # Fill phi arms of successors.
        for succ in cfg.succs[label]:
            for phi in blocks[succ].phis():
                arm = phi.incoming.get(label)
                if isinstance(arm, VReg) and arm in def_blocks:
                    phi.incoming[label] = current(arm)
        pushed_log[label] = pushed
        actions.append(("pop", label))
        for child in reversed(dom.children.get(label, [])):
            actions.append(("visit", child))

    func.params = new_params
    return func


def _versioned(var: VReg, n: int | str) -> str:
    base = var.name or f"{var.rclass.prefix()}{var.id}"
    return f"{base}.{n}"
