"""Dead-code elimination on SSA form.

The paper's allocator input is JIT-optimized code ("After performing
many advanced optimizations, the SSA-transformed intermediate code
reaches our register allocator"), so the pipeline removes dead pure
computations before allocation.  Mark-and-sweep over SSA: roots are
instructions with observable effects (stores, calls, terminators,
returns, spill stores); everything a live instruction uses is live;
unmarked pure instructions are deleted.  Handles cyclic dead phi webs,
which naive use-count iteration misses.

Copies are *not* propagated — coalescing them away is precisely the
behaviour under evaluation.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    Instruction,
    Jump,
    Ret,
    SpillStore,
    Store,
)
from repro.ir.values import Register, VReg

__all__ = ["eliminate_dead_code"]


def _has_side_effects(instr: Instruction) -> bool:
    return isinstance(instr, (Store, Call, Ret, Jump, Branch, SpillStore)) \
        or instr.is_terminator


def eliminate_dead_code(func: Function) -> int:
    """Delete dead pure instructions in place; returns how many."""
    defining: dict[Register, Instruction] = {}
    for _, instr in func.instructions():
        for d in instr.defs():
            if isinstance(d, VReg):
                defining[d] = instr

    live: set[int] = set()
    worklist: list[Instruction] = []
    for _, instr in func.instructions():
        if _has_side_effects(instr):
            live.add(id(instr))
            worklist.append(instr)

    while worklist:
        instr = worklist.pop()
        for u in instr.uses():
            if isinstance(u, VReg):
                producer = defining.get(u)
                if producer is not None and id(producer) not in live:
                    live.add(id(producer))
                    worklist.append(producer)

    used: set[Register] = set()
    for _, instr in func.instructions():
        if id(instr) in live:
            for u in instr.uses():
                used.add(u)

    removed = 0
    for blk in func.blocks:
        kept = [i for i in blk.instrs if id(i) in live]
        removed += len(blk.instrs) - len(kept)
        blk.instrs = kept
        for instr in kept:
            # A live call with a dead result keeps its effect but drops
            # the definition, so no dead web reaches the allocator.
            if isinstance(instr, Call) and isinstance(instr.dst, VReg) \
                    and instr.dst not in used:
                instr.dst = None
                removed += 0  # the call itself stays
    return removed
