"""Preference extraction: build the RPG by "examining the intermediate
code" (Section 5.1).

The four preference types of Section 3.1, with their sources in the IR:

1. **Dedicated** — moves between a live range and a physical register
   (parameter setup, return values): ``COALESCE`` edges to the register.
2. **Limited** — byte loads can only avoid a zero-extension in the byte-
   capable subset: ``GROUP`` edges to that subset.
3. **Preferred** — volatile / non-volatile placement: ``GROUP`` edges to
   each half of the file, weighted by the Lueh–Gross-style benefit.
4. **Dependent** — copy-related live ranges (``COALESCE``) and paired-load
   destinations (``SEQ_NEXT``/``SEQ_PREV``).

Per the appendix, a coalesce edge exists in the direction of ``V`` only
when honoring it actually zeroes the move's cost for ``V``: the move
defines ``V``, or lastly uses it.  This is why Figure 7(c) draws v3→v0
but no v0→v3 edge.

:class:`PreferenceConfig` switches each type on or off — "full
preferences" vs. the "only coalescing" ablation of Section 6, plus the
per-type ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costs import CostModel, Strength, inst_cost
from repro.core.pairs import find_paired_loads
from repro.ir.function import Function
from repro.ir.instructions import Load, Move
from repro.ir.values import PReg, RegClass, VReg
from repro.core.rpg import PrefEdge, PrefKind, RegGroup, RegisterPreferenceGraph
from repro.target.machine import TargetMachine

__all__ = ["PreferenceConfig", "build_rpg", "volatility_groups"]


@dataclass(frozen=True)
class PreferenceConfig:
    """Which preference types the RPG carries."""

    coalesce: bool = True        # type 4 (live-range to live-range)
    dedicated: bool = True       # type 1 (live-range to physical register)
    paired_loads: bool = True    # type 4 (sequential+/-)
    volatility: bool = True      # type 3 (volatile / non-volatile groups)
    byte_loads: bool = True      # type 2 (limited register subsets)

    @staticmethod
    def full() -> "PreferenceConfig":
        return PreferenceConfig()

    @staticmethod
    def only_coalescing() -> "PreferenceConfig":
        """The Section 6.1 ablation: coalescing preferences only."""
        return PreferenceConfig(
            coalesce=True, dedicated=True,
            paired_loads=False, volatility=False, byte_loads=False,
        )


def volatility_groups(
    machine: TargetMachine, rclass: RegClass
) -> tuple[RegGroup, RegGroup]:
    regfile = machine.file(rclass)
    return (
        RegGroup("volatile", rclass, frozenset(regfile.volatile)),
        RegGroup("non-volatile", rclass, frozenset(regfile.nonvolatile)),
    )


def build_rpg(
    func: Function,
    machine: TargetMachine,
    costs: CostModel,
    config: PreferenceConfig | None = None,
) -> RegisterPreferenceGraph:
    """Build the Register Preference Graph of a lowered function."""
    config = config or PreferenceConfig.full()
    rpg = RegisterPreferenceGraph()

    # --- coalesce / dedicated edges (move instructions) -----------------
    for blk in func.blocks:
        for instr in blk.instrs:
            if isinstance(instr, Move):
                _add_move_edges(rpg, costs, instr, config)
            elif isinstance(instr, Load) and instr.width == "byte" \
                    and config.byte_loads:
                _add_byte_load_edge(rpg, machine, costs, instr)

    # --- paired loads ----------------------------------------------------
    if config.paired_loads and machine.has_paired_loads:
        for cand in find_paired_loads(func):
            d1, d2 = cand.dsts()
            if isinstance(d1, VReg) and isinstance(d2, VReg):
                saving1 = costs.paired_load_saving(d1, cand.first)
                saving2 = costs.paired_load_saving(d2, cand.second)
                rpg.add(PrefEdge(d1, PrefKind.SEQ_PREV, d2,
                                 costs.placement_strength(d1, saving1)))
                rpg.add(PrefEdge(d2, PrefKind.SEQ_NEXT, d1,
                                 costs.placement_strength(d2, saving2)))

    # --- volatility groups ------------------------------------------------
    if config.volatility:
        groups = {
            rclass: volatility_groups(machine, rclass)
            for rclass in machine.files
        }
        for v in sorted(func.vregs(), key=lambda r: r.id):
            vol_group, nonvol_group = groups[v.rclass]
            rpg.add(PrefEdge(
                v, PrefKind.GROUP, vol_group,
                Strength.scalar(costs.strength_volatile(v)),
            ))
            rpg.add(PrefEdge(
                v, PrefKind.GROUP, nonvol_group,
                Strength.scalar(costs.strength_nonvolatile(v)),
            ))
    return rpg


def _add_move_edges(
    rpg: RegisterPreferenceGraph,
    costs: CostModel,
    mv: Move,
    config: PreferenceConfig,
) -> None:
    dst, src = mv.dst, mv.src
    if isinstance(dst, PReg) and isinstance(src, PReg):
        return
    # Direction dst -> src: the move defines dst, so honoring always
    # zeroes its cost for dst.
    if isinstance(dst, VReg):
        wanted = config.dedicated if isinstance(src, PReg) else config.coalesce
        if wanted:
            saving = costs.move_saving(dst, mv)
            rpg.add(PrefEdge(dst, PrefKind.COALESCE, src,
                             costs.placement_strength(dst, saving)))
    # Direction src -> dst.  The appendix only credits this edge when the
    # move *lastly* uses src, and Figure 7(c) draws it that way; but a
    # copy whose source lives on is still eliminated when both ends share
    # a register (the dst-src interference edge is omitted at the copy),
    # and the aggressive coalescers exploit exactly that.  Without the
    # edge the integrated selector can never try, so we add it with the
    # move's cost as the saving in both cases.  The two directions then
    # both credit the same move — acceptable, since strengths rank
    # choices rather than summing into a total.
    if isinstance(src, VReg):
        wanted = config.dedicated if isinstance(dst, PReg) else config.coalesce
        if wanted:
            saving = inst_cost(mv) * costs.freq_of(mv)
            rpg.add(PrefEdge(src, PrefKind.COALESCE, dst,
                             costs.placement_strength(src, saving)))


def _add_byte_load_edge(
    rpg: RegisterPreferenceGraph,
    machine: TargetMachine,
    costs: CostModel,
    load: Load,
) -> None:
    dst = load.dst
    if not isinstance(dst, VReg):
        return
    regfile = machine.file(dst.rclass)
    if not regfile.byte_load_regs:
        return
    group = RegGroup("byte-capable", dst.rclass,
                     frozenset(regfile.byte_load_regs))
    saving = costs.byte_load_saving(dst, load)
    rpg.add(PrefEdge(dst, PrefKind.GROUP, group,
                     costs.placement_strength(dst, saving)))
