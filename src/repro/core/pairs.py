"""Paired-load candidate detection.

IA-64's coupled load (and S/390 / Power multiple loads) fetch two words
from consecutive addresses into two registers subject to an adjacency
constraint.  A *candidate* here is the strictest, unambiguous pattern:
two immediately consecutive word loads off the same base register with
offsets exactly one word apart.  The code generator (our cycle evaluator)
can fuse the pair only when the allocator put the destinations in
adjacent registers — which is what the RPG's ``sequential+/-``
preferences ask for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Load
from repro.ir.values import Register

__all__ = ["PairedLoadCandidate", "find_paired_loads", "WORD_SIZE"]

WORD_SIZE = 4


@dataclass(eq=False)
class PairedLoadCandidate:
    """Two fusible loads; ``second.dst`` must land at ``first.dst``+1."""

    block: BasicBlock
    first: Load
    second: Load

    def dsts(self) -> tuple[Register, Register]:
        return (self.first.dst, self.second.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairedLoad({self.first} ; {self.second})"


def find_paired_loads(func: Function) -> list[PairedLoadCandidate]:
    """All fusible consecutive load pairs, each load in at most one pair."""
    out: list[PairedLoadCandidate] = []
    for blk in func.blocks:
        i = 0
        while i + 1 < len(blk.instrs):
            a, b = blk.instrs[i], blk.instrs[i + 1]
            if _fusible(a, b):
                out.append(PairedLoadCandidate(blk, a, b))
                i += 2
            else:
                i += 1
    return out


def _fusible(a, b) -> bool:
    if not (isinstance(a, Load) and isinstance(b, Load)):
        return False
    if a.width != "word" or b.width != "word":
        return False
    if a.base != b.base or b.offset != a.offset + WORD_SIZE:
        return False
    if a.dst == b.dst or a.dst.rclass is not b.dst.rclass:
        return False
    if b.base == a.dst:  # the first load clobbers the shared base
        return False
    return True
