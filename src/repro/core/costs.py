"""The paper's appendix cost model.

    Str(V, P)        = Mem_Cost(V) - Ideal_Cost(V, P)
    Mem_Cost(V)      = Spill_Cost(V) + Op_Cost(V)
    Spill_Cost(V)    = sum 2*freq over uses + sum 1*freq over defs
    Op_Cost(V)       = sum Inst_Cost*freq over uses and defs
                       (Inst_Cost: 2 for loads, undefined for calls, else 1)
    Ideal_Cost(V, P) = Call_Cost(V) + Ideal_Op_Cost(V, P)
    Call_Cost(V)     = sum 3*freq over calls crossed    (volatile target)
                     = 2                                 (non-volatile target)
    Ideal_Op_Cost    = Op_Cost minus the full Inst_Cost of instructions
                       the preference makes free (the eliminated move, the
                       fused second load, the avoided zero-extension)

Because ``Call_Cost`` depends on the volatility of the register finally
chosen, a strength is a *pair* (value on a volatile register, value on a
non-volatile register) — Figure 7 annotates v3's coalesce edge exactly
that way ("40 when coalescing to a volatile register, but 38 for a
non-volatile").  :class:`Strength` carries the pair.

Checked against every number given in the paper's Figure 7: v4 prefers
non-volatile with strength 28; v3's coalesce edge is 40/38; v1–v2's
sequential edges are 50/48.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import Liveness, compute_liveness, instruction_liveness
from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Move, SpillLoad
from repro.ir.values import PReg, VReg
from repro.policy import DEFAULT_POLICY, Policy
from repro.target.machine import TargetMachine

__all__ = [
    "SAVE_RESTORE_COST",
    "CALLEE_SAVE_COST",
    "inst_cost",
    "Strength",
    "CostModel",
]

#: Appendix: Save_Restore_Cost(I) is always 3 (per frequency-weighted call
#: crossing, volatile placement).  Canonical default of
#: ``Policy.save_restore_cost``.
SAVE_RESTORE_COST = 3
#: Appendix: Callee_Save_Cost(V) is always 2 (non-volatile placement).
#: Canonical default of ``Policy.callee_save_cost``.
CALLEE_SAVE_COST = 2


def inst_cost(instr: Instruction) -> float:
    """Appendix ``Inst_Cost``: 2 for loads, undefined (0) for calls, 1 else."""
    if isinstance(instr, (Load, SpillLoad)):
        return 2.0
    if isinstance(instr, Call):
        return 0.0
    return 1.0


@dataclass(frozen=True, slots=True)
class Strength:
    """Preference strength as a (volatile, non-volatile) pair."""

    vol: float
    nonvol: float

    @property
    def best(self) -> float:
        return max(self.vol, self.nonvol)

    @property
    def worst(self) -> float:
        return min(self.vol, self.nonvol)

    def for_reg(self, machine: TargetMachine, reg: PReg) -> float:
        return self.vol if machine.is_volatile(reg) else self.nonvol

    @staticmethod
    def scalar(value: float) -> "Strength":
        return Strength(value, value)

    def __str__(self) -> str:
        if self.vol == self.nonvol:
            return f"{self.vol:g}"
        return f"vol:{self.vol:g}, n-vol:{self.nonvol:g}"


class CostModel:
    """Per-live-range costs of one (lowered, renumbered) function."""

    def __init__(
        self,
        func: Function,
        machine: TargetMachine,
        cfg: CFG | None = None,
        loops: LoopInfo | None = None,
        liveness: Liveness | None = None,
        policy: Policy = DEFAULT_POLICY,
    ):
        self.func = func
        self.machine = machine
        self.policy = policy
        cfg = cfg or build_cfg(func)
        self.loops = loops or compute_loops(cfg)
        liveness = liveness or compute_liveness(func, cfg)
        self._after = instruction_liveness(func, liveness)

        self._spill: dict[VReg, float] = {}
        self._op: dict[VReg, float] = {}
        self._cross: dict[VReg, float] = {}
        self._cross_count: dict[VReg, int] = {}
        self._freq_of_instr: dict[int, int] = {}

        # Policy spill weights (defaults 2/1 make these exactly the
        # historical ``2.0 * freq`` / ``1.0 * freq`` terms); the
        # loop-depth exponent re-weights the *spill* terms only — op
        # and call-crossing costs always use the raw frequency.
        load_w = float(policy.spill_load_cost)
        store_w = float(policy.spill_store_cost)
        exponent = policy.loop_depth_exponent
        for blk in func.blocks:
            freq = self.loops.freq(blk.label)
            sfreq = freq if exponent == 1.0 else float(freq) ** exponent
            for instr in blk.instrs:
                self._freq_of_instr[id(instr)] = freq
                cost = inst_cost(instr)
                for u in instr.used_regs():
                    if isinstance(u, VReg):
                        self._bump(self._spill, u, load_w * sfreq)
                        self._bump(self._op, u, cost * freq)
                for d in instr.defs():
                    if isinstance(d, VReg):
                        self._bump(self._spill, d, store_w * sfreq)
                        self._bump(self._op, d, cost * freq)
                if isinstance(instr, Call):
                    crossing = self._after[id(instr)] - set(instr.defs())
                    for reg in crossing:
                        if isinstance(reg, VReg):
                            self._bump(self._cross, reg, float(freq))
                            self._cross_count[reg] = (
                                self._cross_count.get(reg, 0) + 1
                            )

    @staticmethod
    def _bump(table: dict[VReg, float], key: VReg, amount: float) -> None:
        table[key] = table.get(key, 0.0) + amount

    # ------------------------------------------------------------------
    # appendix quantities

    def freq_of(self, instr: Instruction) -> int:
        return self._freq_of_instr.get(id(instr), 1)

    def spill_cost(self, v: VReg) -> float:
        return self._spill.get(v, 0.0)

    def op_cost(self, v: VReg) -> float:
        return self._op.get(v, 0.0)

    def mem_cost(self, v: VReg) -> float:
        return self.spill_cost(v) + self.op_cost(v)

    def cross_freq(self, v: VReg) -> float:
        """Frequency-weighted number of calls this live range crosses."""
        return self._cross.get(v, 0.0)

    def crosses_calls(self, v: VReg) -> bool:
        return self._cross_count.get(v, 0) > 0

    def call_cost(self, v: VReg, volatile: bool) -> float:
        if volatile:
            return self.policy.save_restore_cost * self.cross_freq(v)
        return float(self.policy.callee_save_cost)

    # ------------------------------------------------------------------
    # preference strengths

    def placement_strength(self, v: VReg, saving: float = 0.0) -> Strength:
        """``Str(V, P)`` for a preference saving ``saving`` op cycles.

        ``Str = Spill_Cost + saving - Call_Cost`` with ``Call_Cost``
        depending on the volatility of the register finally chosen, hence
        a :class:`Strength` pair.
        """
        base = self.spill_cost(v) + saving
        return Strength(
            vol=base - self.call_cost(v, volatile=True),
            nonvol=base - self.call_cost(v, volatile=False),
        )

    def strength_volatile(self, v: VReg) -> float:
        """Strength of a *prefers volatile registers* preference."""
        return self.spill_cost(v) - self.call_cost(v, volatile=True)

    def strength_nonvolatile(self, v: VReg) -> float:
        """Strength of a *prefers non-volatile registers* preference."""
        return self.spill_cost(v) - self.call_cost(v, volatile=False)

    def move_saving(self, v: VReg, mv: Move) -> float:
        """Op cycles saved when ``mv`` disappears, attributed to ``v``.

        Appendix: the move's cost is zeroed "if I is a move and I defines
        V or I *lastly* uses V" — i.e. V dies at the copy, so giving both
        ends one register removes the instruction.
        """
        if mv.dst == v:
            return inst_cost(mv) * self.freq_of(mv)
        if mv.src == v and v not in self._after[id(mv)]:
            return inst_cost(mv) * self.freq_of(mv)
        return 0.0

    def paired_load_saving(self, v: VReg, load: Load) -> float:
        """Op cycles saved when ``load`` (fetching ``v``) fuses into a pair."""
        if load.dst != v:
            return 0.0
        return inst_cost(load) * self.freq_of(load)

    def byte_load_saving(self, v: VReg, load: Load) -> float:
        """Zero-extension cycles avoided by a byte-capable register."""
        if load.dst != v or load.width != "byte":
            return 0.0
        return 1.0 * self.freq_of(load)
