"""Integrated, preference-directed register selection (Section 5.3).

The selector iterates two moves until the CPG is exhausted:

* among the *ready-to-go* nodes (no unprocessed CPG predecessor), pick
  the node with the largest strength differential between its strongest
  and weakest still-honorable preferences (step 2–3) — the node with the
  most to lose goes first;
* give that node a register by screening the available set through its
  preferences from strongest to weakest (step 4.2), then dropping
  registers that would block a *deferred* live-range-to-live-range
  preference — one whose partner is not colored yet — when alternatives
  remain (step 4.3).

Spills happen inside the same loop: a node with no free register is
spilled (it must be an optimistic push; the CPG certifies the rest), and
a node whose preferences are all weaker than staying in memory
(every ``Str < 0``) is *actively* spilled, which is how the paper avoids
the Lueh–Gross objection to optimistic coloring (Section 5.4).

Register sets are bitmasks over the class's color list: each node keeps
an incrementally-maintained mask of colors its neighbors have claimed,
so availability is one ``&`` instead of a neighbor scan, and preference
screening intersects masks.  Differentials are cached and recomputed
only for the nodes a coloring/spill event can affect (its interference
neighbors and RPG partners) — the dominant cost of the naive selector
was re-deriving every queued node's differential at every pick.

The ready queue itself is a lazy max-heap keyed on ``(differential,
spill_cost, -id)``: ``_after_decision``'s invalidation set — which is
exactly the set of nodes whose key an event can change — pushes
refreshed generation-stamped entries instead of merely dropping the
cached differential, so each pick is O(log n) amortized instead of a
linear queue scan.  The scan-based ``_choose_node`` is retained as the
reference oracle behind ``REPRO_SELECT_INDEX=0``; ``validate`` runs
both and raises on the first divergent pick.

Interpretation notes (the paper leaves these open — see DESIGN.md):
a single honorable preference yields a differential equal to its own
strength (memory, at strength 0, is the implicit weakest); nodes with no
preferences rank last and tie-break on spill cost then id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.indexing import iter_bits
from repro.core.cpg import BOTTOM, TOP, ColoringPrecedenceGraph
from repro.core.costs import CostModel
from repro.core.rpg import (
    PrefEdge,
    PrefKind,
    RegGroup,
    RegisterPreferenceGraph,
)
from repro.errors import AllocationError
from repro.ir.values import PReg, VReg
from repro.policy import DEFAULT_POLICY, Policy
from repro.regalloc.igraph import AllocGraph
from repro.profiling import phase
from repro.regalloc.select import order_colors_cached
from repro.regalloc.worklist import LazyMaxHeap, select_index_mode
from repro.target.machine import RegisterFile, TargetMachine

__all__ = ["PreferenceSelector", "SelectionTrace"]

NEG_INF = float("-inf")


@dataclass(frozen=True)
class _Ask:
    """One evaluable preference: a register mask and its realized strength."""

    mask: int
    strength: float
    edge: PrefEdge


@dataclass(eq=False)
class SelectionTrace:
    """Step-by-step record of the selection, for tests and examples."""

    steps: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.steps.append(message)

    def __str__(self) -> str:
        return "\n".join(self.steps)


@dataclass(eq=False)
class PreferenceSelector:
    """One run of the Section 5.3 algorithm over one register class."""

    graph: AllocGraph
    rpg: RegisterPreferenceGraph
    cpg: ColoringPrecedenceGraph
    machine: TargetMachine
    regfile: RegisterFile
    costs: CostModel
    optimistic: set[VReg]
    trace: SelectionTrace | None = None

    #: register order when preferences leave several candidates (the
    #: paper's coalescing-only configurations use non-volatile first)
    fallback_policy: str = "nonvolatile_first"
    #: Section 5.4's active spilling of memory-preferring nodes; enabled
    #: with the volatility preferences (it is their spill-side twin) and
    #: off in the only-coalescing ablation
    active_memory_spill: bool = True

    assignment: dict[VReg, PReg] = field(default_factory=dict)
    spilled: set[VReg] = field(default_factory=set)
    honored_prefs: int = 0
    #: ready-queue engine override: ``"on"``/``"off"``/``"validate"``;
    #: ``None`` reads the ``REPRO_SELECT_INDEX`` environment setting
    index_mode: str | None = None
    #: heuristic knobs; only the ``select_*_weight`` fields matter here.
    #: The all-1.0 default takes the historical unweighted key path,
    #: keeping pick order (and heap entries) byte-identical.
    policy: Policy = DEFAULT_POLICY

    def __post_init__(self) -> None:
        if (self.policy.select_differential_weight == 1.0
                and self.policy.select_spill_cost_weight == 1.0
                and self.policy.select_id_weight == 1.0):
            self._key_weights = None
        else:
            self._key_weights = (
                self.policy.select_differential_weight,
                self.policy.select_spill_cost_weight,
                self.policy.select_id_weight,
            )
        colors = self.graph.colors
        self._colors = colors
        self._color_bit: dict[PReg, int] = {
            c: 1 << i for i, c in enumerate(colors)
        }
        self._all_mask = (1 << len(colors)) - 1
        vol = 0
        for i, c in enumerate(colors):
            if self.machine.is_volatile(c):
                vol |= 1 << i
        self._vol_mask = vol
        self._nonvol_mask = self._all_mask & ~vol
        # Memoized: the fallback order depends only on (regfile, colors,
        # policy), yet a selector is instantiated per class per round.
        self._fallback = list(
            order_colors_cached(colors, self.regfile, self.fallback_policy)
        )
        #: per-node mask of colors claimed by neighbors (lazily seeded
        #: from the current assignment, then maintained incrementally)
        self._taken: dict[VReg, int] = {}
        #: cached differentials, invalidated by affecting events only
        self._diff_cache: dict[VReg, float] = {}
        self._group_masks: dict[RegGroup, int] = {}
        if self.index_mode is None:
            self.index_mode = select_index_mode()
        #: lazy max-heap ready queue (None when running the scan oracle)
        self._ready: LazyMaxHeap | None = None

    # ------------------------------------------------------------------

    def run(self) -> None:
        indegree = {
            node: len({p for p in preds if p != TOP})
            for node, preds in self.cpg.preds.items()
            if isinstance(node, VReg)
        }
        queue: set[VReg] = {n for n, d in indegree.items() if d == 0}
        mode = self.index_mode
        ready: LazyMaxHeap | None = None
        if mode != "off":
            ready = self._ready = LazyMaxHeap()
            for node in queue:
                ready.push(node, self._pick_key(node))

        with phase("select"):
            while queue:
                with phase("choose"):
                    node = self._next_node(queue, ready, mode)
                queue.discard(node)
                with phase("color"):
                    self._color_node(node)
                for succ in self.cpg.succs.get(node, ()):
                    if succ == BOTTOM or not isinstance(succ, VReg):
                        continue
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        queue.add(succ)
                        if ready is not None:
                            ready.push(succ, self._pick_key(succ))

    # ------------------------------------------------------------------
    # step 2-3: node choice

    def _next_node(self, queue: set[VReg], ready: LazyMaxHeap | None,
                   mode: str) -> VReg:
        if mode == "off":
            return self._choose_node(queue)
        assert ready is not None
        node = ready.pop()
        if mode == "validate":
            oracle = self._choose_node(queue)
            # Value equality: the pipeline can legitimately hold
            # equal-but-distinct VReg instances (unpickled or cached
            # analyses), and every index keys by eq/hash.
            if node != oracle:
                raise AllocationError(
                    f"select-index validation failed: ready heap picked "
                    f"{node}, scan oracle {oracle}"
                )
        return node

    def _pick_key(self, node: VReg) -> tuple:
        """The ready-queue ordering key (identical to ``_choose_node``)."""
        differential = self._diff_cache.get(node)
        if differential is None:
            differential = self._diff_cache[node] = self._differential(node)
        weights = self._key_weights
        if weights is None:
            return (differential, self.costs.spill_cost(node), -node.id)
        wd, ws, wi = weights
        return (wd * differential, ws * self.costs.spill_cost(node),
                wi * -node.id)

    def _choose_node(self, queue: set[VReg]) -> VReg:
        diff_cache = self._diff_cache
        spill_cost = self.costs.spill_cost
        weights = self._key_weights
        best: VReg | None = None
        best_key: tuple | None = None
        for node in queue:
            differential = diff_cache.get(node)
            if differential is None:
                differential = diff_cache[node] = self._differential(node)
            if weights is None:
                key = (
                    differential,
                    spill_cost(node),
                    -node.id,
                )
            else:
                key = (
                    weights[0] * differential,
                    weights[1] * spill_cost(node),
                    weights[2] * -node.id,
                )
            if best_key is None or key > best_key:
                best, best_key = node, key
        assert best is not None
        return best

    def _differential(self, node: VReg) -> float:
        honorable = [
            ask.strength
            for ask in self._usable_asks(node, self._free_mask(node))
        ]
        if not honorable:
            return NEG_INF
        if len(honorable) == 1:
            return honorable[0]
        return max(honorable) - min(honorable)

    def _free_mask(self, node: VReg) -> int:
        """Mask of colors no (colored or physical) neighbor holds."""
        taken = self._taken.get(node)
        if taken is None:
            taken = 0
            color_bit = self._color_bit
            assignment = self.assignment
            for n in self.graph.all_neighbors(node):
                if isinstance(n, PReg):
                    taken |= color_bit.get(n, 0)
                else:
                    c = assignment.get(n)
                    if c is not None:
                        taken |= color_bit[c]
            self._taken[node] = taken
        return self._all_mask & ~taken

    def _available(self, node: VReg) -> list[PReg]:
        colors = self._colors
        return [colors[i] for i in iter_bits(self._free_mask(node))]

    def _group_mask(self, group: RegGroup) -> int:
        mask = self._group_masks.get(group)
        if mask is None:
            color_bit = self._color_bit
            mask = 0
            for reg in group.regs:
                mask |= color_bit.get(reg, 0)
            self._group_masks[group] = mask
        return mask

    def _usable_asks(self, node: VReg, avail_mask: int) -> list[_Ask]:
        """Steps 2.1/2.2 as concrete *asks*: (register mask, strength).

        Outgoing edges whose target is colored (or physical / a group)
        ask directly.  Incoming live-range edges whose *source* is
        already colored also ask — that is the deferred coalescence /
        pairing being resolved from the other end.  Unhonorable asks
        (empty intersection with the available mask) are eliminated.
        """
        asks: list[_Ask] = []
        for edge in self.rpg.edges_from(node):
            if self._unresolved(edge.target):
                continue  # step 2.2: deferred, revisited in step 4.3
            ask = self._ask_of_outgoing(edge, avail_mask)
            if ask is not None:
                asks.append(ask)
        for edge in self.rpg.edges_to(node):
            source_color = self.assignment.get(edge.src)
            if source_color is None:
                continue
            ask = self._ask_of_incoming(edge, source_color, avail_mask)
            if ask is not None:
                asks.append(ask)
        return asks

    def _unresolved(self, target) -> bool:
        """A live-range target not yet colored (and not spilled)."""
        return (
            isinstance(target, VReg)
            and target not in self.assignment
            and target not in self.spilled
        )

    def _strength_for_mask(self, edge: PrefEdge, mask: int) -> float:
        """Best realized strength over the registers of ``mask``."""
        strength = NEG_INF
        if mask & self._vol_mask:
            strength = edge.strength.vol
        if mask & self._nonvol_mask:
            nonvol = edge.strength.nonvol
            if nonvol > strength:
                strength = nonvol
        return strength

    def _ask_of_outgoing(self, edge: PrefEdge,
                         avail_mask: int) -> "_Ask | None":
        if isinstance(edge.target, RegGroup):
            mask = avail_mask & self._group_mask(edge.target)
            if not mask:
                return None
            return _Ask(mask, self._strength_for_mask(edge, mask), edge)
        wanted = self._resolve_target_register(edge.kind, edge.target)
        if wanted is None:
            return None
        bit = self._color_bit.get(wanted, 0)
        if not bit & avail_mask:
            return None
        return _Ask(bit, self._strength_for_mask(edge, bit), edge)

    def _ask_of_incoming(self, edge: PrefEdge, source_color: PReg,
                         avail_mask: int) -> "_Ask | None":
        """What an already-colored source wants *this* node to take."""
        if edge.kind is PrefKind.COALESCE:
            wanted: PReg | None = source_color
        elif edge.kind is PrefKind.SEQ_NEXT:
            # The source wanted (this node's register) + 1 and holds
            # source_color, so this node must take source_color - 1.
            wanted = self.regfile.prev_reg(source_color)
        elif edge.kind is PrefKind.SEQ_PREV:
            wanted = self.regfile.next_reg(source_color)
        else:
            return None
        if wanted is None:
            return None
        bit = self._color_bit.get(wanted, 0)
        if not bit & avail_mask:
            return None
        source_bit = self._color_bit.get(source_color, 0)
        return _Ask(bit, self._strength_for_mask(edge, source_bit), edge)

    def _resolve_target_register(self, kind: PrefKind,
                                 target) -> PReg | None:
        """The concrete register an outgoing edge asks for, if fixed."""
        if isinstance(target, VReg):
            target = self.assignment.get(target)
            if target is None:
                return None
        if not isinstance(target, PReg):
            return None
        if kind is PrefKind.COALESCE:
            return target
        if kind is PrefKind.SEQ_NEXT:
            return self.regfile.next_reg(target)
        if kind is PrefKind.SEQ_PREV:
            return self.regfile.prev_reg(target)
        return None

    # ------------------------------------------------------------------
    # step 4: register choice

    def _color_node(self, node: VReg) -> None:
        free = self._free_mask(node)
        if not free:
            self._spill(node, reason="no register available")
            self._after_decision(node, None)
            return
        asks = self._usable_asks(node, free)
        if self.active_memory_spill and not node.no_spill \
                and self._prefers_memory(
                    node, free, [a.strength for a in asks]
                ):
            # Section 5.4: strongest preference is memory.
            self._spill(node, reason="prefers memory")
            self._after_decision(node, None)
            return

        candidates = free
        for ask in sorted(asks, key=lambda a: -a.strength):
            screened = candidates & ask.mask
            if screened:
                candidates = screened
                self.honored_prefs += 1

        candidates = self._respect_deferred(node, candidates)
        color_bit = self._color_bit
        color = next(
            c for c in self._fallback if color_bit[c] & candidates
        )
        self.assignment[node] = color
        self._after_decision(node, color)
        if self.trace is not None:
            self.trace.note(f"{node} -> {color} (of {free.bit_count()} free)")

    def _after_decision(self, node: VReg, color: PReg | None) -> None:
        """Incremental bookkeeping after ``node`` was colored or spilled.

        Neighbors lose ``color`` from their free mask; the nodes whose
        differential the event can change — interference neighbors and
        RPG partners on either side — drop out of the cache.  With the
        indexed ready queue, the same (exact) invalidation set is then
        re-keyed: queued members get a refreshed heap entry, superseding
        their stale one, so the heap's newest entry per node always
        carries the key the scan oracle would compute at pick time.
        """
        diff_cache = self._diff_cache
        diff_cache.pop(node, None)
        taken = self._taken
        bit = self._color_bit[color] if color is not None else 0
        affected: list[VReg] = []
        for n in self.graph.all_neighbors(node):
            if bit and n in taken:
                taken[n] |= bit
            diff_cache.pop(n, None)
            affected.append(n)
        for edge in self.rpg.edges_to(node):
            diff_cache.pop(edge.src, None)
            affected.append(edge.src)
        for edge in self.rpg.edges_from(node):
            target = edge.target
            if isinstance(target, VReg):
                diff_cache.pop(target, None)
                affected.append(target)
        ready = self._ready
        if ready is not None:
            for n in affected:
                if n in ready:
                    ready.push(n, self._pick_key(n))

    def _prefers_memory(self, node: VReg, free: int,
                        pref_strengths: list[float]) -> bool:
        """Is the strongest preference "be located in memory"?

        Memory sits at strength 0.  The comparison must include the
        *placement* strengths the available registers offer even when the
        RPG carries no volatility edges (the only-coalescing ablation):
        failing to honor a negative-strength coalesce edge does not mean
        memory wins — a plain non-volatile placement may still beat it.
        """
        best = max(pref_strengths, default=NEG_INF)
        if free & self._vol_mask:
            best = max(best, self.costs.strength_volatile(node))
        if free & self._nonvol_mask:
            best = max(best, self.costs.strength_nonvolatile(node))
        return best < 0.0

    def _respect_deferred(self, node: VReg, candidates: int) -> int:
        """Step 4.3: keep registers that leave deferred partners a chance."""
        colors = self._colors
        color_bit = self._color_bit
        for edge in self.rpg.edges_from(node):
            if not self._unresolved(edge.target):
                continue
            partner = edge.target
            assert isinstance(partner, VReg)
            partner_free = self._free_mask(partner)
            keep = 0
            for i in iter_bits(candidates):
                mine = self._partner_register(edge.kind, colors[i],
                                              outgoing=True)
                if mine is not None and color_bit.get(mine, 0) & partner_free:
                    keep |= 1 << i
            if keep:
                candidates = keep
        for edge in self.rpg.edges_to(node):
            if not self._unresolved(edge.src):
                continue
            partner_free = self._free_mask(edge.src)
            keep = 0
            for i in iter_bits(candidates):
                mine = self._partner_register(edge.kind, colors[i],
                                              outgoing=False)
                if mine is not None and color_bit.get(mine, 0) & partner_free:
                    keep |= 1 << i
            if keep:
                candidates = keep
        return candidates

    def _partner_register(self, kind: PrefKind, mine: PReg,
                          outgoing: bool) -> PReg | None:
        """Register the deferred partner must later take if I pick ``mine``.

        ``outgoing``: the deferred edge is mine (I want something relative
        to the partner); otherwise the partner wants something relative to
        me and the adjacency flips.
        """
        if kind is PrefKind.COALESCE:
            return mine
        if kind is PrefKind.SEQ_NEXT:
            # Outgoing: I want partner+1 => partner takes mine-1.
            # Incoming: partner wants mine+1.
            return self.regfile.prev_reg(mine) if outgoing \
                else self.regfile.next_reg(mine)
        if kind is PrefKind.SEQ_PREV:
            return self.regfile.next_reg(mine) if outgoing \
                else self.regfile.prev_reg(mine)
        return None

    def _spill(self, node: VReg, reason: str) -> None:
        if node not in self.optimistic and reason == "no register available":
            raise AllocationError(
                f"CPG colorability violated: non-optimistic node {node} "
                f"has no free register"
            )
        self.spilled.add(node)
        if self.trace is not None:
            self.trace.note(f"{node} spilled ({reason})")
