"""Integrated, preference-directed register selection (Section 5.3).

The selector iterates two moves until the CPG is exhausted:

* among the *ready-to-go* nodes (no unprocessed CPG predecessor), pick
  the node with the largest strength differential between its strongest
  and weakest still-honorable preferences (step 2–3) — the node with the
  most to lose goes first;
* give that node a register by screening the available set through its
  preferences from strongest to weakest (step 4.2), then dropping
  registers that would block a *deferred* live-range-to-live-range
  preference — one whose partner is not colored yet — when alternatives
  remain (step 4.3).

Spills happen inside the same loop: a node with no free register is
spilled (it must be an optimistic push; the CPG certifies the rest), and
a node whose preferences are all weaker than staying in memory
(every ``Str < 0``) is *actively* spilled, which is how the paper avoids
the Lueh–Gross objection to optimistic coloring (Section 5.4).

Interpretation notes (the paper leaves these open — see DESIGN.md):
a single honorable preference yields a differential equal to its own
strength (memory, at strength 0, is the implicit weakest); nodes with no
preferences rank last and tie-break on spill cost then id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cpg import BOTTOM, TOP, ColoringPrecedenceGraph
from repro.core.costs import CostModel
from repro.core.rpg import (
    PrefEdge,
    PrefKind,
    RegGroup,
    RegisterPreferenceGraph,
)
from repro.errors import AllocationError
from repro.ir.values import PReg, VReg
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.select import order_colors
from repro.target.machine import RegisterFile, TargetMachine

__all__ = ["PreferenceSelector", "SelectionTrace"]

NEG_INF = float("-inf")


@dataclass(frozen=True)
class _Ask:
    """One evaluable preference: a register set and its realized strength."""

    regs: tuple[PReg, ...]
    strength: float
    edge: PrefEdge


@dataclass(eq=False)
class SelectionTrace:
    """Step-by-step record of the selection, for tests and examples."""

    steps: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.steps.append(message)

    def __str__(self) -> str:
        return "\n".join(self.steps)


@dataclass(eq=False)
class PreferenceSelector:
    """One run of the Section 5.3 algorithm over one register class."""

    graph: AllocGraph
    rpg: RegisterPreferenceGraph
    cpg: ColoringPrecedenceGraph
    machine: TargetMachine
    regfile: RegisterFile
    costs: CostModel
    optimistic: set[VReg]
    trace: SelectionTrace | None = None

    #: register order when preferences leave several candidates (the
    #: paper's coalescing-only configurations use non-volatile first)
    fallback_policy: str = "nonvolatile_first"
    #: Section 5.4's active spilling of memory-preferring nodes; enabled
    #: with the volatility preferences (it is their spill-side twin) and
    #: off in the only-coalescing ablation
    active_memory_spill: bool = True

    assignment: dict[VReg, PReg] = field(default_factory=dict)
    spilled: set[VReg] = field(default_factory=set)
    honored_prefs: int = 0

    # ------------------------------------------------------------------

    def run(self) -> None:
        indegree = {
            node: len({p for p in preds if p != TOP})
            for node, preds in self.cpg.preds.items()
            if isinstance(node, VReg)
        }
        queue: set[VReg] = {n for n, d in indegree.items() if d == 0}

        while queue:
            node = self._choose_node(queue)
            queue.discard(node)
            self._color_node(node)
            for succ in self.cpg.succs.get(node, ()):
                if succ == BOTTOM or not isinstance(succ, VReg):
                    continue
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.add(succ)

    # ------------------------------------------------------------------
    # step 2-3: node choice

    def _choose_node(self, queue: set[VReg]) -> VReg:
        best: VReg | None = None
        best_key: tuple | None = None
        for node in queue:
            differential = self._differential(node)
            key = (
                differential,
                self.costs.spill_cost(node),
                -node.id,
            )
            if best_key is None or key > best_key:
                best, best_key = node, key
        assert best is not None
        return best

    def _differential(self, node: VReg) -> float:
        available = self._available(node)
        honorable = [
            ask.strength for ask in self._usable_asks(node, available)
        ]
        if not honorable:
            return NEG_INF
        if len(honorable) == 1:
            return honorable[0]
        return max(honorable) - min(honorable)

    def _available(self, node: VReg) -> list[PReg]:
        forbidden: set[PReg] = set()
        for n in self.graph.all_neighbors(node):
            if isinstance(n, PReg):
                forbidden.add(n)
            elif n in self.assignment:
                forbidden.add(self.assignment[n])
        return [c for c in self.graph.colors if c not in forbidden]

    def _usable_asks(self, node: VReg, available: list[PReg]) -> list[_Ask]:
        """Steps 2.1/2.2 as concrete *asks*: (register set, strength).

        Outgoing edges whose target is colored (or physical / a group)
        ask directly.  Incoming live-range edges whose *source* is
        already colored also ask — that is the deferred coalescence /
        pairing being resolved from the other end.  Unhonorable asks
        (empty intersection with ``available``) are eliminated.
        """
        asks: list[_Ask] = []
        for edge in self.rpg.edges_from(node):
            if self._unresolved(edge.target):
                continue  # step 2.2: deferred, revisited in step 4.3
            ask = self._ask_of_outgoing(edge, available)
            if ask is not None:
                asks.append(ask)
        for edge in self.rpg.edges_to(node):
            source_color = self.assignment.get(edge.src)
            if source_color is None:
                continue
            ask = self._ask_of_incoming(edge, source_color, available)
            if ask is not None:
                asks.append(ask)
        return asks

    def _unresolved(self, target) -> bool:
        """A live-range target not yet colored (and not spilled)."""
        return (
            isinstance(target, VReg)
            and target not in self.assignment
            and target not in self.spilled
        )

    def _ask_of_outgoing(self, edge: PrefEdge,
                         available: list[PReg]) -> "_Ask | None":
        if isinstance(edge.target, RegGroup):
            regs = [c for c in available if c in edge.target.regs]
            if not regs:
                return None
            strength = max(
                edge.strength.for_reg(self.machine, r) for r in regs
            )
            return _Ask(tuple(regs), strength, edge)
        wanted = self._resolve_target_register(edge.kind, edge.target)
        if wanted is None or wanted not in available:
            return None
        return _Ask((wanted,), edge.strength.for_reg(self.machine, wanted),
                    edge)

    def _ask_of_incoming(self, edge: PrefEdge, source_color: PReg,
                         available: list[PReg]) -> "_Ask | None":
        """What an already-colored source wants *this* node to take."""
        if edge.kind is PrefKind.COALESCE:
            wanted: PReg | None = source_color
        elif edge.kind is PrefKind.SEQ_NEXT:
            # The source wanted (this node's register) + 1 and holds
            # source_color, so this node must take source_color - 1.
            wanted = self.regfile.prev_reg(source_color)
        elif edge.kind is PrefKind.SEQ_PREV:
            wanted = self.regfile.next_reg(source_color)
        else:
            return None
        if wanted is None or wanted not in available:
            return None
        return _Ask((wanted,),
                    edge.strength.for_reg(self.machine, source_color), edge)

    def _resolve_target_register(self, kind: PrefKind,
                                 target) -> PReg | None:
        """The concrete register an outgoing edge asks for, if fixed."""
        if isinstance(target, VReg):
            target = self.assignment.get(target)
            if target is None:
                return None
        if not isinstance(target, PReg):
            return None
        if kind is PrefKind.COALESCE:
            return target
        if kind is PrefKind.SEQ_NEXT:
            return self.regfile.next_reg(target)
        if kind is PrefKind.SEQ_PREV:
            return self.regfile.prev_reg(target)
        return None

    # ------------------------------------------------------------------
    # step 4: register choice

    def _color_node(self, node: VReg) -> None:
        available = self._available(node)
        if not available:
            self._spill(node, reason="no register available")
            return
        asks = self._usable_asks(node, available)
        if self.active_memory_spill and not node.no_spill \
                and self._prefers_memory(
                    node, available, [a.strength for a in asks]
                ):
            # Section 5.4: strongest preference is memory.
            self._spill(node, reason="prefers memory")
            return

        candidates = list(available)
        for ask in sorted(asks, key=lambda a: -a.strength):
            screened = [c for c in candidates if c in ask.regs]
            if screened:
                candidates = screened
                self.honored_prefs += 1

        candidates = self._respect_deferred(node, candidates)
        color = next(
            c for c in order_colors(self.graph.colors, self.regfile,
                                    self.fallback_policy)
            if c in candidates
        )
        self.assignment[node] = color
        if self.trace is not None:
            self.trace.note(f"{node} -> {color} (of {len(available)} free)")

    def _prefers_memory(self, node: VReg, available: list[PReg],
                        pref_strengths: list[float]) -> bool:
        """Is the strongest preference "be located in memory"?

        Memory sits at strength 0.  The comparison must include the
        *placement* strengths the available registers offer even when the
        RPG carries no volatility edges (the only-coalescing ablation):
        failing to honor a negative-strength coalesce edge does not mean
        memory wins — a plain non-volatile placement may still beat it.
        """
        best = max(pref_strengths, default=NEG_INF)
        if any(self.machine.is_volatile(r) for r in available):
            best = max(best, self.costs.strength_volatile(node))
        if any(not self.machine.is_volatile(r) for r in available):
            best = max(best, self.costs.strength_nonvolatile(node))
        return best < 0.0

    def _respect_deferred(
        self, node: VReg, candidates: list[PReg]
    ) -> list[PReg]:
        """Step 4.3: keep registers that leave deferred partners a chance."""
        for edge in self.rpg.edges_from(node):
            if not self._unresolved(edge.target):
                continue
            partner = edge.target
            assert isinstance(partner, VReg)
            partner_free = set(self._available(partner))
            keep = [
                c for c in candidates
                if self._partner_register(edge.kind, c, outgoing=True)
                in partner_free
            ]
            if keep:
                candidates = keep
        for edge in self.rpg.edges_to(node):
            if not self._unresolved(edge.src):
                continue
            partner_free = set(self._available(edge.src))
            keep = [
                c for c in candidates
                if self._partner_register(edge.kind, c, outgoing=False)
                in partner_free
            ]
            if keep:
                candidates = keep
        return candidates

    def _partner_register(self, kind: PrefKind, mine: PReg,
                          outgoing: bool) -> PReg | None:
        """Register the deferred partner must later take if I pick ``mine``.

        ``outgoing``: the deferred edge is mine (I want something relative
        to the partner); otherwise the partner wants something relative to
        me and the adjacency flips.
        """
        if kind is PrefKind.COALESCE:
            return mine
        if kind is PrefKind.SEQ_NEXT:
            # Outgoing: I want partner+1 => partner takes mine-1.
            # Incoming: partner wants mine+1.
            return self.regfile.prev_reg(mine) if outgoing \
                else self.regfile.next_reg(mine)
        if kind is PrefKind.SEQ_PREV:
            return self.regfile.next_reg(mine) if outgoing \
                else self.regfile.prev_reg(mine)
        return None

    def _spill(self, node: VReg, reason: str) -> None:
        if node not in self.optimistic and reason == "no register available":
            raise AllocationError(
                f"CPG colorability violated: non-optimistic node {node} "
                f"has no free register"
            )
        self.spilled.add(node)
        if self.trace is not None:
            self.trace.note(f"{node} spilled ({reason})")
