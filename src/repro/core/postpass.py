"""Aggressive post-coalescing — the paper's suggested improvement.

Section 6.1 diagnoses the one-at-a-time deferred coalescing as the
reason the integrated selector misses a few merges that aggressive
coalescing gets, and suggests: "To improve coalescence, a technique to
aggressively coalesce non spill-causing nodes could be added to the
algorithm in Section 5.3."

This pass implements that suggestion conservatively, *after* selection:
for every remaining move whose two ends are colored differently and do
not interfere, try to recolor one end to the other's register.  A
recoloring is accepted only when it cannot regress what selection
already achieved:

* the new register is free among the node's neighbors (no spill risk —
  "non spill-causing" by construction),
* the appendix cost model approves: the move's cycles saved must cover
  any placement regression (recoloring a call-crossing value from a
  non-volatile to a volatile register pays 3 cycles per crossing),
* the node is not one end of an honored sequential pair (paired loads
  stay fused),
* the old register was not itself honoring another copy relation (no
  un-eliminating a different move).

Enable with ``PreferenceDirectedAllocator(post_coalesce=True)``.
"""

from __future__ import annotations

from repro.core.costs import CostModel, inst_cost
from repro.core.rpg import PrefKind, RegisterPreferenceGraph
from repro.ir.values import PReg, VReg
from repro.regalloc.igraph import AllocGraph
from repro.target.machine import TargetMachine

__all__ = ["aggressive_post_coalesce"]


def aggressive_post_coalesce(
    graph: AllocGraph,
    rpg: RegisterPreferenceGraph,
    machine: TargetMachine,
    costs: CostModel,
    assignment: dict[VReg, PReg],
    spilled: set[VReg],
) -> int:
    """Recolor move ends to merge residual copies; returns merges made."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for mv in graph.moves:
            a, b = mv.dst, mv.src
            color_a = _color_of(a, assignment)
            color_b = _color_of(b, assignment)
            if color_a is None or color_b is None or color_a == color_b:
                continue
            if isinstance(a, VReg) and a in spilled:
                continue
            if isinstance(b, VReg) and b in spilled:
                continue
            if graph.interferes(a, b):
                continue
            # Try moving a to b's register, then the other way around.
            gain = inst_cost(mv) * costs.freq_of(mv)
            if isinstance(a, VReg) and _can_recolor(
                graph, rpg, machine, costs, assignment, a, color_b, gain
            ):
                assignment[a] = color_b
                merged += 1
                changed = True
            elif isinstance(b, VReg) and _can_recolor(
                graph, rpg, machine, costs, assignment, b, color_a, gain
            ):
                assignment[b] = color_a
                merged += 1
                changed = True
    return merged


def _color_of(node, assignment: dict[VReg, PReg]) -> PReg | None:
    if isinstance(node, PReg):
        return node
    return assignment.get(node)


def _can_recolor(
    graph: AllocGraph,
    rpg: RegisterPreferenceGraph,
    machine: TargetMachine,
    costs: CostModel,
    assignment: dict[VReg, PReg],
    node: VReg,
    new_color: PReg,
    gain: float,
) -> bool:
    old_color = assignment[node]
    # Placement economics: the eliminated move must pay for any
    # volatility regression (Str values from the appendix model).
    if machine.is_volatile(old_color) != machine.is_volatile(new_color):
        old_strength = (costs.strength_volatile(node)
                        if machine.is_volatile(old_color)
                        else costs.strength_nonvolatile(node))
        new_strength = (costs.strength_volatile(node)
                        if machine.is_volatile(new_color)
                        else costs.strength_nonvolatile(node))
        if gain < old_strength - new_strength:
            return False
    # The target register must be free among all neighbors.
    for n in graph.all_neighbors(node):
        if _color_of(n, assignment) == new_color:
            return False
    # Never break an honored sequential (paired-load) relation.
    if _in_honored_pair(rpg, machine, assignment, node, old_color):
        return False
    # Never un-eliminate a different copy that the old color honored.
    for edge in list(rpg.edges_from(node)) + list(rpg.edges_to(node)):
        if edge.kind is not PrefKind.COALESCE:
            continue
        partner = edge.target if edge.src == node else edge.src
        partner_color = _color_of(partner, assignment)
        if partner_color == old_color:
            return False
    return True


def _in_honored_pair(rpg, machine, assignment, node: VReg,
                     old_color: PReg) -> bool:
    regfile = machine.file(node.rclass)
    for edge in rpg.edges_from(node):
        if edge.kind not in (PrefKind.SEQ_NEXT, PrefKind.SEQ_PREV):
            continue
        partner_color = _color_of(edge.target, assignment)
        if partner_color is None:
            continue
        wanted = (regfile.next_reg(partner_color)
                  if edge.kind is PrefKind.SEQ_NEXT
                  else regfile.prev_reg(partner_color))
        if wanted == old_color:
            return True
    for edge in rpg.edges_to(node):
        if edge.kind not in (PrefKind.SEQ_NEXT, PrefKind.SEQ_PREV):
            continue
        source_color = _color_of(edge.src, assignment)
        if source_color is None:
            continue
        wanted = (regfile.prev_reg(source_color)
                  if edge.kind is PrefKind.SEQ_NEXT
                  else regfile.next_reg(source_color))
        if wanted == old_color:
            return True
    return False
