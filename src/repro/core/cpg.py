"""The Coloring Precedence Graph (Section 5.2).

The CPG is a partial order on live ranges that *relaxes* the total
select order of the simplification stack without giving up the
colorability it certifies: any topological traversal colors every node
that was not an optimistic (potential-spill) push.

Built exactly by the paper's nine-step algorithm: replay the removals of
the simplification stack against a working copy of the interference
graph (WIG), tracking which nodes are *ready* (currently low-degree, so
colorable whenever we please).  When node ``X``'s removal is replayed,
every remaining neighbor ``W`` that is not yet ready receives an edge
``W → X`` ("W must be colored before X"); if all remaining neighbors are
ready, ``X`` hangs off the *top* node instead.  Newly low-degree
neighbors become ready.  Edges made transitive by an addition are
dropped (step 7).

One deviation, for soundness with precolored nodes: the paper removes
physical registers from the WIG outright; we instead keep each node's
count of physical-register neighbors as a fixed degree offset, so
"ready" (= degree < K) accounts for colors that are taken from the very
start.  With no physical edges the two formulations coincide.

Edge direction sanity (Figure 7(e), K=3, removal order v0 v4 v1 v2 v3):
replaying v0 adds v1→v0 and v2→v0; replaying v4 adds v3→v4; v1, v2, v3
hang off top; v0 and v4 point at bottom.  The initial ready set {v0, v4}
is exactly the paper's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.ir.values import VReg
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.simplify import SimplifyResult

__all__ = ["ColoringPrecedenceGraph", "build_cpg"]

TOP = "top"
BOTTOM = "bottom"


@dataclass(eq=False)
class ColoringPrecedenceGraph:
    """Successor/predecessor maps over live ranges plus top/bottom."""

    succs: dict[object, set[object]] = field(default_factory=dict)
    preds: dict[object, set[object]] = field(default_factory=dict)
    #: edge version counter backing the ``initial_queue`` memo
    _version: int = field(default=0, repr=False)
    _initial_cache: tuple | None = field(default=None, repr=False)

    def ensure(self, node) -> None:
        self.succs.setdefault(node, set())
        self.preds.setdefault(node, set())

    def add_edge(self, a, b) -> None:
        self.ensure(a)
        self.ensure(b)
        self.succs[a].add(b)
        self.preds[b].add(a)
        self._version += 1

    def remove_edge(self, a, b) -> None:
        self.succs.get(a, set()).discard(b)
        self.preds.get(b, set()).discard(a)
        self._version += 1

    def reaches(self, a, b) -> bool:
        """DFS reachability a ->* b."""
        if a == b:
            return True
        stack = [a]
        seen = {a}
        while stack:
            node = stack.pop()
            for nxt in self.succs.get(node, ()):
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # ------------------------------------------------------------------

    def live_nodes(self) -> list[VReg]:
        return [n for n in self.succs if isinstance(n, VReg)]

    def initial_queue(self) -> list[VReg]:
        """Step 1 of the selection algorithm: the top node's successors.

        Memoized behind the edge version counter: repeat callers (the
        ablation drivers re-derive it per traversal) get the cached
        sorted list instead of a re-sort, and any edge mutation
        invalidates the memo.
        """
        cache = self._initial_cache
        if cache is not None and cache[0] == self._version:
            return list(cache[1])
        out = sorted(
            (n for n in self.succs.get(TOP, ()) if isinstance(n, VReg)),
            key=lambda v: v.id,
        )
        self._initial_cache = (self._version, tuple(out))
        return out

    def topological_orders_exist(self) -> bool:
        """Cycle check (the construction can never produce one)."""
        indeg = {n: len(p) for n, p in self.preds.items()}
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for nxt in self.succs.get(node, ()):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return seen == len(self.succs)

    def any_topological_order(self) -> list[VReg]:
        """One topological order over live ranges (tests/ablations).

        FIFO over a deque — ``popleft`` is O(1) where ``list.pop(0)``
        shifted the whole queue — with successors enqueued in sorted
        order, so the emitted order is unchanged and deterministic.
        """
        indeg = {n: len(p) for n, p in self.preds.items()}
        ready = sorted(
            (n for n, d in indeg.items() if d == 0 and n not in (TOP, BOTTOM)),
            key=_order_key,
        )
        queue = deque([TOP])
        queue.extend(ready)
        out: list[VReg] = []
        while queue:
            node = queue.popleft()
            if isinstance(node, VReg):
                out.append(node)
            for nxt in sorted(self.succs.get(node, ()), key=_order_key):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return out

    def __str__(self) -> str:
        lines = ["ColoringPrecedenceGraph {"]
        for node in sorted(self.succs, key=_order_key):
            targets = sorted(self.succs[node], key=_order_key)
            if targets:
                shown = ", ".join(str(t) for t in targets)
                lines.append(f"  {node} -> {shown}")
        lines.append("}")
        return "\n".join(lines)


def _order_key(node) -> tuple:
    if node == TOP:
        return (0, 0, "")
    if node == BOTTOM:
        return (2, 0, "")
    return (1, node.id, node.name or "")


def build_cpg(
    graph: AllocGraph,
    wig_adjacency: dict[VReg, set[VReg]],
    simplification: SimplifyResult,
) -> ColoringPrecedenceGraph:
    """Run the Section 5.2 algorithm.

    ``wig_adjacency`` is the vreg-only adjacency of the interference
    graph *before* simplification removed anything (the WIG); ``graph``
    supplies K and the fixed physical-register degree offsets.

    The replay runs over dense-id bitmasks: the WIG adjacency becomes
    one int row per node, "degree" a popcount against the alive mask,
    and the step-7 transitivity test a single ``&`` against an
    incrementally-maintained reachability closure.  The closure stays
    exact because a node's out-edges are complete before any in-edge is
    added to it — in-edges to ``X`` appear only at ``X``'s own pop, after
    which ``X`` (removed from the WIG) never gains another successor.
    """
    from repro.analysis.indexing import iter_bits

    k = graph.k
    # Dense ids in ascending-vreg-id order, mirroring the step-4 walk.
    nodes: list[VReg] = sorted(wig_adjacency, key=lambda v: v.id)
    idx = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    bottom_bit = 1 << n
    adj = [0] * n
    preg_deg = [0] * n
    for node, neigh in wig_adjacency.items():
        i = idx[node]
        mask = 0
        for w in neigh:
            mask |= 1 << idx[w]
        adj[i] = mask
        preg_deg[i] = sum(
            1 for x in graph.adj.get(node, ()) if not isinstance(x, VReg)
        )

    cpg = ColoringPrecedenceGraph()
    cpg.ensure(TOP)
    cpg.ensure(BOTTOM)
    alive = (1 << n) - 1
    ready = 0
    created = 0
    #: per-node mask of CPG-reachable nodes (dense ids plus the bottom bit)
    reach = [0] * n

    # Step 4: initial low-degree nodes point at bottom and are ready;
    # potential-spill nodes point at bottom but are not ready.
    optimistic = simplification.optimistic
    for i, node in enumerate(nodes):
        if (adj[i] & alive).bit_count() + preg_deg[i] < k:
            cpg.add_edge(node, BOTTOM)
            reach[i] |= bottom_bit
            created |= 1 << i
            ready |= 1 << i
        elif node in optimistic:
            cpg.add_edge(node, BOTTOM)
            reach[i] |= bottom_bit
            created |= 1 << i

    # Steps 5-9: replay removals in simplification order.
    for popped in simplification.stack:
        pi = idx.get(popped)
        if pi is None or not (alive >> pi) & 1:
            raise AllocationError(f"stack node {popped} missing from WIG")
        if not (created >> pi) & 1:
            raise AllocationError(
                f"CPG invariant broken: {popped} popped before being "
                f"created (neither low-degree, optimistic, nor a neighbor "
                f"of an earlier pop)"
            )
        popped_bit = 1 << pi
        alive &= ~popped_bit
        neighbors = adj[pi] & alive
        created |= neighbors
        for wi in iter_bits(neighbors):
            cpg.ensure(nodes[wi])

        non_ready = neighbors & ~ready
        if non_ready:
            popped_reach = reach[pi] | popped_bit
            popped_to_bottom = reach[pi] & bottom_bit
            # Bit order is ascending vreg id — the step-7 edge order.
            for wi in iter_bits(non_ready):
                # Step 7: skip (and never create) transitive edges.
                if not reach[wi] & popped_bit:
                    w = nodes[wi]
                    cpg.add_edge(w, popped)
                    reach[wi] |= popped_reach
                    # A pre-existing w -> bottom edge is now transitive
                    # whenever `popped` itself reaches bottom.
                    if popped_to_bottom and BOTTOM in cpg.succs.get(w, ()):
                        cpg.remove_edge(w, BOTTOM)
        else:
            cpg.add_edge(TOP, popped)

        # Step 8: removal may have made neighbors low-degree.
        for wi in iter_bits(non_ready):
            if (adj[wi] & alive).bit_count() + preg_deg[wi] < k:
                ready |= 1 << wi

    return cpg
