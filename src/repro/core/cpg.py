"""The Coloring Precedence Graph (Section 5.2).

The CPG is a partial order on live ranges that *relaxes* the total
select order of the simplification stack without giving up the
colorability it certifies: any topological traversal colors every node
that was not an optimistic (potential-spill) push.

Built exactly by the paper's nine-step algorithm: replay the removals of
the simplification stack against a working copy of the interference
graph (WIG), tracking which nodes are *ready* (currently low-degree, so
colorable whenever we please).  When node ``X``'s removal is replayed,
every remaining neighbor ``W`` that is not yet ready receives an edge
``W → X`` ("W must be colored before X"); if all remaining neighbors are
ready, ``X`` hangs off the *top* node instead.  Newly low-degree
neighbors become ready.  Edges made transitive by an addition are
dropped (step 7).

One deviation, for soundness with precolored nodes: the paper removes
physical registers from the WIG outright; we instead keep each node's
count of physical-register neighbors as a fixed degree offset, so
"ready" (= degree < K) accounts for colors that are taken from the very
start.  With no physical edges the two formulations coincide.

Edge direction sanity (Figure 7(e), K=3, removal order v0 v4 v1 v2 v3):
replaying v0 adds v1→v0 and v2→v0; replaying v4 adds v3→v4; v1, v2, v3
hang off top; v0 and v4 point at bottom.  The initial ready set {v0, v4}
is exactly the paper's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis import matrix
from repro.errors import AllocationError
from repro.ir.values import VReg
from repro.profiling import phase
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.simplify import SimplifyResult

__all__ = ["ColoringPrecedenceGraph", "build_cpg"]

#: Below this many WIG nodes the matrix-backend replay keeps its
#: reachability rows as scalar Python ints — per-call numpy overhead
#: beats word-parallelism on masks this small.  Tests force 0 to drive
#: the batched branch on small graphs.
MATRIX_MIN_NODES = 192

TOP = "top"
BOTTOM = "bottom"


@dataclass(eq=False)
class ColoringPrecedenceGraph:
    """Successor/predecessor maps over live ranges plus top/bottom."""

    succs: dict[object, set[object]] = field(default_factory=dict)
    preds: dict[object, set[object]] = field(default_factory=dict)
    #: edge version counter backing the ``initial_queue`` memo
    _version: int = field(default=0, repr=False)
    _initial_cache: tuple | None = field(default=None, repr=False)

    def ensure(self, node) -> None:
        self.succs.setdefault(node, set())
        self.preds.setdefault(node, set())

    def add_edge(self, a, b) -> None:
        self.ensure(a)
        self.ensure(b)
        self.succs[a].add(b)
        self.preds[b].add(a)
        self._version += 1

    def remove_edge(self, a, b) -> None:
        self.succs.get(a, set()).discard(b)
        self.preds.get(b, set()).discard(a)
        self._version += 1

    def reaches(self, a, b) -> bool:
        """DFS reachability a ->* b."""
        if a == b:
            return True
        stack = [a]
        seen = {a}
        while stack:
            node = stack.pop()
            for nxt in self.succs.get(node, ()):
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # ------------------------------------------------------------------

    def live_nodes(self) -> list[VReg]:
        return [n for n in self.succs if isinstance(n, VReg)]

    def initial_queue(self) -> list[VReg]:
        """Step 1 of the selection algorithm: the top node's successors.

        Memoized behind the edge version counter: repeat callers (the
        ablation drivers re-derive it per traversal) get the cached
        sorted list instead of a re-sort, and any edge mutation
        invalidates the memo.
        """
        cache = self._initial_cache
        if cache is not None and cache[0] == self._version:
            return list(cache[1])
        out = sorted(
            (n for n in self.succs.get(TOP, ()) if isinstance(n, VReg)),
            key=lambda v: v.id,
        )
        self._initial_cache = (self._version, tuple(out))
        return out

    def topological_orders_exist(self) -> bool:
        """Cycle check (the construction can never produce one)."""
        indeg = {n: len(p) for n, p in self.preds.items()}
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for nxt in self.succs.get(node, ()):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return seen == len(self.succs)

    def any_topological_order(self) -> list[VReg]:
        """One topological order over live ranges (tests/ablations).

        FIFO over a deque — ``popleft`` is O(1) where ``list.pop(0)``
        shifted the whole queue — with successors enqueued in sorted
        order, so the emitted order is unchanged and deterministic.
        """
        indeg = {n: len(p) for n, p in self.preds.items()}
        ready = sorted(
            (n for n, d in indeg.items() if d == 0 and n not in (TOP, BOTTOM)),
            key=_order_key,
        )
        queue = deque([TOP])
        queue.extend(ready)
        out: list[VReg] = []
        while queue:
            node = queue.popleft()
            if isinstance(node, VReg):
                out.append(node)
            for nxt in sorted(self.succs.get(node, ()), key=_order_key):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return out

    def __str__(self) -> str:
        lines = ["ColoringPrecedenceGraph {"]
        for node in sorted(self.succs, key=_order_key):
            targets = sorted(self.succs[node], key=_order_key)
            if targets:
                shown = ", ".join(str(t) for t in targets)
                lines.append(f"  {node} -> {shown}")
        lines.append("}")
        return "\n".join(lines)


def _order_key(node) -> tuple:
    if node == TOP:
        return (0, 0, "")
    if node == BOTTOM:
        return (2, 0, "")
    return (1, node.id, node.name or "")


def build_cpg(
    graph: AllocGraph,
    wig_adjacency: dict[VReg, set[VReg]],
    simplification: SimplifyResult,
) -> ColoringPrecedenceGraph:
    """Run the Section 5.2 algorithm.

    ``wig_adjacency`` is the vreg-only adjacency of the interference
    graph *before* simplification removed anything (the WIG); ``graph``
    supplies K and the fixed physical-register degree offsets.

    ``REPRO_DATAFLOW`` picks the replay engine — the int-bitmask closure
    below, or the matrix variant (batched degree popcounts and row-OR
    reachability propagation) — and ``validate`` runs both and raises on
    any difference, including node/edge *insertion order*, which the
    selector's dict iteration observes.  Both engines build the CPG
    edge-for-edge identically.
    """
    mode = matrix.dataflow_mode()
    if mode == "int":
        return _build_cpg_int(graph, wig_adjacency, simplification)
    if mode == "numpy":
        return _build_cpg_matrix(graph, wig_adjacency, simplification)
    got = _build_cpg_matrix(graph, wig_adjacency, simplification)
    want = _build_cpg_int(graph, wig_adjacency, simplification)
    problems = _compare_cpgs(got, want)
    if problems:
        raise AllocationError(
            "dataflow backends diverged in CPG: " + "; ".join(problems)
        )
    return got


def _compare_cpgs(got: ColoringPrecedenceGraph,
                  want: ColoringPrecedenceGraph) -> list[str]:
    problems = []
    if list(got.succs) != list(want.succs):
        problems.append("succs insertion order differs")
    if list(got.preds) != list(want.preds):
        problems.append("preds insertion order differs")
    if got.succs != want.succs:
        problems.append("successor sets differ")
    if got.preds != want.preds:
        problems.append("predecessor sets differ")
    if got._version != want._version:
        problems.append("edge version counters differ")
    return problems


def _wig_rows(graph: AllocGraph, wig_adjacency: dict[VReg, set[VReg]]):
    """Dense-id node list, int adjacency rows, and preg-degree offsets."""
    # Dense ids in ascending-vreg-id order, mirroring the step-4 walk.
    nodes: list[VReg] = sorted(wig_adjacency, key=lambda v: v.id)
    idx = {node: i for i, node in enumerate(nodes)}
    adj = [0] * len(nodes)
    preg_deg = [0] * len(nodes)
    for node, neigh in wig_adjacency.items():
        i = idx[node]
        mask = 0
        for w in neigh:
            mask |= 1 << idx[w]
        adj[i] = mask
        preg_deg[i] = sum(
            1 for x in graph.adj.get(node, ()) if not isinstance(x, VReg)
        )
    return nodes, idx, adj, preg_deg


def _wig_rows_usable(graph: AllocGraph, wig_adjacency) -> bool:
    """Whether ``graph``'s packed interference rows still equal the WIG.

    True only when the graph was projected from a bitmask interference
    graph, nothing has rewritten its adjacency since (coalescing or edge
    insertion clears ``adj_pristine``; simplification removals do not),
    and the snapshot covers every build-time vreg — i.e. it was taken
    before any removal, so neither its key set nor its neighbor sets
    were filtered by ``active``.
    """
    return (
        graph.source_rows is not None
        and graph.adj_pristine
        and len(wig_adjacency) == graph.initial_vregs > 0
        and matrix.have_numpy()
    )


def _wig_rows_matrix(graph: AllocGraph, wig_adjacency):
    """:func:`_wig_rows` read straight off the packed interference rows.

    One gather + bit-transpose replaces the per-neighbor Python encode
    loop: the class sub-matrix is unpacked to bits, the WIG nodes'
    columns gathered in dense-id order, and the result repacked into one
    int row per node.  Valid only under :func:`_wig_rows_usable`.
    """
    np = matrix._numpy()
    index = graph.source_index
    ids = index.ids
    nodes: list[VReg] = sorted(wig_adjacency, key=lambda v: v.id)
    idx = {node: i for i, node in enumerate(nodes)}
    gids = [ids[node] for node in nodes]
    sub = graph.source_rows.matrix[gids]
    bits = np.unpackbits(sub.view(np.uint8), axis=1, bitorder="little")
    packed = np.packbits(bits[:, gids], axis=1, bitorder="little")
    adj = [int.from_bytes(row.tobytes(), "little") for row in packed]
    # Interference rows never cross classes, so masking with the global
    # preg bits counts exactly this class's precolored neighbors.
    preg_row = matrix.pack_masks([index.preg_mask], sub.shape[1])[0]
    preg_deg = matrix.popcount_rows(sub & preg_row).tolist()
    return nodes, idx, adj, preg_deg


def _build_cpg_int(
    graph: AllocGraph,
    wig_adjacency: dict[VReg, set[VReg]],
    simplification: SimplifyResult,
) -> ColoringPrecedenceGraph:
    """The int-bitmask replay: one int row per node, scalar closure.

    The step-7 transitivity test is a single ``&`` against an
    incrementally-maintained reachability closure.  The closure stays
    exact because a node's out-edges are complete before any in-edge is
    added to it — in-edges to ``X`` appear only at ``X``'s own pop, after
    which ``X`` (removed from the WIG) never gains another successor.
    """
    from repro.analysis.indexing import iter_bits

    k = graph.k
    nodes, idx, adj, preg_deg = _wig_rows(graph, wig_adjacency)
    n = len(nodes)
    bottom_bit = 1 << n

    cpg = ColoringPrecedenceGraph()
    cpg.ensure(TOP)
    cpg.ensure(BOTTOM)
    alive = (1 << n) - 1
    ready = 0
    created = 0
    #: per-node mask of CPG-reachable nodes (dense ids plus the bottom bit)
    reach = [0] * n

    # Step 4: initial low-degree nodes point at bottom and are ready;
    # potential-spill nodes point at bottom but are not ready.
    optimistic = simplification.optimistic
    for i, node in enumerate(nodes):
        if (adj[i] & alive).bit_count() + preg_deg[i] < k:
            cpg.add_edge(node, BOTTOM)
            reach[i] |= bottom_bit
            created |= 1 << i
            ready |= 1 << i
        elif node in optimistic:
            cpg.add_edge(node, BOTTOM)
            reach[i] |= bottom_bit
            created |= 1 << i

    # Steps 5-9: replay removals in simplification order.
    with phase("closure"):
        for popped in simplification.stack:
            pi = idx.get(popped)
            if pi is None or not (alive >> pi) & 1:
                raise AllocationError(
                    f"stack node {popped} missing from WIG"
                )
            if not (created >> pi) & 1:
                raise AllocationError(
                    f"CPG invariant broken: {popped} popped before being "
                    f"created (neither low-degree, optimistic, nor a "
                    f"neighbor of an earlier pop)"
                )
            popped_bit = 1 << pi
            alive &= ~popped_bit
            neighbors = adj[pi] & alive
            created |= neighbors
            for wi in iter_bits(neighbors):
                cpg.ensure(nodes[wi])

            non_ready = neighbors & ~ready
            if non_ready:
                popped_reach = reach[pi] | popped_bit
                popped_to_bottom = reach[pi] & bottom_bit
                # Bit order is ascending vreg id — the step-7 edge order.
                for wi in iter_bits(non_ready):
                    # Step 7: skip (and never create) transitive edges.
                    if not reach[wi] & popped_bit:
                        w = nodes[wi]
                        cpg.add_edge(w, popped)
                        reach[wi] |= popped_reach
                        # A pre-existing w -> bottom edge is now
                        # transitive whenever `popped` itself reaches
                        # bottom.
                        if popped_to_bottom and BOTTOM in cpg.succs.get(
                            w, ()
                        ):
                            cpg.remove_edge(w, BOTTOM)
            else:
                cpg.add_edge(TOP, popped)

            # Step 8: removal may have made neighbors low-degree.
            for wi in iter_bits(non_ready):
                if (adj[wi] & alive).bit_count() + preg_deg[wi] < k:
                    ready |= 1 << wi

    return cpg


def _build_cpg_matrix(
    graph: AllocGraph,
    wig_adjacency: dict[VReg, set[VReg]],
    simplification: SimplifyResult,
) -> ColoringPrecedenceGraph:
    """The matrix-backend replay: batched popcounts, row-OR closure.

    Produces a CPG identical to :func:`_build_cpg_int` down to dict
    insertion order and the edge version counter.  Structural work is
    deduplicated with a created-node bitmask (the int replay re-ensures
    every neighbor at every pop) and edges go in with direct set
    operations, with the version counter settled once at the end.  At
    :data:`MATRIX_MIN_NODES` and above, reachability rows live in one
    numpy ``uint64`` matrix: the step-7 transitivity tests of a pop
    become one gathered column read, the closure update one batched
    row-OR (``R[sel] |= R[pi]``), and the step-4/step-8 degree counts
    batched popcounts; below the threshold the same loop keeps scalar
    int rows, where small-mask numpy call overhead would dominate.
    """
    k = graph.k
    if _wig_rows_usable(graph, wig_adjacency):
        nodes, idx, adj, preg_deg = _wig_rows_matrix(graph, wig_adjacency)
    else:
        nodes, idx, adj, preg_deg = _wig_rows(graph, wig_adjacency)
    n = len(nodes)
    bottom_bit = 1 << n

    cpg = ColoringPrecedenceGraph()
    cpg.ensure(TOP)
    cpg.ensure(BOTTOM)
    succs = cpg.succs
    preds = cpg.preds
    top_succs = succs[TOP]
    bottom_preds = preds[BOTTOM]

    alive = (1 << n) - 1
    ready = 0
    created = 0
    #: nodes whose step-4 edge to bottom is still present
    has_bottom = 0
    edge_ops = 0
    optimistic = simplification.optimistic

    use_np = n >= MATRIX_MIN_NODES and matrix.have_numpy()
    if use_np:
        np = matrix._numpy()
        words = matrix.words_for(n + 1)
        adj_m = matrix.pack_masks(adj, words)
        pd = np.asarray(preg_deg, dtype=np.int64)
        low0 = matrix.popcount_rows(adj_m) + pd < k
        reach_m = np.zeros((n, words), dtype=np.uint64)
        alive_row = matrix.pack_masks([alive], words)[0]
        bword, bbit = divmod(n, 64)
        bottom_bit64 = np.uint64(1 << bbit)
        word_mask = (1 << 64) - 1
    else:
        reach = [0] * n

    # Step 4: initial low-degree nodes point at bottom and are ready;
    # potential-spill nodes point at bottom but are not ready.
    for i, node in enumerate(nodes):
        low = (bool(low0[i]) if use_np
               else adj[i].bit_count() + preg_deg[i] < k)
        if low or node in optimistic:
            succs[node] = {BOTTOM}
            preds[node] = set()
            bottom_preds.add(node)
            edge_ops += 1
            created |= 1 << i
            has_bottom |= 1 << i
            if low:
                ready |= 1 << i
            if use_np:
                reach_m[i, bword] = bottom_bit64
            else:
                reach[i] |= bottom_bit

    # Steps 5-9: replay removals in simplification order.
    with phase("closure"):
        for popped in simplification.stack:
            pi = idx.get(popped)
            if pi is None or not (alive >> pi) & 1:
                raise AllocationError(
                    f"stack node {popped} missing from WIG"
                )
            if not (created >> pi) & 1:
                raise AllocationError(
                    f"CPG invariant broken: {popped} popped before being "
                    f"created (neither low-degree, optimistic, nor a "
                    f"neighbor of an earlier pop)"
                )
            popped_bit = 1 << pi
            alive &= ~popped_bit
            if use_np:
                wp, bp = divmod(pi, 64)
                alive_row[wp] &= np.uint64(~(1 << bp) & word_mask)
            neighbors = adj[pi] & alive
            # Ensure only genuinely new nodes (ensured == created: every
            # ensured node was created at the same step), ascending.
            rest = neighbors & ~created
            while rest:
                low = rest & -rest
                rest ^= low
                w = nodes[low.bit_length() - 1]
                succs[w] = set()
                preds[w] = set()
            created |= neighbors

            non_ready = neighbors & ~ready
            if not non_ready:
                top_succs.add(popped)
                preds[popped].add(TOP)
                edge_ops += 1
                continue
            preds_popped = preds[popped]
            if use_np:
                pending = []
                rest = non_ready
                while rest:
                    low = rest & -rest
                    rest ^= low
                    pending.append(low.bit_length() - 1)
                wis = np.asarray(pending, dtype=np.intp)
                pbit64 = np.uint64(1 << bp)
                # Step 7 transitivity tests, one gathered column read.
                sel = wis[(reach_m[wis, wp] & pbit64) == 0]
                popped_to_bottom = bool(reach_m[pi, bword] & bottom_bit64)
                for wi in sel:
                    wi = int(wi)
                    w = nodes[wi]
                    succs[w].add(popped)
                    preds_popped.add(w)
                    edge_ops += 1
                    if popped_to_bottom and (has_bottom >> wi) & 1:
                        succs[w].discard(BOTTOM)
                        bottom_preds.discard(w)
                        has_bottom &= ~(1 << wi)
                        edge_ops += 1
                if sel.size:
                    reach_m[sel] |= reach_m[pi]
                    reach_m[sel, wp] |= pbit64
                # Step 8: batched recount of the touched neighbors.
                low_now = (
                    matrix.popcount_rows(adj_m[wis] & alive_row) + pd[wis]
                    < k
                )
                for wi in wis[low_now]:
                    ready |= 1 << int(wi)
            else:
                popped_reach = reach[pi] | popped_bit
                popped_to_bottom = reach[pi] & bottom_bit
                rest = non_ready
                while rest:
                    low = rest & -rest
                    rest ^= low
                    wi = low.bit_length() - 1
                    if not reach[wi] & popped_bit:
                        w = nodes[wi]
                        succs[w].add(popped)
                        preds_popped.add(w)
                        edge_ops += 1
                        reach[wi] |= popped_reach
                        if popped_to_bottom and has_bottom & low:
                            succs[w].discard(BOTTOM)
                            bottom_preds.discard(w)
                            has_bottom &= ~low
                            edge_ops += 1
                    if (adj[wi] & alive).bit_count() + preg_deg[wi] < k:
                        ready |= low

    cpg._version = edge_ops
    return cpg
