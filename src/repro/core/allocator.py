"""The paper's full coloring system (Section 5.4, Figure 8).

    renumber → build (interference graph + Register Preference Graph) →
    simplify (optimistic) → build Coloring Precedence Graph →
    integrated select (spill + coalesce + preference resolution)

There is deliberately *no* coalesce phase: "We also sacrifice the
positive aspect of coalescing to improve the colorability.  However
optimistic simplification can compensate for this."  Coalescing happens
as deferred same-register selection driven by the RPG's coalesce edges.

``PreferenceDirectedAllocator(PreferenceConfig.only_coalescing())`` is
the Section 6.1 ablation ("only coalescing"); the default configuration
is "full preferences".
"""

from __future__ import annotations

from repro.core.costs import CostModel
from repro.core.cpg import BOTTOM, TOP, ColoringPrecedenceGraph, build_cpg
from repro.core.postpass import aggressive_post_coalesce
from repro.core.prefs import PreferenceConfig, build_rpg
from repro.core.select import PreferenceSelector, SelectionTrace
from repro.ir.values import VReg
from repro.profiling import phase
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.simplify import simplify

__all__ = ["PreferenceDirectedAllocator"]


class PreferenceDirectedAllocator(Allocator):
    """Preference-directed graph coloring (Koseki–Komatsu–Nakatani)."""

    def __init__(self, config: PreferenceConfig | None = None,
                 name: str | None = None, keep_trace: bool = False,
                 use_cpg: bool = True, post_coalesce: bool = False):
        self.config = config or PreferenceConfig.full()
        self.name = name or (
            "full-preferences" if self.config.volatility else "only-coalescing"
        )
        self.keep_trace = keep_trace
        #: ablation hook: with ``use_cpg=False`` the selector follows the
        #: plain simplification stack (a chain-shaped precedence graph),
        #: isolating what the partial order itself contributes
        self.use_cpg = use_cpg
        #: the paper's Section 6.1 suggested extension: a conservative
        #: aggressive-coalescing pass over the finished assignment
        self.post_coalesce = post_coalesce
        self.last_trace: SelectionTrace | None = None

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        with phase("build-RPG"):
            costs = CostModel(ctx.func, ctx.machine, ctx.cfg, ctx.loops,
                              ctx.liveness, policy=ctx.policy)
            rpg = build_rpg(ctx.func, ctx.machine, costs, self.config)
        trace = SelectionTrace() if self.keep_trace else None

        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            wig = graph.snapshot_active_adjacency()
            simplification = simplify(graph, optimistic=True,
                                      policy=ctx.policy)
            with phase("CPG"):
                if self.use_cpg:
                    cpg = build_cpg(graph, wig, simplification)
                else:
                    cpg = _chain_cpg(simplification)
            selector = PreferenceSelector(
                graph=graph,
                rpg=rpg,
                cpg=cpg,
                machine=ctx.machine,
                regfile=ctx.machine.file(rclass),
                costs=costs,
                optimistic=simplification.optimistic,
                trace=trace,
                active_memory_spill=self.config.volatility,
                policy=ctx.policy,
            )
            selector.run()
            if self.post_coalesce:
                outcome.coalesced_count += aggressive_post_coalesce(
                    graph, rpg, ctx.machine, costs, selector.assignment,
                    selector.spilled,
                )
            outcome.assignment.update(selector.assignment)
            outcome.biased_hits += selector.honored_prefs
            for node in selector.spilled:
                if isinstance(node, VReg):
                    outcome.spilled.add(node)
        self.last_trace = trace
        return outcome


def _chain_cpg(simplification) -> ColoringPrecedenceGraph:
    """A total-order precedence graph mirroring the Briggs pop order."""
    cpg = ColoringPrecedenceGraph()
    cpg.ensure(TOP)
    cpg.ensure(BOTTOM)
    order = simplification.select_order
    if not order:
        return cpg
    cpg.add_edge(TOP, order[0])
    for earlier, later in zip(order, order[1:]):
        cpg.add_edge(earlier, later)
    cpg.add_edge(order[-1], BOTTOM)
    return cpg
