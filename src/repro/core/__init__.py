"""The paper's contribution: RPG, CPG, and preference-directed coloring."""

from repro.core.allocator import PreferenceDirectedAllocator
from repro.core.costs import (
    CALLEE_SAVE_COST,
    SAVE_RESTORE_COST,
    CostModel,
    Strength,
    inst_cost,
)
from repro.core.cpg import BOTTOM, TOP, ColoringPrecedenceGraph, build_cpg
from repro.core.pairs import PairedLoadCandidate, find_paired_loads
from repro.core.prefs import PreferenceConfig, build_rpg, volatility_groups
from repro.core.rpg import (
    PrefEdge,
    PrefKind,
    RegGroup,
    RegisterPreferenceGraph,
)
from repro.core.select import PreferenceSelector, SelectionTrace

__all__ = [
    "PreferenceDirectedAllocator",
    "CostModel",
    "Strength",
    "inst_cost",
    "SAVE_RESTORE_COST",
    "CALLEE_SAVE_COST",
    "ColoringPrecedenceGraph",
    "build_cpg",
    "TOP",
    "BOTTOM",
    "PairedLoadCandidate",
    "find_paired_loads",
    "PreferenceConfig",
    "build_rpg",
    "volatility_groups",
    "PrefEdge",
    "PrefKind",
    "RegGroup",
    "RegisterPreferenceGraph",
    "PreferenceSelector",
    "SelectionTrace",
]
