"""The Register Preference Graph (Section 5.1).

A directed graph in which "a node represents a live range, a register, or
a register class, while an edge represents a preference".  Edge kinds:

* ``COALESCE`` — use the same register as the destination node (a live
  range or a physical register; the latter covers the *dedicated* uses:
  parameter registers, return registers);
* ``SEQ_NEXT`` / ``SEQ_PREV`` — use the register whose index is one above
  / below the destination node's register (paired/coupled loads);
* ``GROUP`` — use any register of a register group (volatile,
  non-volatile, byte-load-capable, ...), the paper's *prefers* edges.

Every edge carries a :class:`~repro.core.costs.Strength` — the appendix
``Str(V, P)`` evaluated for a volatile and a non-volatile placement, as in
Figure 7(c)'s "40 when coalescing to a volatile register, but 38 for a
non-volatile".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.costs import Strength
from repro.ir.values import PReg, RegClass, Register, VReg

__all__ = ["PrefKind", "RegGroup", "PrefEdge", "RegisterPreferenceGraph"]


class PrefKind(enum.Enum):
    """The four preference edge kinds of Figure 7(c)."""

    COALESCE = "coalesce"
    SEQ_NEXT = "sequential+"   # wants (destination register) + 1
    SEQ_PREV = "sequential-"   # wants (destination register) - 1
    GROUP = "prefers"


@dataclass(frozen=True)
class RegGroup:
    """A named set of registers (a register-class node of the RPG)."""

    name: str
    rclass: RegClass
    regs: frozenset[PReg]

    def __str__(self) -> str:
        return f"<{self.name}/{self.rclass.value}>"


@dataclass(frozen=True)
class PrefEdge:
    """One preference of ``src`` about its register."""

    src: VReg
    kind: PrefKind
    target: Register | RegGroup
    strength: Strength

    @property
    def is_live_range_target(self) -> bool:
        """True when the destination is another live range (type 4 / the
        deferred case of Section 5.3 step 2.2)."""
        return isinstance(self.target, VReg)

    def __str__(self) -> str:
        return (
            f"{self.src} --{self.kind.value}[{self.strength}]--> "
            f"{self.target}"
        )


@dataclass(eq=False)
class RegisterPreferenceGraph:
    """Preference edges indexed by source live range."""

    _out: dict[VReg, list[PrefEdge]] = field(default_factory=dict)
    _in: dict[VReg, list[PrefEdge]] = field(default_factory=dict)

    def add(self, edge: PrefEdge) -> None:
        self._out.setdefault(edge.src, []).append(edge)
        if isinstance(edge.target, VReg):
            self._in.setdefault(edge.target, []).append(edge)

    def edges_from(self, node: VReg) -> list[PrefEdge]:
        """Preferences held *by* ``node``."""
        return self._out.get(node, [])

    def edges_to(self, node: VReg) -> list[PrefEdge]:
        """Live-range preferences *about* ``node`` held by others."""
        return self._in.get(node, [])

    def nodes(self) -> set[VReg]:
        out: set[VReg] = set(self._out)
        out.update(self._in)
        return out

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def __str__(self) -> str:
        lines = ["RegisterPreferenceGraph {"]
        for src in sorted(self._out, key=lambda v: v.id):
            for edge in self._out[src]:
                lines.append(f"  {edge}")
        lines.append("}")
        return "\n".join(lines)
