"""The mutable coloring graph shared by all allocator variants.

One :class:`AllocGraph` is built per register class and allocation round
from the function-level :class:`~repro.analysis.interference.InterferenceGraph`.
It supports the operations the Chaitin-family algorithms need:

* *removal* (simplification) with incremental degree maintenance,
* *coalescing* via union-find aliases and adjacency merging, with enough
  bookkeeping to undo (Park–Moon needs the primitive members),
* *precolored* physical-register nodes of effectively infinite degree.

Virtual nodes are the webs produced by renumbering; physical nodes are the
target's registers of the class (all of them, so the color set is total).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interference import InterferenceGraph
from repro.errors import AllocationError
from repro.ir.instructions import Move
from repro.ir.values import PReg, RegClass, Register, VReg
from repro.target.machine import TargetMachine

__all__ = ["AllocGraph", "build_alloc_graph"]

INFINITE_DEGREE = 1 << 30


@dataclass(eq=False)
class AllocGraph:
    """Coloring graph over one register class."""

    rclass: RegClass
    k: int
    colors: tuple[PReg, ...]
    #: full adjacency over vregs and pregs (grows under coalescing)
    adj: dict[Register, set[Register]] = field(default_factory=dict)
    #: nodes still in the graph (vregs only; pregs are always present)
    active: set[VReg] = field(default_factory=set)
    #: current degree of each active vreg w.r.t. active ∪ precolored
    _degree: dict[VReg, int] = field(default_factory=dict)
    #: move instructions, per node, for copy-relatedness queries
    moves_of: dict[Register, list[Move]] = field(default_factory=dict)
    moves: list[Move] = field(default_factory=list)
    #: union-find alias map from coalescing (member -> representative)
    alias: dict[VReg, Register] = field(default_factory=dict)
    #: representative -> all coalesced members (including itself)
    members: dict[Register, set[Register]] = field(default_factory=dict)
    spill_costs: dict[VReg, float] = field(default_factory=dict)
    #: degree-change notification hook: called as ``listener(node,
    #: new_degree)`` after any active vreg's degree changes (removal,
    #: coalescing, or edge insertion).  At most one listener; the
    #: simplify worklist attaches for the duration of its run so
    #: low-degree crossings and spill-metric refreshes are event-driven
    #: instead of rescans (see ``repro.regalloc.worklist``).
    degree_listener: object | None = field(default=None, repr=False)
    #: when built from a bitmask-form interference graph, the packed
    #: uint64 rows and dense index it was projected from.  Consumers
    #: (the CPG replay) may read adjacency straight from these rows as
    #: long as ``adj_pristine`` still holds.
    source_rows: object | None = field(default=None, repr=False)
    source_index: object | None = field(default=None, repr=False)
    #: vreg count at build time (``adj`` rows match ``source_rows`` only
    #: while no edge has been added or node coalesced since then; plain
    #: simplification removals never rewrite ``adj`` so they keep this
    #: True)
    adj_pristine: bool = True
    initial_vregs: int = 0

    # ------------------------------------------------------------------
    # aliases

    def find(self, node: Register) -> Register:
        """Representative of ``node`` after coalescing."""
        while isinstance(node, VReg) and node in self.alias:
            node = self.alias[node]
        return node

    def members_of(self, node: Register) -> set[Register]:
        return self.members.get(node, {node})

    # ------------------------------------------------------------------
    # structure queries

    def is_precolored(self, node: Register) -> bool:
        return isinstance(node, PReg)

    def degree(self, node: Register) -> int:
        if isinstance(node, PReg):
            return INFINITE_DEGREE
        return self._degree[node]

    def neighbors(self, node: Register) -> set[Register]:
        """Active (or precolored) neighbors of ``node``."""
        return {
            n for n in self.adj.get(node, ())
            if isinstance(n, PReg) or n in self.active
        }

    def all_neighbors(self, node: Register) -> set[Register]:
        """Neighbors including removed ones (used by select/CPG replay)."""
        return set(self.adj.get(node, ()))

    def interferes(self, a: Register, b: Register) -> bool:
        if isinstance(a, PReg) and isinstance(b, PReg):
            return a != b
        return b in self.adj.get(a, ())

    def significant(self, node: Register) -> bool:
        """Degree >= K (Briggs's 'significant-degree' test)."""
        return self.degree(node) >= self.k

    def vregs(self) -> list[VReg]:
        return [n for n in self.adj if isinstance(n, VReg)]

    def spill_cost(self, node: VReg) -> float:
        if node.no_spill or any(
            isinstance(m, VReg) and m.no_spill for m in self.members_of(node)
        ):
            return float("inf")
        return self.spill_costs.get(node, 1.0)

    # ------------------------------------------------------------------
    # mutation

    def add_edge(self, a: Register, b: Register) -> None:
        if a == b or a.rclass is not b.rclass:
            return
        if isinstance(a, PReg) and isinstance(b, PReg):
            return
        if b in self.adj.setdefault(a, set()):
            return
        self.adj_pristine = False
        self.adj[a].add(b)
        self.adj.setdefault(b, set()).add(a)
        if isinstance(a, VReg) and a in self.active and (
            isinstance(b, PReg) or b in self.active
        ):
            self._degree[a] += 1
            self._note_degree(a)
        if isinstance(b, VReg) and b in self.active and (
            isinstance(a, PReg) or a in self.active
        ):
            self._degree[b] += 1
            self._note_degree(b)

    def _note_degree(self, node: VReg) -> None:
        listener = self.degree_listener
        if listener is not None:
            listener(node, self._degree[node])

    def remove(self, node: VReg) -> None:
        """Simplification removal: take ``node`` out of the active graph."""
        if node not in self.active:
            raise AllocationError(f"removing inactive node {node}")
        self.active.remove(node)
        listener = self.degree_listener
        degree = self._degree
        for n in self.adj.get(node, ()):
            if isinstance(n, VReg) and n in self.active:
                degree[n] -= 1
                if listener is not None:
                    listener(n, degree[n])

    def merge(self, kept: Register, gone: VReg) -> None:
        """Coalesce ``gone`` into ``kept`` (both must be active/precolored)."""
        if isinstance(gone, PReg):
            raise AllocationError("cannot merge away a physical register")
        if gone not in self.active:
            raise AllocationError(f"merging inactive node {gone}")
        if isinstance(kept, VReg) and kept not in self.active:
            raise AllocationError(f"merging into inactive node {kept}")
        self.adj_pristine = False
        self.alias[gone] = kept
        mem = self.members.setdefault(kept, {kept})
        mem |= self.members_of(gone)
        self.members.pop(gone, None)

        self.active.remove(gone)
        kept_adj = self.adj.setdefault(kept, set())
        for n in list(self.adj.get(gone, ())):
            self.adj[n].discard(gone)
            if n == kept:
                # `kept` lost the (unusual) edge to `gone` itself.
                if isinstance(kept, VReg):
                    self._degree[kept] -= 1
                    self._note_degree(kept)
                kept_adj.discard(gone)
                continue
            # `gone` left the graph: a neighbor shared with `kept` loses
            # one active neighbor outright; an unshared one trades the
            # edge to `gone` for a new edge to `kept` (add_edge already
            # bumps both endpoint degrees), so it loses the `gone` count.
            if n in kept_adj:
                if isinstance(n, VReg) and n in self.active:
                    self._degree[n] -= 1
                    self._note_degree(n)
            else:
                self.add_edge(kept, n)
                if isinstance(n, VReg) and n in self.active:
                    self._degree[n] -= 1
                    self._note_degree(n)
        self.adj[gone] = set()
        if isinstance(kept, VReg):
            cost = self.spill_costs.get(kept, 0.0) + self.spill_costs.get(
                gone, 0.0
            )
            self.spill_costs[kept] = cost
        # Move lists merge so copy-relatedness follows the representative.
        self.moves_of.setdefault(kept, []).extend(self.moves_of.get(gone, []))
        self.moves_of.pop(gone, None)

    # ------------------------------------------------------------------

    def copy_related(self, node: Register) -> set[Register]:
        """Current representatives this node is move-connected to."""
        out: set[Register] = set()
        for mv in self.moves_of.get(node, ()):
            for end in (mv.dst, mv.src):
                rep = self.find(end)
                if rep != self.find(node):
                    out.add(rep)
        return out

    def snapshot_active_adjacency(self) -> dict[VReg, set[VReg]]:
        """Vreg-only adjacency of the currently active graph (CPG input)."""
        out: dict[VReg, set[VReg]] = {}
        for node in self.active:
            out[node] = {
                n for n in self.adj.get(node, ())
                if isinstance(n, VReg) and n in self.active
            }
        return out


def build_alloc_graph(
    ig: InterferenceGraph,
    machine: TargetMachine,
    rclass: RegClass,
    spill_costs: dict[VReg, float] | None = None,
) -> AllocGraph:
    """Project the function-wide interference graph onto one class."""
    regfile = machine.file(rclass)
    graph = AllocGraph(
        rclass=rclass,
        k=regfile.k,
        colors=regfile.regs,
        spill_costs=dict(spill_costs or {}),
    )
    # Pre-partitioned projection: only this class's nodes are visited,
    # and every vreg starts active, so its degree is just its row size
    # (interference edges never cross classes).  A bitmask-form graph
    # hands out each neighbor set directly from its rows, so the
    # function-wide adjacency dict never needs to exist.
    class_nodes = ig.nodes_by_class().get(rclass, [])
    from_rows = ig.rows is not None and not ig.materialized
    if from_rows:
        graph.source_rows = ig.rows
        graph.source_index = ig.index
    for node in class_nodes:
        row = ig.row_set(node) if from_rows else set(ig.neighbors(node))
        graph.adj[node] = row
        if isinstance(node, VReg):
            graph.active.add(node)
            graph.members[node] = {node}
            graph._degree[node] = len(row)
    graph.initial_vregs = len(graph.active)
    for preg in regfile.regs:
        graph.adj.setdefault(preg, set())
    for mv in ig.moves:
        if mv.dst.rclass is not rclass:
            continue
        if isinstance(mv.dst, PReg) and isinstance(mv.src, PReg):
            continue
        graph.moves.append(mv)
        graph.moves_of.setdefault(mv.dst, []).append(mv)
        graph.moves_of.setdefault(mv.src, []).append(mv)
    return graph
