"""Call-cost directed register allocation (Lueh & Gross [8]), as the paper
configures it for Figure 11: "aggressive coalescing and a modified
call-cost directed register selection" — labeled **aggressive+volatility**.

Figure 3 phases: renumber → build → coalesce (aggressive) →
*benefit-driven* simplify (non-optimistic; lowest-priority node pushed
first so important nodes are popped, and colored, earlier) → preference
decision (per call site, only the R most valuable crossing live ranges
may claim non-volatile registers) → select (volatile vs. non-volatile vs.
memory by the benefit functions).

The benefit functions come from the shared appendix cost model:
``benefit_vol = Spill_Cost - 3*crossings`` and
``benefit_nonvol = Spill_Cost - 2``; a node whose best benefit is
negative prefers memory and is actively spilled.
"""

from __future__ import annotations

from repro.core.costs import CostModel
from repro.errors import AllocationError
from repro.ir.instructions import Call
from repro.ir.values import PReg, VReg
from repro.policy import DEFAULT_POLICY, Policy
from repro.profiling import phase
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.coalesce import coalesce_aggressive
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.select import forbidden_colors
from repro.regalloc.simplify import choose_spill_candidate

__all__ = ["CallCostAllocator"]


class CallCostAllocator(Allocator):
    """Lueh–Gross-style volatility-aware coloring over aggressive coalescing."""

    name = "aggressive+volatility"

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        costs = CostModel(ctx.func, ctx.machine, ctx.cfg, ctx.loops,
                          ctx.liveness, policy=ctx.policy)
        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            outcome.coalesced_count += coalesce_aggressive(graph)

            benefit_vol, benefit_nonvol = self._benefits(graph, costs,
                                                         ctx.policy)
            with phase("simplify"):
                stack = self._benefit_driven_simplify(
                    graph, benefit_vol, benefit_nonvol, outcome, ctx.policy
                )
            outcome.alias.update(graph.alias)
            if outcome.spilled:
                continue  # Chaitin-style: spill code first, retry round

            forced_volatile = self._preference_decision(
                ctx, graph, rclass, benefit_nonvol
            )
            with phase("select"):
                self._select(ctx, graph, rclass, stack, benefit_vol,
                             benefit_nonvol, forced_volatile, outcome)
        return outcome

    # ------------------------------------------------------------------

    def _benefits(
        self, graph: AllocGraph, costs: CostModel,
        policy: Policy = DEFAULT_POLICY,
    ) -> tuple[dict[VReg, float], dict[VReg, float]]:
        """Per-representative benefits, summed over coalesced members.

        The 3.0/2.0 constants are the policy's save/restore and
        callee-save costs (int defaults 3/2; ``float(3) * cross`` is
        bit-equal to the historical ``3.0 * cross``).
        """
        save_restore = float(policy.save_restore_cost)
        callee_save = float(policy.callee_save_cost)
        benefit_vol: dict[VReg, float] = {}
        benefit_nonvol: dict[VReg, float] = {}
        for node in graph.active:
            spill = cross = 0.0
            for member in graph.members_of(node):
                if isinstance(member, VReg):
                    spill += costs.spill_cost(member)
                    cross += costs.cross_freq(member)
            benefit_vol[node] = spill - save_restore * cross
            benefit_nonvol[node] = spill - callee_save
        return benefit_vol, benefit_nonvol

    def _benefit_driven_simplify(
        self,
        graph: AllocGraph,
        benefit_vol: dict[VReg, float],
        benefit_nonvol: dict[VReg, float],
        outcome: RoundOutcome,
        policy: Policy = DEFAULT_POLICY,
    ) -> list[VReg]:
        def priority(node: VReg) -> float:
            return max(benefit_vol.get(node, 0.0),
                       benefit_nonvol.get(node, 0.0))

        stack: list[VReg] = []
        while graph.active:
            low = [n for n in graph.active if not graph.significant(n)]
            if low:
                node = min(low, key=lambda n: (priority(n), n.id))
                graph.remove(node)
                stack.append(node)
                continue
            candidate = choose_spill_candidate(graph, graph.active, policy)
            graph.remove(candidate)
            for member in graph.members_of(candidate):
                if isinstance(member, VReg):
                    outcome.spilled.add(member)
        return stack

    def _preference_decision(
        self,
        ctx: RoundContext,
        graph: AllocGraph,
        rclass,
        benefit_nonvol: dict[VReg, float],
    ) -> set[VReg]:
        """Nodes that must not claim non-volatile registers.

        For each call, the live-across representatives beyond the R most
        valuable (R = number of non-volatile registers) are annotated to
        prefer volatile registers.
        """
        regfile = ctx.machine.file(rclass)
        r = len(regfile.nonvolatile)
        after = _liveness_after(ctx)
        forced: set[VReg] = set()
        for blk in ctx.func.blocks:
            for instr in blk.instrs:
                if not isinstance(instr, Call):
                    continue
                crossing = {
                    graph.find(w)
                    for w in after[id(instr)] - set(instr.defs())
                    if isinstance(w, VReg) and w.rclass is rclass
                }
                reps = [w for w in crossing if isinstance(w, VReg)]
                reps.sort(key=lambda w: (-benefit_nonvol.get(w, 0.0), w.id))
                forced.update(reps[r:])
        return forced

    def _select(
        self,
        ctx: RoundContext,
        graph: AllocGraph,
        rclass,
        stack: list[VReg],
        benefit_vol: dict[VReg, float],
        benefit_nonvol: dict[VReg, float],
        forced_volatile: set[VReg],
        outcome: RoundOutcome,
    ) -> None:
        regfile = ctx.machine.file(rclass)
        vol_order = sorted(regfile.volatile, key=lambda reg: reg.index)
        nonvol_order = sorted(regfile.nonvolatile, key=lambda reg: reg.index)
        for node in reversed(stack):
            forbidden = forbidden_colors(graph, node, outcome.assignment)
            free_vol = [c for c in vol_order if c not in forbidden]
            free_nonvol = [c for c in nonvol_order if c not in forbidden]
            b_vol = benefit_vol.get(node, 0.0)
            b_nonvol = benefit_nonvol.get(node, 0.0)
            if node in forced_volatile:
                b_nonvol = min(b_nonvol, b_vol)

            want_nonvol = b_nonvol > b_vol
            pools = ([free_nonvol, free_vol] if want_nonvol
                     else [free_vol, free_nonvol])
            best_benefit = max(b_vol, b_nonvol)
            if best_benefit < 0.0 and not _contains_no_spill(graph, node):
                # Prefers memory over any register: actively spill.
                for member in graph.members_of(node):
                    if isinstance(member, VReg):
                        outcome.spilled.add(member)
                continue
            pool = pools[0] or pools[1]
            if not pool:
                raise AllocationError(
                    f"{self.name}: non-optimistic stack node {node} "
                    f"found no color"
                )
            color = self._biased_choice(graph, node, pool, outcome)
            outcome.assignment[node] = color

    def _biased_choice(self, graph: AllocGraph, node: VReg,
                       pool: list[PReg], outcome: RoundOutcome) -> PReg:
        for partner in sorted(graph.copy_related(node),
                              key=lambda r: str(r)):
            color = partner if isinstance(partner, PReg) \
                else outcome.assignment.get(partner)
            if color in pool:
                outcome.biased_hits += 1
                return color
        return pool[0]


def _contains_no_spill(graph: AllocGraph, node: VReg) -> bool:
    return any(
        isinstance(m, VReg) and m.no_spill for m in graph.members_of(node)
    )


def _liveness_after(ctx: RoundContext):
    from repro.analysis.liveness import instruction_liveness

    return instruction_liveness(ctx.func, ctx.liveness)
