"""Graph simplification: Chaitin-style and Briggs optimistic.

Simplification repeatedly removes a low-degree node (degree < K) and
pushes it on the stack.  When only significant-degree nodes remain:

* **Chaitin** removes the cheapest candidate *marking it spilled*; if the
  phase ends with spill marks, the round aborts to spill-code insertion
  (Figure 1(a): the ``select`` phase is only reached with a colorable
  stack).
* **Briggs optimistic** pushes the candidate anyway ("potential spill");
  the select phase may still find it a color (Figure 1(b)).

The spill candidate is chosen by minimum ``spill_cost / degree``, the
standard Chaitin metric, with the cost supplied by the caller (the paper
uses its Section 5.1 metric "for all algorithms").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.ir.values import VReg
from repro.profiling import phase
from repro.regalloc.igraph import AllocGraph

__all__ = ["SimplifyResult", "simplify", "choose_spill_candidate"]


@dataclass(eq=False)
class SimplifyResult:
    """Outcome of the simplify phase.

    ``stack`` holds nodes in *push order*: ``stack[0]`` was removed first
    and will be colored last.  ``optimistic`` flags the potential-spill
    pushes (Briggs); ``spilled`` holds Chaitin-mode definite spill marks.
    """

    stack: list[VReg] = field(default_factory=list)
    optimistic: set[VReg] = field(default_factory=set)
    spilled: set[VReg] = field(default_factory=set)

    @property
    def select_order(self) -> list[VReg]:
        """Nodes in coloring (pop) order."""
        return list(reversed(self.stack))


def choose_spill_candidate(graph: AllocGraph, nodes) -> VReg:
    """Minimum cost/degree node among ``nodes``."""
    best: VReg | None = None
    best_metric = float("inf")
    for node in nodes:
        degree = max(graph.degree(node), 1)
        metric = graph.spill_cost(node) / degree
        if best is None or metric < best_metric or (
            metric == best_metric
            and _tie_break(node) < _tie_break(best)
        ):
            best = node
            best_metric = metric
    if best is None:
        raise AllocationError("no spill candidate available")
    if best_metric == float("inf"):
        raise AllocationError(
            "all remaining nodes are no-spill temporaries; "
            "register pressure cannot be met"
        )
    return best


def _tie_break(node: VReg) -> tuple:
    return (node.id, node.name or "")


def simplify(graph: AllocGraph, optimistic: bool = True) -> SimplifyResult:
    """Run simplification over the active nodes of ``graph``.

    ``graph`` is mutated: all active nodes are removed.  Copy-related
    nodes are treated like any other (the aggressive-coalescing pipelines
    have coalesced before this phase; George–Appel iterated coalescing
    interleaves its own simplify loop and does not call this one).
    """
    result = SimplifyResult()
    with phase("simplify"):
        # Deterministic worklist: sort once, then maintain incrementally.
        while graph.active:
            low = [n for n in graph.active if not graph.significant(n)]
            if low:
                # Remove all currently-low-degree nodes in a deterministic
                # order; removing one can only lower other degrees, so
                # batch removal stays valid and is much faster than
                # re-scanning.
                for node in sorted(low, key=_tie_break):
                    if node in graph.active and not graph.significant(node):
                        graph.remove(node)
                        result.stack.append(node)
                continue
            candidate = choose_spill_candidate(graph, graph.active)
            graph.remove(candidate)
            if optimistic:
                result.stack.append(candidate)
                result.optimistic.add(candidate)
            else:
                result.spilled.add(candidate)
    return result
