"""Graph simplification: Chaitin-style and Briggs optimistic.

Simplification repeatedly removes a low-degree node (degree < K) and
pushes it on the stack.  When only significant-degree nodes remain:

* **Chaitin** removes the cheapest candidate *marking it spilled*; if the
  phase ends with spill marks, the round aborts to spill-code insertion
  (Figure 1(a): the ``select`` phase is only reached with a colorable
  stack).
* **Briggs optimistic** pushes the candidate anyway ("potential spill");
  the select phase may still find it a color (Figure 1(b)).

The spill candidate is chosen by minimum ``spill_cost / degree``, the
standard Chaitin metric, with the cost supplied by the caller (the paper
uses its Section 5.1 metric "for all algorithms").

Two engines produce the identical stack (same batches, same tie-break
keys, same spill picks):

* the **indexed** engine (default) drives a
  :class:`~repro.regalloc.worklist.DegreeWorklist` off the graph's
  degree-change hook, so each low-degree candidate is discovered in O(1)
  and each spill pick costs O(log n);
* the **scan** engine — the original implementation — rescans
  ``graph.active`` per batch and per pressure event, and is retained as
  the reference oracle.

``REPRO_SELECT_INDEX=0`` selects the scan engine; ``validate`` runs the
indexed engine while asserting every batch and every spill pick against
the oracle (see :func:`repro.regalloc.worklist.select_index_mode`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.ir.values import VReg
from repro.profiling import phase
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.worklist import DegreeWorklist, select_index_mode

__all__ = ["SimplifyResult", "simplify", "choose_spill_candidate"]


@dataclass(eq=False)
class SimplifyResult:
    """Outcome of the simplify phase.

    ``stack`` holds nodes in *push order*: ``stack[0]`` was removed first
    and will be colored last.  ``optimistic`` flags the potential-spill
    pushes (Briggs); ``spilled`` holds Chaitin-mode definite spill marks.
    """

    stack: list[VReg] = field(default_factory=list)
    optimistic: set[VReg] = field(default_factory=set)
    spilled: set[VReg] = field(default_factory=set)

    @property
    def select_order(self) -> list[VReg]:
        """Nodes in coloring (pop) order."""
        return list(reversed(self.stack))


def choose_spill_candidate(graph: AllocGraph, nodes) -> VReg:
    """Minimum cost/degree node among ``nodes`` (the scan oracle)."""
    best: VReg | None = None
    best_metric = float("inf")
    for node in nodes:
        degree = max(graph.degree(node), 1)
        metric = graph.spill_cost(node) / degree
        if best is None or metric < best_metric or (
            metric == best_metric
            and _tie_break(node) < _tie_break(best)
        ):
            best = node
            best_metric = metric
    if best is None:
        raise AllocationError("no spill candidate available")
    if best_metric == float("inf"):
        raise AllocationError(
            "all remaining nodes are no-spill temporaries; "
            "register pressure cannot be met"
        )
    return best


def _tie_break(node: VReg) -> tuple:
    return (node.id, node.name or "")


def simplify(graph: AllocGraph, optimistic: bool = True,
             index_mode: str | None = None) -> SimplifyResult:
    """Run simplification over the active nodes of ``graph``.

    ``graph`` is mutated: all active nodes are removed.  Copy-related
    nodes are treated like any other (the aggressive-coalescing pipelines
    have coalesced before this phase; George–Appel iterated coalescing
    interleaves its own simplify loop and does not call this one).

    ``index_mode`` overrides the ``REPRO_SELECT_INDEX`` environment
    setting (``"on"``/``"off"``/``"validate"``); every mode produces the
    byte-identical stack.
    """
    mode = select_index_mode() if index_mode is None else index_mode
    result = SimplifyResult()
    with phase("simplify"):
        if mode == "off":
            _simplify_scan(graph, optimistic, result)
        else:
            _simplify_indexed(graph, optimistic, result,
                              validate=(mode == "validate"))
    return result


def _simplify_scan(graph: AllocGraph, optimistic: bool,
                   result: SimplifyResult) -> None:
    """The original rescan-per-batch engine (reference oracle)."""
    while graph.active:
        low = [n for n in graph.active if not graph.significant(n)]
        if low:
            # Remove all currently-low-degree nodes in a deterministic
            # order; removing one can only lower other degrees, so
            # batch removal stays valid and is much faster than
            # re-scanning.
            for node in sorted(low, key=_tie_break):
                if node in graph.active and not graph.significant(node):
                    graph.remove(node)
                    result.stack.append(node)
            continue
        with phase("spill_pick"):
            candidate = choose_spill_candidate(graph, graph.active)
        graph.remove(candidate)
        if optimistic:
            result.stack.append(candidate)
            result.optimistic.add(candidate)
        else:
            result.spilled.add(candidate)


def _simplify_indexed(graph: AllocGraph, optimistic: bool,
                      result: SimplifyResult, validate: bool) -> None:
    """Worklist engine: low-degree buckets + lazy spill heap.

    Batch semantics match the scan engine exactly: a batch is "every
    active low-degree node, tie-break sorted", and nodes crossing below
    K *during* a batch are parked in the worklist's pending bucket for
    the next batch — which is precisely what the oracle's re-scan at the
    top of its loop observes, because a batch always removes all of its
    own members (degrees only fall, so no member can turn significant
    mid-batch).
    """
    with DegreeWorklist(graph, _tie_break) as worklist:
        while graph.active:
            batch = worklist.take_batch()
            if validate:
                _check_batch(graph, batch)
            if batch:
                for node in batch:
                    graph.remove(node)
                    result.stack.append(node)
                continue
            with phase("spill_pick"):
                if validate:
                    oracle = choose_spill_candidate(graph, graph.active)
                    candidate = worklist.pop_spill()
                    # Value equality, not identity: equal-but-distinct
                    # VReg instances occur under cached/unpickled
                    # analyses, and every index keys by eq/hash.
                    if candidate != oracle:
                        raise AllocationError(
                            f"select-index validation failed: spill heap "
                            f"picked {candidate}, scan oracle {oracle}"
                        )
                else:
                    candidate = worklist.pop_spill()
            graph.remove(candidate)
            if optimistic:
                result.stack.append(candidate)
                result.optimistic.add(candidate)
            else:
                result.spilled.add(candidate)


def _check_batch(graph: AllocGraph, batch: list[VReg]) -> None:
    """Validate-mode assertion: batch == the oracle's sorted low scan."""
    oracle = sorted(
        (n for n in graph.active if not graph.significant(n)),
        key=_tie_break,
    )
    if batch != oracle:
        raise AllocationError(
            f"select-index validation failed: low-degree batch "
            f"{[str(n) for n in batch]} != scan oracle "
            f"{[str(n) for n in oracle]}"
        )
