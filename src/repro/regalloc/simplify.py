"""Graph simplification: Chaitin-style and Briggs optimistic.

Simplification repeatedly removes a low-degree node (degree < K) and
pushes it on the stack.  When only significant-degree nodes remain:

* **Chaitin** removes the cheapest candidate *marking it spilled*; if the
  phase ends with spill marks, the round aborts to spill-code insertion
  (Figure 1(a): the ``select`` phase is only reached with a colorable
  stack).
* **Briggs optimistic** pushes the candidate anyway ("potential spill");
  the select phase may still find it a color (Figure 1(b)).

The spill candidate is chosen by minimum ``spill_cost / degree``, the
standard Chaitin metric, with the cost supplied by the caller (the paper
uses its Section 5.1 metric "for all algorithms").

Two engines produce the identical stack (same batches, same tie-break
keys, same spill picks):

* the **indexed** engine (default) drives a
  :class:`~repro.regalloc.worklist.DegreeWorklist` off the graph's
  degree-change hook, so each low-degree candidate is discovered in O(1)
  and each spill pick costs O(log n);
* the **scan** engine — the original implementation — rescans
  ``graph.active`` per batch and per pressure event, and is retained as
  the reference oracle.

``REPRO_SELECT_INDEX=0`` selects the scan engine; ``validate`` runs the
indexed engine while asserting every batch and every spill pick against
the oracle (see :func:`repro.regalloc.worklist.select_index_mode`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.ir.values import VReg
from repro.policy import DEFAULT_POLICY, Policy
from repro.profiling import phase
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.worklist import DegreeWorklist, select_index_mode

__all__ = ["SimplifyResult", "simplify", "choose_spill_candidate",
           "spill_metric_fn", "tie_break_fn"]


def spill_metric_fn(policy: Policy):
    """The spill-candidate scoring function under ``policy``.

    The default exponents (1.0, 1.0) return ``None`` so callers use the
    inlined historical ``cost / degree`` expression, keeping the
    arithmetic byte-identical.  Non-default policies get
    ``cost ** ce / max(degree, 1) ** de``.
    """
    ce = policy.spill_cost_exponent
    de = policy.spill_degree_exponent
    if ce == 1.0 and de == 1.0:
        return None

    def metric(graph: AllocGraph, node: VReg) -> float:
        cost = graph.spill_cost(node)
        if cost == float("inf"):
            return cost  # no-spill temporaries stay un-pickable
        return float(cost) ** ce / float(max(graph.degree(node), 1)) ** de

    return metric


def tie_break_fn(policy: Policy):
    """The deterministic tie-break key under ``policy``.

    The default order ``("id", "name")`` returns the module-level
    :func:`_tie_break` (the historical key) so indexed-engine heap
    entries compare identically to before.
    """
    if policy.spill_tie_break == ("id", "name"):
        return _tie_break
    order = policy.spill_tie_break

    def key(node: VReg) -> tuple:
        return tuple(
            node.id if field == "id" else (node.name or "")
            for field in order
        )

    return key


@dataclass(eq=False)
class SimplifyResult:
    """Outcome of the simplify phase.

    ``stack`` holds nodes in *push order*: ``stack[0]`` was removed first
    and will be colored last.  ``optimistic`` flags the potential-spill
    pushes (Briggs); ``spilled`` holds Chaitin-mode definite spill marks.
    """

    stack: list[VReg] = field(default_factory=list)
    optimistic: set[VReg] = field(default_factory=set)
    spilled: set[VReg] = field(default_factory=set)

    @property
    def select_order(self) -> list[VReg]:
        """Nodes in coloring (pop) order."""
        return list(reversed(self.stack))


def choose_spill_candidate(graph: AllocGraph, nodes,
                           policy: Policy = DEFAULT_POLICY) -> VReg:
    """Minimum-metric node among ``nodes`` (the scan oracle).

    The metric is Chaitin's ``spill_cost / degree`` under the default
    policy, generalized to policy exponents otherwise; ties break by
    the policy's field order (historically ``(id, name)``).
    """
    metric_of = spill_metric_fn(policy)
    tie_break = tie_break_fn(policy)
    best: VReg | None = None
    best_metric = float("inf")
    for node in nodes:
        if metric_of is None:
            metric = graph.spill_cost(node) / max(graph.degree(node), 1)
        else:
            metric = metric_of(graph, node)
        if best is None or metric < best_metric or (
            metric == best_metric
            and tie_break(node) < tie_break(best)
        ):
            best = node
            best_metric = metric
    if best is None:
        raise AllocationError("no spill candidate available")
    if best_metric == float("inf"):
        raise AllocationError(
            "all remaining nodes are no-spill temporaries; "
            "register pressure cannot be met"
        )
    return best


def _tie_break(node: VReg) -> tuple:
    return (node.id, node.name or "")


def simplify(graph: AllocGraph, optimistic: bool = True,
             index_mode: str | None = None,
             policy: Policy = DEFAULT_POLICY) -> SimplifyResult:
    """Run simplification over the active nodes of ``graph``.

    ``graph`` is mutated: all active nodes are removed.  Copy-related
    nodes are treated like any other (the aggressive-coalescing pipelines
    have coalesced before this phase; George–Appel iterated coalescing
    interleaves its own simplify loop and does not call this one).

    ``index_mode`` overrides the ``REPRO_SELECT_INDEX`` environment
    setting (``"on"``/``"off"``/``"validate"``); every mode produces the
    byte-identical stack.  ``policy`` parameterizes the spill metric and
    tie-break; the default reproduces the historical pick sequence
    exactly.
    """
    mode = select_index_mode() if index_mode is None else index_mode
    result = SimplifyResult()
    with phase("simplify"):
        if mode == "off":
            _simplify_scan(graph, optimistic, result, policy)
        else:
            _simplify_indexed(graph, optimistic, result,
                              validate=(mode == "validate"),
                              policy=policy)
    return result


def _simplify_scan(graph: AllocGraph, optimistic: bool,
                   result: SimplifyResult,
                   policy: Policy = DEFAULT_POLICY) -> None:
    """The original rescan-per-batch engine (reference oracle)."""
    tie_break = tie_break_fn(policy)
    while graph.active:
        low = [n for n in graph.active if not graph.significant(n)]
        if low:
            # Remove all currently-low-degree nodes in a deterministic
            # order; removing one can only lower other degrees, so
            # batch removal stays valid and is much faster than
            # re-scanning.
            for node in sorted(low, key=tie_break):
                if node in graph.active and not graph.significant(node):
                    graph.remove(node)
                    result.stack.append(node)
            continue
        with phase("spill_pick"):
            candidate = choose_spill_candidate(graph, graph.active, policy)
        graph.remove(candidate)
        if optimistic:
            result.stack.append(candidate)
            result.optimistic.add(candidate)
        else:
            result.spilled.add(candidate)


def _simplify_indexed(graph: AllocGraph, optimistic: bool,
                      result: SimplifyResult, validate: bool,
                      policy: Policy = DEFAULT_POLICY) -> None:
    """Worklist engine: low-degree buckets + lazy spill heap.

    Batch semantics match the scan engine exactly: a batch is "every
    active low-degree node, tie-break sorted", and nodes crossing below
    K *during* a batch are parked in the worklist's pending bucket for
    the next batch — which is precisely what the oracle's re-scan at the
    top of its loop observes, because a batch always removes all of its
    own members (degrees only fall, so no member can turn significant
    mid-batch).
    """
    with DegreeWorklist(graph, tie_break_fn(policy),
                        metric=spill_metric_fn(policy)) as worklist:
        while graph.active:
            batch = worklist.take_batch()
            if validate:
                _check_batch(graph, batch, policy)
            if batch:
                for node in batch:
                    graph.remove(node)
                    result.stack.append(node)
                continue
            with phase("spill_pick"):
                if validate:
                    oracle = choose_spill_candidate(graph, graph.active,
                                                    policy)
                    candidate = worklist.pop_spill()
                    # Value equality, not identity: equal-but-distinct
                    # VReg instances occur under cached/unpickled
                    # analyses, and every index keys by eq/hash.
                    if candidate != oracle:
                        raise AllocationError(
                            f"select-index validation failed: spill heap "
                            f"picked {candidate}, scan oracle {oracle}"
                        )
                else:
                    candidate = worklist.pop_spill()
            graph.remove(candidate)
            if optimistic:
                result.stack.append(candidate)
                result.optimistic.add(candidate)
            else:
                result.spilled.add(candidate)


def _check_batch(graph: AllocGraph, batch: list[VReg],
                 policy: Policy = DEFAULT_POLICY) -> None:
    """Validate-mode assertion: batch == the oracle's sorted low scan."""
    oracle = sorted(
        (n for n in graph.active if not graph.significant(n)),
        key=tie_break_fn(policy),
    )
    if batch != oracle:
        raise AllocationError(
            f"select-index validation failed: low-degree batch "
            f"{[str(n) for n in batch]} != scan oracle "
            f"{[str(n) for n in oracle]}"
        )
