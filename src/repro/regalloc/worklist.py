"""Priority indexes for the simplify -> CPG -> select decision loops.

PRs 1-4 made the analyses and the execution layer fast, which left the
allocator's own decision loops as the hot spot: ``simplify()`` rescanned
every active node per batch, ``choose_spill_candidate()`` rescanned all
actives on every pressure event, and the preference selector linearly
scanned its whole ready queue per pick.  This module holds the
incrementally maintained indexes that replace those scans:

* :class:`DegreeWorklist` — a bucketed low-degree worklist plus a lazy
  min-heap over the Chaitin ``spill_cost / degree`` metric, both fed by
  the :attr:`~repro.regalloc.igraph.AllocGraph.degree_listener` hook so
  candidates surface in O(1)/O(log n) instead of O(n) rescans;
* :class:`LazyMaxHeap` — a generation-stamped max-heap used by
  :class:`~repro.core.select.PreferenceSelector` for its ready queue.

Both are *lazy* structures: stale entries are left in the heap and
skipped at pop time.  Laziness cannot change any pick because every
entry carries the full deterministic tie-break key and a per-node
generation stamp — only the newest stamp for a node is ever accepted,
and the newest stamp's key equals the key the retained scan oracles
would compute at pick time (see DESIGN.md §5f for the invariant
argument).

The escape hatch mirrors the PR-3 incremental-rounds contract:
``REPRO_SELECT_INDEX=0`` (or ``off``/``false``/``no``) falls back to the
retained scan implementations, and ``REPRO_SELECT_INDEX=validate`` runs
both engines decision-by-decision, raising :class:`AllocationError` on
the first divergent pick.  The knob is strategy-only — outputs are
byte-identical in every mode — so it deliberately stays out of
``AllocationOptions`` and the service cache fingerprint.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.config import knob_env
from repro.errors import AllocationError
from repro.ir.values import VReg

__all__ = [
    "DegreeWorklist",
    "LazyMaxHeap",
    "parse_select_index",
    "select_index_mode",
]


def parse_select_index(raw: str) -> str:
    """Normalize a select-index setting to on/off/validate."""
    raw = str(raw).strip().lower()
    if raw in {"0", "off", "false", "no"}:
        return "off"
    if raw == "validate":
        return "validate"
    return "on"


def select_index_mode() -> str:
    """``"on"`` (default), ``"off"``, or ``"validate"``.

    Controlled by the ``REPRO_SELECT_INDEX`` environment variable; any
    of ``0``/``off``/``false``/``no`` selects the scan oracles and
    ``validate`` runs both engines with pick-for-pick assertions.
    Read through :func:`repro.config.knob_env` like every strategy knob.
    """
    return parse_select_index(knob_env("REPRO_SELECT_INDEX", "1"))


class DegreeWorklist:
    """Degree-indexed candidate structure over one ``AllocGraph``.

    Attach with :meth:`attach` *before* simplification starts removing
    nodes; every degree decrement then flows through :meth:`on_degree`:

    * a node crossing below K enters the *pending* low-degree bucket
      (each node crosses at most once — degrees only fall during
      simplification — so each node is tie-break sorted exactly once,
      when its batch is taken);
    * every change pushes a refreshed ``(cost/degree, tie_break)`` heap
      entry under a new generation stamp, keeping the newest entry's
      metric exactly current.

    :meth:`take_batch` reproduces the scan loop's batch semantics: the
    returned batch is precisely "all currently-low actives, tie-break
    sorted", because every previously pending node was removed by the
    batch that contained it and nodes becoming low mid-batch are parked
    for the next one.
    """

    __slots__ = ("graph", "tie_break", "metric", "_pending", "_heap",
                 "_gen")

    def __init__(self, graph, tie_break, metric=None) -> None:
        self.graph = graph
        self.tie_break = tie_break
        #: optional ``metric(graph, node) -> float`` override for the
        #: spill score; ``None`` keeps the inlined historical
        #: ``cost / degree`` (byte-identical heap entries).  A non-None
        #: metric comes from a non-default :class:`repro.policy.Policy`
        #: via :func:`repro.regalloc.simplify.spill_metric_fn`.
        self.metric = metric
        self._pending: list[VReg] = []
        self._heap: list[tuple] = []
        self._gen: dict[VReg, int] = {}
        for node in graph.active:
            if not graph.significant(node):
                self._pending.append(node)
            self._push(node)

    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Route the graph's degree notifications to this worklist."""
        if self.graph.degree_listener is not None:
            raise AllocationError("AllocGraph already has a degree listener")
        self.graph.degree_listener = self.on_degree

    def detach(self) -> None:
        self.graph.degree_listener = None

    def __enter__(self) -> "DegreeWorklist":
        self.attach()
        return self

    def __exit__(self, *exc) -> bool:
        self.detach()
        return False

    # ------------------------------------------------------------------

    def on_degree(self, node: VReg, degree: int) -> None:
        """Degree-change hook (see ``AllocGraph.degree_listener``)."""
        if degree == self.graph.k - 1:
            # The one possible low-degree crossing: simplification only
            # ever decrements, one edge at a time.
            self._pending.append(node)
        self._push(node)

    def _push(self, node: VReg) -> None:
        gen = self._gen.get(node, 0) + 1
        self._gen[node] = gen
        if self.metric is None:
            degree = max(self.graph.degree(node), 1)
            metric = self.graph.spill_cost(node) / degree
        else:
            metric = self.metric(self.graph, node)
        heappush(self._heap, (metric, self.tie_break(node), gen, node))

    # ------------------------------------------------------------------

    def take_batch(self) -> list[VReg]:
        """All pending low-degree nodes, tie-break sorted; clears pending."""
        if not self._pending:
            return []
        batch = sorted(self._pending, key=self.tie_break)
        self._pending.clear()
        return batch

    def pop_spill(self) -> VReg:
        """Minimum ``cost/degree`` active node (ties by ``tie_break``)."""
        heap = self._heap
        active = self.graph.active
        gen = self._gen
        while heap:
            metric, _tie, stamp, node = heappop(heap)
            if node not in active or gen.get(node) != stamp:
                continue  # stale: removed, or superseded by a refresh
            if metric == float("inf"):
                raise AllocationError(
                    "all remaining nodes are no-spill temporaries; "
                    "register pressure cannot be met"
                )
            return node
        raise AllocationError("no spill candidate available")


class LazyMaxHeap:
    """Generation-stamped max-heap over ``(node, key)`` entries.

    ``push`` supersedes any previous entry for the node; ``discard``
    drops membership without touching the heap; ``pop`` skips entries
    whose stamp is stale or whose node was discarded.  Keys must be
    totally ordered tuples that are unique per node (the callers embed
    ``node.id``), so heap order never falls through to comparing nodes.
    """

    __slots__ = ("_heap", "_gen", "_members")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._gen: dict[VReg, int] = {}
        self._members: set[VReg] = set()

    def __contains__(self, node: VReg) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._members)

    def push(self, node: VReg, key: tuple) -> None:
        """Insert or refresh ``node`` with a (max-order) ``key``."""
        gen = self._gen.get(node, 0) + 1
        self._gen[node] = gen
        self._members.add(node)
        heappush(self._heap, (tuple(-k for k in key), gen, node))

    def discard(self, node: VReg) -> None:
        self._members.discard(node)

    def pop(self) -> VReg:
        """Remove and return the max-key member."""
        heap = self._heap
        gen = self._gen
        members = self._members
        while heap:
            _key, stamp, node = heappop(heap)
            if node not in members or gen.get(node) != stamp:
                continue
            members.discard(node)
            return node
        raise AllocationError("pop from empty ready queue")
