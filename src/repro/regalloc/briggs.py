"""Briggs-style optimistic coloring with aggressive coalescing.

Figure 1(b): simplification never gives up — when only significant-degree
nodes remain, the cheapest is *optimistically* pushed ("potential spill")
and the select phase decides.  Biased coloring gives copy-related nodes a
chance at the same register even when coalescing didn't merge them.  This
is the "Briggs + aggressive" comparator of Figures 9 and 11, called the
second best approach in Park and Moon's study.
"""

from __future__ import annotations

from repro.ir.values import VReg
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.coalesce import coalesce_aggressive
from repro.regalloc.select import select
from repro.regalloc.simplify import simplify

__all__ = ["BriggsAllocator"]


class BriggsAllocator(Allocator):
    """Optimistic coloring + aggressive coalescing + biased select."""

    name = "briggs-aggressive"

    def __init__(self, color_policy: str = "nonvolatile_first",
                 biased: bool = True):
        self.color_policy = color_policy
        self.biased = biased

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            outcome.coalesced_count += coalesce_aggressive(graph)
            result = simplify(graph, optimistic=True,
                              policy=ctx.policy)
            outcome.alias.update(graph.alias)
            colored = select(
                graph,
                result.select_order,
                ctx.machine.file(rclass),
                policy=self.color_policy,
                optimistic_nodes=result.optimistic,
                biased=self.biased,
            )
            outcome.assignment.update(colored.assignment)
            outcome.biased_hits += colored.biased_hits
            for rep in colored.spilled:
                for member in graph.members_of(rep):
                    if isinstance(member, VReg):
                        outcome.spilled.add(member)
        return outcome
