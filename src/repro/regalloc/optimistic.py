"""Park & Moon's optimistic coalescing [7].

Figure 2(b): coalesce *aggressively* up front to harvest the positive
side of coalescing, then, when a coalesced node fails to get a color in
the select phase, *undo* the coalesce: split the node back into its
primitive members, color the most valuable colorable member now, and
push the remaining members to the bottom of the stack (colored after
everything else).  Members that still find no color at the bottom are
spilled individually.

Interference for split primitives comes from the round's original
(pre-coalesce) interference graph, which is immutable; colors of
coalesced representatives resolve through the live alias map.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.interference import InterferenceGraph
from repro.ir.values import PReg, Register, VReg
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.coalesce import coalesce_aggressive
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.select import order_colors
from repro.regalloc.simplify import simplify
from repro.target.machine import RegisterFile

__all__ = ["OptimisticCoalescingAllocator"]


class OptimisticCoalescingAllocator(Allocator):
    """Aggressive coalescing with undo-on-spill (Park–Moon)."""

    name = "optimistic-coalescing"

    def __init__(self, color_policy: str = "nonvolatile_first"):
        self.color_policy = color_policy

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            outcome.coalesced_count += coalesce_aggressive(graph)
            result = simplify(graph, optimistic=True,
                              policy=ctx.policy)
            self._select_with_undo(
                ctx.ig, graph, result.select_order, result.optimistic,
                ctx.machine.file(rclass), outcome,
            )
            outcome.alias.update(graph.alias)
        return outcome

    # ------------------------------------------------------------------

    def _select_with_undo(
        self,
        ig: InterferenceGraph,
        graph: AllocGraph,
        order: list[VReg],
        optimistic: set[VReg],
        regfile: RegisterFile,
        outcome: RoundOutcome,
    ) -> None:
        preference = order_colors(graph.colors, regfile, self.color_policy)
        assignment = outcome.assignment
        queue: deque[VReg] = deque(order)
        bottom: deque[VReg] = deque()  # undone primitives, colored last
        spilled_here: set[VReg] = set()

        def forbidden(node: VReg) -> set[PReg]:
            out: set[PReg] = set()
            for member in graph.members_of(node):
                for w in ig.neighbors(member):
                    rep = graph.find(w)
                    if isinstance(rep, PReg):
                        out.add(rep)
                    elif rep in assignment:
                        out.add(assignment[rep])
            return out

        def try_color(node: VReg) -> bool:
            available = [c for c in preference if c not in forbidden(node)]
            if not available:
                return False
            color = None
            for partner in sorted(graph.copy_related(node), key=_pkey):
                pcolor = partner if isinstance(partner, PReg) \
                    else assignment.get(partner)
                if pcolor in available:
                    color = pcolor
                    outcome.biased_hits += 1
                    break
            assignment[node] = color if color is not None else available[0]
            return True

        while queue or bottom:
            from_bottom = not queue
            node = queue.popleft() if queue else bottom.popleft()
            if try_color(node):
                continue
            members = {
                m for m in graph.members_of(node) if isinstance(m, VReg)
            }
            if len(members) > 1 and not from_bottom:
                # Undo the coalesce: members become primitives again.
                for m in members:
                    graph.alias.pop(m, None)
                    graph.members[m] = {m}
                # Color the costliest colorable member immediately; the
                # rest go to the bottom of the stack.
                colorable = [
                    m for m in sorted(
                        members,
                        key=lambda r: -graph.spill_costs.get(r, 0.0),
                    )
                    if [c for c in preference if c not in forbidden(m)]
                ]
                rest = set(members)
                if colorable:
                    first = colorable[0]
                    took = try_color(first)
                    assert took
                    rest.discard(first)
                bottom.extend(sorted(rest, key=lambda r: r.id))
                continue
            spilled_here.add(node)

        for node in spilled_here:
            for member in graph.members_of(node):
                if isinstance(member, VReg):
                    outcome.spilled.add(member)


def _pkey(reg: Register) -> tuple:
    return (0 if isinstance(reg, PReg) else 1,
            getattr(reg, "index", getattr(reg, "id", 0)))
