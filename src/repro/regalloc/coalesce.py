"""Coalescing strategies shared by the allocator variants.

* :func:`coalesce_aggressive` — Chaitin [2]: merge every copy-related,
  non-interfering pair, iterating to a fixed point.
* :func:`briggs_conservative_ok` — Briggs et al. [3]: merging is safe when
  the combined node has fewer than K significant-degree neighbors.
* :func:`george_ok` — George & Appel [6]: safe when every neighbor of one
  end either already interferes with the other end or is low-degree
  (the test that works with precolored nodes).

Merging into a physical register is allowed when the virtual end does not
interfere with it (dedicated-register coalescing, preference type 1); two
physical registers are never merged.
"""

from __future__ import annotations

from repro.ir.instructions import Move
from repro.ir.values import PReg, Register, VReg
from repro.regalloc.igraph import AllocGraph

__all__ = [
    "coalesce_aggressive",
    "coalesce_conservative",
    "briggs_conservative_ok",
    "george_ok",
    "conservative_ok",
    "mergeable",
    "merge_move",
]


def mergeable(graph: AllocGraph, a: Register, b: Register) -> bool:
    """Structurally allowed to merge (ignoring conservatism)."""
    a, b = graph.find(a), graph.find(b)
    if a == b:
        return False
    if isinstance(a, PReg) and isinstance(b, PReg):
        return False
    if a.rclass is not b.rclass:
        return False
    if graph.interferes(a, b):
        return False
    # Both ends must still be in the graph.
    for end in (a, b):
        if isinstance(end, VReg) and end not in graph.active:
            return False
    return True


def merge_move(graph: AllocGraph, mv: Move) -> Register | None:
    """Merge the endpoints of ``mv`` if allowed; returns the survivor."""
    a, b = graph.find(mv.dst), graph.find(mv.src)
    if not mergeable(graph, a, b):
        return None
    if isinstance(b, PReg):
        kept, gone = b, a
    else:
        kept, gone = a, b
    assert isinstance(gone, VReg)
    graph.merge(kept, gone)
    return kept


def coalesce_aggressive(graph: AllocGraph) -> int:
    """Chaitin-style aggressive coalescing to a fixed point."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for mv in graph.moves:
            if merge_move(graph, mv) is not None:
                merged += 1
                changed = True
    return merged


def briggs_conservative_ok(graph: AllocGraph, a: Register,
                           b: Register) -> bool:
    """Briggs test: merged node has < K significant-degree neighbors."""
    combined = graph.neighbors(a) | graph.neighbors(b)
    combined.discard(a)
    combined.discard(b)
    significant = 0
    for n in combined:
        degree = graph.degree(n)
        if n in graph.neighbors(a) and n in graph.neighbors(b) \
                and isinstance(n, VReg):
            degree -= 1  # the merge collapses two edges into one
        if degree >= graph.k:
            significant += 1
    return significant < graph.k


def george_ok(graph: AllocGraph, a: Register, b: Register) -> bool:
    """George test for merging ``a`` into ``b``.

    Safe when every neighbor t of ``a`` already interferes with ``b`` or
    has insignificant degree.  Used when ``b`` is precolored.
    """
    for t in graph.neighbors(a):
        if graph.degree(t) < graph.k:
            continue
        if graph.interferes(t, b):
            continue
        return False
    return True


def conservative_ok(graph: AllocGraph, a: Register, b: Register) -> bool:
    """Combined conservative test, choosing Briggs or George by shape."""
    if isinstance(a, PReg):
        return george_ok(graph, b, a)
    if isinstance(b, PReg):
        return george_ok(graph, a, b)
    return briggs_conservative_ok(graph, a, b)


def coalesce_conservative(graph: AllocGraph) -> int:
    """Fixed-point conservative coalescing (Briggs/George tests)."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for mv in graph.moves:
            a, b = graph.find(mv.dst), graph.find(mv.src)
            if not mergeable(graph, a, b):
                continue
            if not conservative_ok(graph, a, b):
                continue
            if merge_move(graph, mv) is not None:
                merged += 1
                changed = True
    return merged
