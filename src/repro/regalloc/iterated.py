"""George & Appel's iterated register coalescing [6].

Figure 2(a): simplification removes only *non-move-related* low-degree
nodes; when it blocks, conservative coalescing runs; when no move can be
conservatively coalesced, a low-degree move-related node is *frozen*
(its moves give up hope of coalescing and it becomes simplifiable);
when nothing can be frozen either, a spill candidate is optimistically
removed.  Select then colors with biased coloring, so frozen moves still
have a chance by luck.
"""

from __future__ import annotations

from repro.ir.instructions import Move
from repro.ir.values import VReg
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.coalesce import conservative_ok, merge_move, mergeable
from repro.regalloc.select import select
from repro.regalloc.simplify import SimplifyResult, choose_spill_candidate

__all__ = ["IteratedCoalescingAllocator"]


class IteratedCoalescingAllocator(Allocator):
    """Iterated (conservative) coalescing interleaved with simplify."""

    name = "iterated-coalescing"

    def __init__(self, color_policy: str = "nonvolatile_first"):
        self.color_policy = color_policy

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            frozen: set[Move] = set()
            result = SimplifyResult()

            def live_moves(node: VReg) -> list[Move]:
                out = []
                for mv in graph.moves_of.get(node, ()):
                    if mv in frozen:
                        continue
                    a, b = graph.find(mv.dst), graph.find(mv.src)
                    if a == b:
                        continue
                    out.append(mv)
                return out

            def move_related(node: VReg) -> bool:
                return bool(live_moves(node))

            while graph.active:
                # --- simplify: non-move-related low-degree nodes --------
                candidates = sorted(
                    (
                        n for n in graph.active
                        if not graph.significant(n) and not move_related(n)
                    ),
                    key=lambda r: r.id,
                )
                if candidates:
                    for node in candidates:
                        if node in graph.active and not graph.significant(
                            node
                        ) and not move_related(node):
                            graph.remove(node)
                            result.stack.append(node)
                    continue
                # --- coalesce: one conservative merge, then re-simplify --
                merged = False
                for mv in graph.moves:
                    if mv in frozen:
                        continue
                    a, b = graph.find(mv.dst), graph.find(mv.src)
                    if not mergeable(graph, a, b):
                        continue
                    if conservative_ok(graph, a, b):
                        if merge_move(graph, mv) is not None:
                            outcome.coalesced_count += 1
                            merged = True
                            break
                if merged:
                    continue
                # --- freeze: give up on one low-degree node's moves ------
                freezable = sorted(
                    (
                        n for n in graph.active
                        if not graph.significant(n) and move_related(n)
                    ),
                    key=lambda r: r.id,
                )
                if freezable:
                    frozen.update(live_moves(freezable[0]))
                    continue
                # --- potential spill -------------------------------------
                candidate = choose_spill_candidate(graph, graph.active,
                                                   ctx.policy)
                graph.remove(candidate)
                result.stack.append(candidate)
                result.optimistic.add(candidate)

            colored = select(
                graph,
                result.select_order,
                ctx.machine.file(rclass),
                policy=self.color_policy,
                optimistic_nodes=result.optimistic,
                biased=True,
            )
            outcome.assignment.update(colored.assignment)
            outcome.biased_hits += colored.biased_hits
            outcome.alias.update(graph.alias)
            for rep in colored.spilled:
                for member in graph.members_of(rep):
                    if isinstance(member, VReg):
                        outcome.spilled.add(member)
        return outcome
