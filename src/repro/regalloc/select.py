"""The select (color assignment) phase with biased coloring.

Colors are assigned in stack-pop order.  The register choice is:

1. any register forbidden by an already-colored neighbor is unavailable;
2. *biased coloring* (Briggs [3]): if a copy-related node already has an
   available color, take it — a deferred coalesce;
3. otherwise the first register in the policy order.  The paper's
   baseline policy (Section 6.2) "use non-volatile registers first, then
   volatile registers" is the default; ``volatile_first`` and plain
   ``index`` order are available for experiments.

Optimistically pushed nodes may find no color; they are returned in
``spilled`` and the driver inserts spill code and retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import AllocationError
from repro.ir.values import PReg, Register, VReg
from repro.profiling import phase
from repro.regalloc.igraph import AllocGraph
from repro.target.machine import RegisterFile

__all__ = ["SelectResult", "select", "order_colors", "order_colors_cached"]


@dataclass(eq=False)
class SelectResult:
    assignment: dict[VReg, PReg] = field(default_factory=dict)
    spilled: set[VReg] = field(default_factory=set)
    #: how many nodes took a copy-related color (deferred coalesces)
    biased_hits: int = 0


def order_colors(colors: Sequence[PReg], regfile: RegisterFile,
                 policy: str) -> list[PReg]:
    """Order the color set according to a selection policy."""
    by_index = sorted(colors, key=lambda r: r.index)
    if policy == "index":
        return by_index
    if policy == "nonvolatile_first":
        return (
            [r for r in by_index if not regfile.is_volatile(r)]
            + [r for r in by_index if regfile.is_volatile(r)]
        )
    if policy == "volatile_first":
        return (
            [r for r in by_index if regfile.is_volatile(r)]
            + [r for r in by_index if not regfile.is_volatile(r)]
        )
    raise AllocationError(f"unknown color policy {policy!r}")


#: (regfile, colors, policy) -> ordered colors.  Register files are
#: frozen dataclasses and color sets are tuples, so the key is stable;
#: the handful of (machine, policy) pairs a process ever sees makes the
#: cache effectively bounded.
_ORDER_CACHE: dict[tuple, tuple[PReg, ...]] = {}


def order_colors_cached(colors: Sequence[PReg], regfile: RegisterFile,
                        policy: str) -> tuple[PReg, ...]:
    """Memoized :func:`order_colors` (derived once per file and policy)."""
    key = (regfile, tuple(colors), policy)
    cached = _ORDER_CACHE.get(key)
    if cached is None:
        cached = _ORDER_CACHE[key] = tuple(
            order_colors(colors, regfile, policy)
        )
    return cached


def forbidden_colors(
    graph: AllocGraph,
    node: VReg,
    assignment: dict[VReg, PReg],
) -> set[PReg]:
    """Colors taken by (representatives of) already-colored neighbors."""
    out: set[PReg] = set()
    for n in graph.all_neighbors(node):
        rep = graph.find(n)
        if isinstance(rep, PReg):
            out.add(rep)
        elif rep in assignment:
            out.add(assignment[rep])
    return out


def select(
    graph: AllocGraph,
    order: Iterable[VReg],
    regfile: RegisterFile,
    policy: str = "nonvolatile_first",
    optimistic_nodes: set[VReg] | None = None,
    biased: bool = True,
) -> SelectResult:
    """Color ``order`` (pop order) over ``graph``."""
    optimistic_nodes = optimistic_nodes or set()
    result = SelectResult()
    preference_order = order_colors_cached(graph.colors, regfile, policy)

    with phase("select"):
        return _select_loop(graph, order, optimistic_nodes, biased,
                            preference_order, result)


def _select_loop(graph, order, optimistic_nodes, biased, preference_order,
                 result):
    for node in order:
        forbidden = forbidden_colors(graph, node, result.assignment)
        available = [c for c in preference_order if c not in forbidden]
        if not available:
            if node not in optimistic_nodes:
                raise AllocationError(
                    f"non-optimistic node {node} found no color; "
                    f"simplification invariant broken"
                )
            result.spilled.add(node)
            continue
        color = None
        if biased:
            for partner in sorted(graph.copy_related(node),
                                  key=_partner_key):
                partner_color = (
                    partner if isinstance(partner, PReg)
                    else result.assignment.get(partner)
                )
                if partner_color in available:
                    color = partner_color
                    result.biased_hits += 1
                    break
        if color is None:
            color = available[0]
        result.assignment[node] = color
    return result


def _partner_key(reg: Register) -> tuple:
    return (0 if isinstance(reg, PReg) else 1,
            getattr(reg, "index", getattr(reg, "id", 0)))
