"""Post-allocation verifier.

Checks an :class:`~repro.regalloc.base.AllocationResult` (or any rewritten
function) against the invariants an allocation must satisfy:

* no virtual registers remain anywhere in the code;
* no two simultaneously-live values share a physical register — checked
  by re-running liveness on the *rewritten* code and asserting that every
  register is defined before use along the block-local scan (a register
  carrying two live values would manifest as a def clobbering a live
  value that is still used later under the same name, which the
  rewritten-code liveness cannot express; the stronger check is done by
  the machine interpreter in :mod:`repro.sim`);
* spill slots are used consistently (every reload's slot was stored to
  on some path — approximated as: stored to somewhere in the function);
* byte loads / register-file membership: every register mentioned
  belongs to the target's file of its class.

The decisive semantic check — pre- vs. post-allocation interpreters
producing identical results — lives in the test suite, since it needs
input values.
"""

from __future__ import annotations

from repro.analysis.interference import build_interference
from repro.analysis.liveness import compute_liveness
from repro.cfg.analysis import build_cfg
from repro.errors import AllocationVerifyError
from repro.ir.function import Function
from repro.ir.instructions import SpillLoad, SpillStore
from repro.ir.values import PReg, VReg
from repro.profiling import phase
from repro.target.machine import TargetMachine

__all__ = ["verify_allocation", "verify_assignment_against_interference"]


def verify_allocation(func: Function, machine: TargetMachine) -> None:
    """Structural checks on fully-rewritten code."""
    stored_slots: set[int] = set()
    loaded_slots: set[int] = set()
    for blk in func.blocks:
        for instr in blk.instrs:
            for reg in list(instr.defs()) + list(instr.used_regs()):
                if isinstance(reg, VReg):
                    raise AllocationVerifyError(
                        f"{func.name}/{blk.label}: virtual register {reg} "
                        f"survived allocation in {instr}"
                    )
                assert isinstance(reg, PReg)
                regfile = machine.file(reg.rclass)
                if reg not in regfile.regs:
                    raise AllocationVerifyError(
                        f"{func.name}: register {reg} not in the "
                        f"{reg.rclass.value} file of {machine.name}"
                    )
            if isinstance(instr, SpillStore):
                stored_slots.add(instr.slot)
            elif isinstance(instr, SpillLoad):
                loaded_slots.add(instr.slot)
    orphans = loaded_slots - stored_slots
    if orphans:
        raise AllocationVerifyError(
            f"{func.name}: reloads from never-written slots {sorted(orphans)}"
        )


def verify_assignment_against_interference(
    func: Function,
    assignment: dict[VReg, PReg],
) -> None:
    """Check a vreg->preg map against the *pre-rewrite* function.

    Every pair of interfering virtual registers must get distinct
    registers, and a virtual register interfering with a physical one
    must avoid it.  Call on the function *before* the final rewrite.
    """
    with phase("verify"):
        ig = build_interference(func, None,
                                compute_liveness(func, build_cfg(func)))
    for node in ig.vregs():
        color = assignment.get(node)
        if color is None:
            raise AllocationVerifyError(f"{func.name}: {node} unassigned")
        for neighbor in ig.neighbors(node):
            if isinstance(neighbor, PReg):
                if neighbor == color:
                    raise AllocationVerifyError(
                        f"{func.name}: {node} assigned {color} but "
                        f"interferes with that register"
                    )
            else:
                other = assignment.get(neighbor)
                if other == color:
                    raise AllocationVerifyError(
                        f"{func.name}: interfering {node} and {neighbor} "
                        f"share {color}"
                    )
