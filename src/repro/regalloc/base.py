"""Allocator framework: round context, driver loop, stats, rewriting.

Every allocator variant (Chaitin, Briggs, iterated, optimistic,
call-cost, preference-directed) implements one *round*: given the current
function's interference structure, produce either a complete coloring or
a set of live ranges to spill.  The shared :func:`allocate_function`
driver runs rounds to a fixed point — renumber, analyze, color, and on
spills insert spill code and rebuild, exactly the loop of the paper's
Figures 1–3 and 8 — then rewrites the function onto physical registers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.analysis.interference import InterferenceGraph, build_interference
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.renumber import renumber
from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.instructions import Move, SpillLoad, SpillStore
from repro.ir.values import PReg, RegClass, Register, VReg
from repro.regalloc.costs import compute_spill_costs
from repro.regalloc.igraph import AllocGraph, build_alloc_graph
from repro.regalloc.spill import insert_spill_code
from repro.target.machine import TargetMachine

__all__ = [
    "RoundContext",
    "RoundOutcome",
    "RoundAnalyses",
    "Allocator",
    "AllocationStats",
    "AllocationResult",
    "allocate_function",
    "compute_round_analyses",
]


@dataclass(eq=False)
class RoundContext:
    """Everything an allocator may consult during one round."""

    func: Function
    machine: TargetMachine
    cfg: CFG
    loops: LoopInfo
    liveness: Liveness
    ig: InterferenceGraph
    spill_costs: dict[VReg, float]
    round_index: int

    def graph(self, rclass: RegClass) -> AllocGraph:
        """A fresh per-class coloring graph for this round."""
        return build_alloc_graph(self.ig, self.machine, rclass,
                                 self.spill_costs)

    def classes(self) -> list[RegClass]:
        """Register classes that actually occur in the function."""
        present = {v.rclass for v in self.ig.vregs()}
        return [rc for rc in (RegClass.INT, RegClass.FLOAT) if rc in present]


@dataclass(eq=False)
class RoundOutcome:
    """What one allocator round decided."""

    #: representative vreg -> color (per-class results merged)
    assignment: dict[VReg, PReg] = field(default_factory=dict)
    #: coalesce alias map: merged vreg -> survivor
    alias: dict[VReg, Register] = field(default_factory=dict)
    #: live ranges that must be spilled (empty means the round succeeded)
    spilled: set[VReg] = field(default_factory=set)
    coalesced_count: int = 0
    biased_hits: int = 0

    def resolve(self, reg: VReg) -> PReg:
        """Final color of any vreg through the alias chain."""
        node: Register = reg
        seen = 0
        while isinstance(node, VReg) and node in self.alias:
            node = self.alias[node]
            seen += 1
            if seen > len(self.alias) + 1:
                raise AllocationError("alias cycle")
        if isinstance(node, PReg):
            return node
        try:
            return self.assignment[node]
        except KeyError:
            raise AllocationError(f"no color for {reg} (rep {node})") from None


@dataclass(eq=False)
class RoundAnalyses:
    """The per-round analyses of a renumbered function, cacheable.

    Renumbering is deterministic, so the round-0 analyses of any clone of
    a prepared function are value-identical: the CFG and loop nest are
    register-free, and liveness, interference adjacency, and spill costs
    are keyed by (immutable, value-hashed) registers.  The one exception
    is the interference graph's *move list*, which holds the analyzed
    clone's instruction objects; :meth:`ig_for` substitutes the consuming
    clone's own ``Move`` instructions (consumers key frequency/liveness
    tables by ``id(instr)``).
    """

    cfg: CFG
    loops: LoopInfo
    liveness: Liveness
    ig: InterferenceGraph
    spill_costs: dict[VReg, float]

    def ig_for(self, func: Function) -> InterferenceGraph | None:
        """The cached graph rebased onto ``func``'s own move instructions.

        Returns None when ``func``'s moves do not match the analyzed
        clone's (deterministic renumbering makes that unreachable, but a
        None return lets the caller fall back to a fresh analysis rather
        than silently misattribute move costs).
        """
        moves = [
            instr
            for blk in func.blocks
            for instr in reversed(blk.instrs)
            if isinstance(instr, Move)
        ]
        ref = self.ig.moves
        if len(moves) != len(ref) or any(
            a.dst != b.dst or a.src != b.src for a, b in zip(moves, ref)
        ):
            return None
        # The adjacency dict is shared (read-only to every allocator);
        # the fresh instance keeps per-use caches (nodes_by_class) local.
        return InterferenceGraph(adjacency=self.ig.adjacency, moves=moves)


def compute_round_analyses(func: Function) -> RoundAnalyses:
    """Analyze one (already renumbered) function for an allocation round."""
    cfg = build_cfg(func)
    loops = compute_loops(cfg)
    liveness = compute_liveness(func, cfg)
    ig = build_interference(func, cfg, liveness)
    spill_costs = compute_spill_costs(func, loops, cfg)
    return RoundAnalyses(cfg=cfg, loops=loops, liveness=liveness, ig=ig,
                         spill_costs=spill_costs)


class Allocator(abc.ABC):
    """Interface implemented by each allocation algorithm."""

    #: short name used in benchmark tables
    name: str = "abstract"

    @abc.abstractmethod
    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        """Color the current function or nominate spills."""


@dataclass(eq=False)
class AllocationStats:
    """Counters the evaluation figures are built from."""

    allocator: str = ""
    rounds: int = 0
    #: move instructions present before allocation (static / weighted)
    moves_before: int = 0
    moves_before_weighted: float = 0.0
    #: moves whose ends got one register — deleted at rewrite
    moves_eliminated: int = 0
    moves_eliminated_weighted: float = 0.0
    #: spill instructions in the final code (static / weighted)
    spill_loads: int = 0
    spill_stores: int = 0
    spill_weighted: float = 0.0
    coalesced_count: int = 0
    biased_hits: int = 0
    spilled_webs: int = 0
    #: non-volatile registers the final code touches (callee-save cost)
    nonvolatile_used: dict[RegClass, int] = field(default_factory=dict)
    #: per-register-class splits (the paper reports mpegaudio/mtrt float
    #: results as separate "fp" rows)
    moves_before_class: dict[RegClass, int] = field(default_factory=dict)
    moves_eliminated_class: dict[RegClass, int] = field(default_factory=dict)
    spills_class: dict[RegClass, int] = field(default_factory=dict)

    def merge(self, other: "AllocationStats") -> None:
        """Accumulate another function's stats (module aggregation)."""
        self.rounds = max(self.rounds, other.rounds)
        self.moves_before += other.moves_before
        self.moves_before_weighted += other.moves_before_weighted
        self.moves_eliminated += other.moves_eliminated
        self.moves_eliminated_weighted += other.moves_eliminated_weighted
        self.spill_loads += other.spill_loads
        self.spill_stores += other.spill_stores
        self.spill_weighted += other.spill_weighted
        self.coalesced_count += other.coalesced_count
        self.biased_hits += other.biased_hits
        self.spilled_webs += other.spilled_webs
        for table, src in (
            (self.nonvolatile_used, other.nonvolatile_used),
            (self.moves_before_class, other.moves_before_class),
            (self.moves_eliminated_class, other.moves_eliminated_class),
            (self.spills_class, other.spills_class),
        ):
            for key, value in src.items():
                table[key] = table.get(key, 0) + value

    @property
    def spill_instructions(self) -> int:
        return self.spill_loads + self.spill_stores

    @property
    def moves_remaining(self) -> int:
        return self.moves_before - self.moves_eliminated


@dataclass(eq=False)
class AllocationResult:
    """Final allocation of one function."""

    func: Function
    machine: TargetMachine
    stats: AllocationStats
    #: final vreg -> preg mapping for the last round's names
    assignment: dict[VReg, PReg] = field(default_factory=dict)


def allocate_function(
    func: Function,
    machine: TargetMachine,
    allocator: Allocator,
    max_rounds: int = 64,
    rematerialize: bool = False,
    round0: RoundAnalyses | None = None,
) -> AllocationResult:
    """Run ``allocator`` on ``func`` to completion (in place).

    ``rematerialize=True`` re-emits single-constant spilled live ranges
    instead of storing/reloading them (Briggs-style rematerialization).

    ``round0`` supplies precomputed first-round analyses (from
    :func:`compute_round_analyses` on a renumbered clone of the same
    prepared function); spill rounds always re-analyze.
    """
    stats = AllocationStats(allocator=allocator.name)
    loops_for_count = compute_loops(build_cfg(func))
    stats.moves_before, stats.moves_before_weighted = _count_moves(
        func, loops_for_count, stats
    )

    outcome: RoundOutcome | None = None
    ctx: RoundContext | None = None
    for round_index in range(max_rounds):
        stats.rounds = round_index + 1
        renumber(func)
        analyses = None
        if round_index == 0 and round0 is not None:
            ig = round0.ig_for(func)
            if ig is not None:
                analyses = RoundAnalyses(
                    cfg=round0.cfg, loops=round0.loops,
                    liveness=round0.liveness, ig=ig,
                    spill_costs=round0.spill_costs,
                )
        if analyses is None:
            analyses = compute_round_analyses(func)
        ctx = RoundContext(
            func=func,
            machine=machine,
            cfg=analyses.cfg,
            loops=analyses.loops,
            liveness=analyses.liveness,
            ig=analyses.ig,
            spill_costs=analyses.spill_costs,
            round_index=round_index,
        )
        outcome = allocator.allocate_round(ctx)
        stats.coalesced_count += outcome.coalesced_count
        stats.biased_hits += outcome.biased_hits
        if not outcome.spilled:
            break
        stats.spilled_webs += len(outcome.spilled)
        insert_spill_code(func, outcome.spilled,
                          rematerialize=rematerialize)
    else:
        raise AllocationError(
            f"{allocator.name}: no fixed point after {max_rounds} rounds"
        )

    assert outcome is not None and ctx is not None
    assignment = _full_assignment(func, outcome)
    _rewrite(func, assignment, ctx.loops, machine, stats)
    return AllocationResult(
        func=func, machine=machine, stats=stats, assignment=assignment
    )


def _count_moves(func: Function, loops: LoopInfo,
                 stats: AllocationStats) -> tuple[int, float]:
    static, weighted = 0, 0.0
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        for instr in blk.instrs:
            if instr.is_move:
                static += 1
                weighted += freq
                rclass = instr.defs()[0].rclass
                stats.moves_before_class[rclass] = (
                    stats.moves_before_class.get(rclass, 0) + 1
                )
    return static, weighted


def _full_assignment(
    func: Function, outcome: RoundOutcome
) -> dict[VReg, PReg]:
    assignment: dict[VReg, PReg] = {}
    for v in func.vregs():
        assignment[v] = outcome.resolve(v)
    return assignment


def _rewrite(
    func: Function,
    assignment: dict[VReg, PReg],
    loops: LoopInfo,
    machine: TargetMachine,
    stats: AllocationStats,
) -> None:
    """Replace vregs with their colors; delete now-identity moves."""
    used: dict[RegClass, set[PReg]] = {}
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        kept = []
        for instr in blk.instrs:
            mapping: dict = {
                v: assignment[v]
                for v in set(instr.used_regs()) | set(instr.defs())
                if isinstance(v, VReg)
            }
            if mapping:
                instr.replace(mapping)
            if isinstance(instr, Move) and instr.dst == instr.src:
                stats.moves_eliminated += 1
                stats.moves_eliminated_weighted += freq
                rclass = instr.dst.rclass
                stats.moves_eliminated_class[rclass] = (
                    stats.moves_eliminated_class.get(rclass, 0) + 1
                )
                continue
            if isinstance(instr, (SpillLoad, SpillStore)):
                if isinstance(instr, SpillLoad):
                    stats.spill_loads += 1
                    rclass = instr.dst.rclass
                else:
                    stats.spill_stores += 1
                    rclass = instr.src.rclass
                stats.spill_weighted += freq
                stats.spills_class[rclass] = (
                    stats.spills_class.get(rclass, 0) + 1
                )
            for reg in list(instr.defs()) + list(instr.used_regs()):
                if isinstance(reg, PReg):
                    used.setdefault(reg.rclass, set()).add(reg)
            kept.append(instr)
        blk.instrs = kept
    for rclass, regs in used.items():
        regfile = machine.file(rclass)
        stats.nonvolatile_used[rclass] = sum(
            1 for r in regs if not regfile.is_volatile(r)
        )
