"""Allocator framework: round context, driver loop, stats, rewriting.

Every allocator variant (Chaitin, Briggs, iterated, optimistic,
call-cost, preference-directed) implements one *round*: given the current
function's interference structure, produce either a complete coloring or
a set of live ranges to spill.  The shared :func:`allocate_function`
driver runs rounds to a fixed point — renumber, analyze, color, and on
spills insert spill code and rebuild, exactly the loop of the paper's
Figures 1–3 and 8 — then rewrites the function onto physical registers.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field, replace

from repro.analysis.incremental import (
    apply_function_delta,
    apply_spill_delta,
    compare_analyses,
    parse_incremental,
)
from repro.analysis.interference import InterferenceGraph, build_interference
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.renumber import RenumberResult, renumber
from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.config import knob_env
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.instructions import Move, SpillLoad, SpillStore
from repro.ir.values import PReg, RegClass, Register, VReg
from repro.policy import DEFAULT_POLICY, Policy
from repro.profiling import phase
from repro.regalloc.costs import (
    compute_spill_costs,
    compute_spill_costs_by_block,
)
from repro.regalloc.igraph import AllocGraph, build_alloc_graph
from repro.regalloc.spill import SpillDelta, insert_spill_code
from repro.target.machine import TargetMachine

__all__ = [
    "AllocationOptions",
    "RoundContext",
    "RoundOutcome",
    "RoundAnalyses",
    "Allocator",
    "AllocationStats",
    "AllocationResult",
    "allocate_function",
    "compute_round_analyses",
]

_INCREMENTAL_MODES = ("on", "off", "validate")


@dataclass(frozen=True)
class AllocationOptions:
    """Every knob that shapes one allocation, in one immutable value.

    This is the single options surface of the public API: the driver
    (:func:`allocate_function`), the module fan-out
    (:func:`repro.pipeline.allocate_module`), the service scheduler, and
    the wire protocol all accept ``options=`` instead of the historical
    mix of keywords and environment variables.  The legacy keywords
    were removed in this API generation and now raise :class:`TypeError`
    with a migration hint.

    Fields that change *results* (``max_rounds``, ``rematerialize``,
    ``verify``, ``policy``) are part of the service cache fingerprint;
    the rest (``jobs``, ``reuse_analyses``, ``incremental``,
    ``deadline_ms``) are result-neutral execution policy — any
    combination of them yields byte-identical allocations.  A default
    ``policy`` is byte-identical to the historical constants and is
    *omitted* from both the wire form and the fingerprint, so existing
    traffic keeps its fingerprints (see :mod:`repro.policy`).

    ``deadline_ms`` is the per-function hard deadline enforced by the
    :mod:`repro.exec` worker pool: a worker running past it is killed
    and the job retried; exhausted retries surface as
    :class:`repro.exec.JobDeadlineError` so the service can degrade
    along its allocator ladder instead of stalling the queue.
    """

    max_rounds: int = 64
    rematerialize: bool = False
    verify: bool = True
    jobs: int = 1
    reuse_analyses: bool = True
    #: spill-round re-analysis: "on" patches through the spill delta,
    #: "off" rebuilds from scratch, "validate" runs both and raises on
    #: divergence.
    incremental: str = "on"
    #: edit-driven re-allocation (the session layer,
    #: :mod:`repro.service.session`): "on" patches retained analyses
    #: through the edit delta, "off" rebuilds every session from
    #: scratch, "validate" runs both paths and raises unless the
    #: results are byte-identical.
    incremental_edits: str = "on"
    deadline_ms: float | None = None
    #: service disk-cache directory (None = ~/.cache/repro); carried
    #: here so ``$REPRO_CACHE_DIR`` has exactly one reader, but not
    #: serialized onto the wire (it is server-local policy).
    cache_dir: str | None = None
    #: heuristic decision points (cost constants, spill scoring,
    #: selector key, degradation ladder) — see :mod:`repro.policy`.
    policy: Policy = DEFAULT_POLICY

    def __post_init__(self) -> None:
        if not isinstance(self.policy, Policy):
            raise ValueError(
                f"policy must be a repro.policy.Policy, "
                f"got {type(self.policy).__name__}"
            )
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.incremental not in _INCREMENTAL_MODES:
            raise ValueError(
                f"incremental must be one of {_INCREMENTAL_MODES}, "
                f"got {self.incremental!r}"
            )
        if self.incremental_edits not in _INCREMENTAL_MODES:
            raise ValueError(
                f"incremental_edits must be one of {_INCREMENTAL_MODES}, "
                f"got {self.incremental_edits!r}"
            )
        if self.deadline_ms is not None:
            if not isinstance(self.deadline_ms, (int, float)) or isinstance(
                self.deadline_ms, bool
            ):
                raise ValueError("deadline_ms must be a number or None")
            if self.deadline_ms < 0:
                raise ValueError("deadline_ms must be >= 0")

    @classmethod
    def from_env(cls, environ=None, **overrides) -> "AllocationOptions":
        """Defaults with the documented environment variables folded
        in: ``REPRO_INCREMENTAL_ROUNDS`` -> ``incremental``,
        ``REPRO_INCREMENTAL_EDITS`` -> ``incremental_edits``, and
        ``REPRO_CACHE_DIR`` -> ``cache_dir``.  Explicit ``overrides``
        win over all.  This is the *only* place the library reads
        those variables.
        """
        env = os.environ if environ is None else environ
        values = {
            "incremental": parse_incremental(
                knob_env("REPRO_INCREMENTAL_ROUNDS", "1", environ=env)
            ),
            "incremental_edits": parse_incremental(
                knob_env("REPRO_INCREMENTAL_EDITS", "1", environ=env)
            ),
            "cache_dir": env.get("REPRO_CACHE_DIR") or None,
        }
        values.update(overrides)
        return cls(**values)

    def replace(self, **changes) -> "AllocationOptions":
        return replace(self, **changes)

    #: fields serialized onto the service wire (cache_dir is local;
    #: a *default* policy is omitted so pre-policy clients and servers
    #: interoperate unchanged).
    WIRE_FIELDS = ("max_rounds", "rematerialize", "verify", "jobs",
                   "reuse_analyses", "incremental", "incremental_edits",
                   "deadline_ms", "policy")

    def to_dict(self) -> dict:
        """JSON-safe wire form (``deadline_ms: None`` and the default
        ``policy`` are omitted)."""
        wire = {name: getattr(self, name) for name in self.WIRE_FIELDS}
        if wire["deadline_ms"] is None:
            del wire["deadline_ms"]
        if self.policy.is_default():
            del wire["policy"]
        else:
            wire["policy"] = self.policy.to_dict()
        return wire

    @classmethod
    def from_dict(cls, wire: dict) -> "AllocationOptions":
        if not isinstance(wire, dict):
            raise ValueError(f"options must be an object, got {wire!r}")
        unknown = set(wire) - set(cls.WIRE_FIELDS)
        if unknown:
            raise ValueError(f"unknown option field(s) {sorted(unknown)}")
        values = dict(wire)
        if "policy" in values:
            values["policy"] = Policy.from_dict(values["policy"])
        return cls(**values)


def _resolve_options(options: AllocationOptions | None,
                     **legacy) -> AllocationOptions:
    """Reject removed legacy keywords; resolve ``None`` to env defaults.

    The pre-``AllocationOptions`` keywords went through a
    :class:`DeprecationWarning` cycle and are now hard errors with a
    migration hint (the keyword parameters are retained in the public
    signatures so callers get this message rather than an opaque
    ``unexpected keyword argument``).
    """
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if supplied:
        hint = ", ".join(f"{k}=..." for k in sorted(supplied))
        raise TypeError(
            f"the legacy keyword(s) {sorted(supplied)} were removed; "
            f"pass options=AllocationOptions({hint}) instead"
        )
    if options is None:
        options = AllocationOptions.from_env()
    return options


@dataclass(eq=False)
class RoundContext:
    """Everything an allocator may consult during one round."""

    func: Function
    machine: TargetMachine
    cfg: CFG
    loops: LoopInfo
    liveness: Liveness
    ig: InterferenceGraph
    spill_costs: dict[VReg, float]
    round_index: int
    #: heuristic knobs for this allocation (defaults are byte-identical
    #: to the historical constants) — allocators read cost constants,
    #: spill scoring, and selector weights from here.
    policy: Policy = DEFAULT_POLICY

    def graph(self, rclass: RegClass) -> AllocGraph:
        """A fresh per-class coloring graph for this round."""
        return build_alloc_graph(self.ig, self.machine, rclass,
                                 self.spill_costs)

    def classes(self) -> list[RegClass]:
        """Register classes that actually occur in the function."""
        present = {v.rclass for v in self.ig.vregs()}
        return [rc for rc in (RegClass.INT, RegClass.FLOAT) if rc in present]


@dataclass(eq=False)
class RoundOutcome:
    """What one allocator round decided."""

    #: representative vreg -> color (per-class results merged)
    assignment: dict[VReg, PReg] = field(default_factory=dict)
    #: coalesce alias map: merged vreg -> survivor
    alias: dict[VReg, Register] = field(default_factory=dict)
    #: live ranges that must be spilled (empty means the round succeeded)
    spilled: set[VReg] = field(default_factory=set)
    coalesced_count: int = 0
    biased_hits: int = 0

    def resolve(self, reg: VReg) -> PReg:
        """Final color of any vreg through the alias chain."""
        node: Register = reg
        seen = 0
        while isinstance(node, VReg) and node in self.alias:
            node = self.alias[node]
            seen += 1
            if seen > len(self.alias) + 1:
                raise AllocationError("alias cycle")
        if isinstance(node, PReg):
            return node
        try:
            return self.assignment[node]
        except KeyError:
            raise AllocationError(f"no color for {reg} (rep {node})") from None


@dataclass(eq=False)
class RoundAnalyses:
    """The per-round analyses of a renumbered function, cacheable.

    Renumbering is deterministic, so the round-0 analyses of any clone of
    a prepared function are value-identical: the CFG and loop nest are
    register-free, and liveness, interference adjacency, and spill costs
    are keyed by (immutable, value-hashed) registers.  The one exception
    is the interference graph's *move list*, which holds the analyzed
    clone's instruction objects; :meth:`ig_for` substitutes the consuming
    clone's own ``Move`` instructions (consumers key frequency/liveness
    tables by ``id(instr)``).
    """

    cfg: CFG
    loops: LoopInfo
    liveness: Liveness
    ig: InterferenceGraph
    spill_costs: dict[VReg, float]
    #: per-block one-sided interference rows / cost contributions, kept
    #: when incremental spill rounds are enabled so the next round can
    #: patch instead of rebuild (None when computed without collection)
    block_rows: dict[str, dict[int, int]] | None = None
    block_costs: dict[str, dict[VReg, float]] | None = None
    #: the policy the spill costs were computed under; cached analyses
    #: are only valid for requests carrying the same policy, and the
    #: incremental patchers recompute touched-block costs with it.
    policy: Policy = DEFAULT_POLICY

    def apply_delta(
        self,
        func: Function,
        delta: SpillDelta,
        renumbering: RenumberResult,
    ) -> "RoundAnalyses | None":
        """These analyses patched through one spill round of ``func``.

        ``func`` must already be spill-rewritten and renumbered.  The
        CFG and loop nest are reused outright (spill code is
        branch-free); liveness, interference, and spill costs are
        patched from the touched blocks.  Returns ``None`` when a
        patch precondition fails — the caller falls back to
        :func:`compute_round_analyses`.
        """
        patched = apply_spill_delta(func, self, delta, renumbering)
        if patched is None:
            return None
        return RoundAnalyses(
            cfg=self.cfg, loops=self.loops, liveness=patched.liveness,
            ig=patched.ig, spill_costs=patched.spill_costs,
            block_rows=patched.block_rows, block_costs=patched.block_costs,
            policy=self.policy,
        )

    def apply_edit_delta(self, func: Function,
                         fdelta) -> "RoundAnalyses | None":
        """These analyses patched through a source-edit delta.

        ``func`` is the new version of the analyzed function, already
        prepared and renumbered; ``fdelta`` a renumbered-mode
        :class:`~repro.ir.diff.FunctionDelta` of the analyzed function
        against ``func``.  The CFG and loop nest carry over unless the
        edit changed the edge set, in which case the patcher rebuilt
        them.  Returns ``None`` when a patch precondition fails or the
        delta touches too much of the function — the caller falls back
        to :func:`compute_round_analyses`.
        """
        patched = apply_function_delta(func, self, fdelta)
        if patched is None:
            return None
        return RoundAnalyses(
            cfg=patched.cfg if patched.cfg is not None else self.cfg,
            loops=patched.loops if patched.loops is not None else self.loops,
            liveness=patched.liveness, ig=patched.ig,
            spill_costs=patched.spill_costs,
            block_rows=patched.block_rows, block_costs=patched.block_costs,
            policy=self.policy,
        )

    def ig_for(self, func: Function) -> InterferenceGraph | None:
        """The cached graph rebased onto ``func``'s own move instructions.

        Returns None when ``func``'s moves do not match the analyzed
        clone's (deterministic renumbering makes that unreachable, but a
        None return lets the caller fall back to a fresh analysis rather
        than silently misattribute move costs).
        """
        moves = [
            instr
            for blk in func.blocks
            for instr in reversed(blk.instrs)
            if isinstance(instr, Move)
        ]
        ref = self.ig.moves
        if len(moves) != len(ref) or any(
            a.dst != b.dst or a.src != b.src for a, b in zip(moves, ref)
        ):
            return None
        # The backing store is shared (read-only to every allocator) in
        # whichever form the cached graph has — bitmask rows when the
        # adjacency was never materialized, the dict otherwise; the
        # fresh instance keeps per-use caches (nodes_by_class) local.
        ig = self.ig
        if ig.materialized:
            return InterferenceGraph(adjacency=ig.adjacency, moves=moves)
        return InterferenceGraph(moves=moves, index=ig.index, rows=ig.rows)


def compute_round_analyses(
    func: Function, collect_deltas: bool = False,
    policy: Policy = DEFAULT_POLICY,
) -> RoundAnalyses:
    """Analyze one (already renumbered) function for an allocation round.

    ``collect_deltas=True`` additionally retains the per-block summaries
    (interference rows, cost contributions) that let a later spill round
    patch these analyses via :meth:`RoundAnalyses.apply_delta`.
    ``policy`` parameterizes the spill-cost weighting; the default is
    byte-identical to the historical constants.
    """
    with phase("cfg"):
        cfg = build_cfg(func)
        loops = compute_loops(cfg)
    with phase("liveness"):
        liveness = compute_liveness(func, cfg)
    with phase("interference"):
        ig = build_interference(func, cfg, liveness,
                                collect_block_rows=collect_deltas)
    with phase("spill-costs"):
        if collect_deltas:
            spill_costs, block_costs = compute_spill_costs_by_block(
                func, loops, cfg, policy
            )
        else:
            spill_costs = compute_spill_costs(func, loops, cfg, policy)
            block_costs = None
    return RoundAnalyses(cfg=cfg, loops=loops, liveness=liveness, ig=ig,
                         spill_costs=spill_costs, block_rows=ig.block_rows,
                         block_costs=block_costs, policy=policy)


class Allocator(abc.ABC):
    """Interface implemented by each allocation algorithm."""

    #: short name used in benchmark tables
    name: str = "abstract"

    @abc.abstractmethod
    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        """Color the current function or nominate spills."""


@dataclass(eq=False)
class AllocationStats:
    """Counters the evaluation figures are built from."""

    allocator: str = ""
    rounds: int = 0
    #: move instructions present before allocation (static / weighted)
    moves_before: int = 0
    moves_before_weighted: float = 0.0
    #: moves whose ends got one register — deleted at rewrite
    moves_eliminated: int = 0
    moves_eliminated_weighted: float = 0.0
    #: spill instructions in the final code (static / weighted)
    spill_loads: int = 0
    spill_stores: int = 0
    spill_weighted: float = 0.0
    coalesced_count: int = 0
    biased_hits: int = 0
    spilled_webs: int = 0
    #: non-volatile registers the final code touches (callee-save cost)
    nonvolatile_used: dict[RegClass, int] = field(default_factory=dict)
    #: per-register-class splits (the paper reports mpegaudio/mtrt float
    #: results as separate "fp" rows)
    moves_before_class: dict[RegClass, int] = field(default_factory=dict)
    moves_eliminated_class: dict[RegClass, int] = field(default_factory=dict)
    spills_class: dict[RegClass, int] = field(default_factory=dict)

    def merge(self, other: "AllocationStats") -> None:
        """Accumulate another function's stats (module aggregation)."""
        self.rounds = max(self.rounds, other.rounds)
        self.moves_before += other.moves_before
        self.moves_before_weighted += other.moves_before_weighted
        self.moves_eliminated += other.moves_eliminated
        self.moves_eliminated_weighted += other.moves_eliminated_weighted
        self.spill_loads += other.spill_loads
        self.spill_stores += other.spill_stores
        self.spill_weighted += other.spill_weighted
        self.coalesced_count += other.coalesced_count
        self.biased_hits += other.biased_hits
        self.spilled_webs += other.spilled_webs
        for table, src in (
            (self.nonvolatile_used, other.nonvolatile_used),
            (self.moves_before_class, other.moves_before_class),
            (self.moves_eliminated_class, other.moves_eliminated_class),
            (self.spills_class, other.spills_class),
        ):
            for key, value in src.items():
                table[key] = table.get(key, 0) + value

    @property
    def spill_instructions(self) -> int:
        return self.spill_loads + self.spill_stores

    @property
    def moves_remaining(self) -> int:
        return self.moves_before - self.moves_eliminated


@dataclass(eq=False)
class AllocationResult:
    """Final allocation of one function."""

    func: Function
    machine: TargetMachine
    stats: AllocationStats
    #: final vreg -> preg mapping for the last round's names
    assignment: dict[VReg, PReg] = field(default_factory=dict)


def allocate_function(
    func: Function,
    machine: TargetMachine,
    allocator: Allocator,
    options: AllocationOptions | None = None,
    *,
    round0: RoundAnalyses | None = None,
    assume_renumbered: bool = False,
    max_rounds: int | None = None,
    rematerialize: bool | None = None,
) -> AllocationResult:
    """Run ``allocator`` on ``func`` to completion (in place).

    ``options`` carries every knob (see :class:`AllocationOptions`);
    when omitted it is built by :meth:`AllocationOptions.from_env`.  The
    bare ``max_rounds``/``rematerialize`` keywords were removed — passing
    them raises :class:`TypeError` with a migration hint.

    ``options.rematerialize`` re-emits single-constant spilled live
    ranges instead of storing/reloading them (Briggs-style
    rematerialization).

    ``round0`` supplies precomputed first-round analyses (from
    :func:`compute_round_analyses` on a renumbered clone of the same
    prepared function).  Spill rounds patch the previous round's
    analyses through the spill delta when possible
    (:meth:`RoundAnalyses.apply_delta`), falling back to a from-scratch
    re-analysis; ``options.incremental="off"`` forces the fallback and
    ``"validate"`` runs both paths, raising on any divergence.

    ``assume_renumbered=True`` skips the round-0 renumber: the caller
    vouches that ``func`` is already in renumbered form (a clone of —
    or value-identical to — the function ``round0`` analyzed).  The
    session layer uses this to keep a patched clone's names aligned
    with its retained analyses; spill rounds still renumber normally.
    """
    options = _resolve_options(
        options, max_rounds=max_rounds, rematerialize=rematerialize
    )
    max_rounds = options.max_rounds
    rematerialize = options.rematerialize
    policy = options.policy
    stats = AllocationStats(allocator=allocator.name)
    # The move-count loop nest is the same one round 0 will use; reuse
    # the cached copy instead of re-deriving CFG + loops when available.
    if round0 is not None:
        loops_for_count = round0.loops
    else:
        loops_for_count = compute_loops(build_cfg(func))
    stats.moves_before, stats.moves_before_weighted = _count_moves(
        func, loops_for_count, stats
    )

    inc_mode = options.incremental
    collect = inc_mode != "off"
    outcome: RoundOutcome | None = None
    ctx: RoundContext | None = None
    prev_analyses: RoundAnalyses | None = None
    delta: SpillDelta | None = None
    for round_index in range(max_rounds):
        stats.rounds = round_index + 1
        if round_index == 0 and assume_renumbered:
            ren = None  # only consumed by spill rounds, which renumber
        else:
            with phase("renumber"):
                # The CFG never changes across spill rounds; hand the
                # previous round's to renumber so it skips a rebuild.
                ren = renumber(
                    func,
                    cfg=prev_analyses.cfg
                    if prev_analyses is not None else None,
                )
        analyses = None
        if round_index == 0 and round0 is not None:
            # Retained analyses are only valid under the policy whose
            # spill costs they carry; a mismatch falls back to a fresh
            # (policy-correct) analysis below.
            ig = round0.ig_for(func) if round0.policy == policy else None
            if ig is not None:
                analyses = RoundAnalyses(
                    cfg=round0.cfg, loops=round0.loops,
                    liveness=round0.liveness, ig=ig,
                    spill_costs=round0.spill_costs,
                    block_rows=round0.block_rows,
                    block_costs=round0.block_costs,
                    policy=round0.policy,
                )
        if (analyses is None and delta is not None
                and prev_analyses is not None and inc_mode != "off"):
            with phase("reanalyze"):
                analyses = prev_analyses.apply_delta(func, delta, ren)
            if inc_mode == "validate":
                fresh = compute_round_analyses(func, collect_deltas=True,
                                               policy=policy)
                if analyses is not None:
                    problems = compare_analyses(analyses, fresh)
                    if problems:
                        raise AllocationError(
                            "incremental round analyses diverged: "
                            + "; ".join(problems)
                        )
                else:
                    analyses = fresh
        if analyses is None:
            with phase("analyze" if round_index == 0 else "reanalyze"):
                analyses = compute_round_analyses(
                    func, collect_deltas=collect, policy=policy
                )
        ctx = RoundContext(
            func=func,
            machine=machine,
            cfg=analyses.cfg,
            loops=analyses.loops,
            liveness=analyses.liveness,
            ig=analyses.ig,
            spill_costs=analyses.spill_costs,
            round_index=round_index,
            policy=policy,
        )
        with phase("color"):
            outcome = allocator.allocate_round(ctx)
        stats.coalesced_count += outcome.coalesced_count
        stats.biased_hits += outcome.biased_hits
        if not outcome.spilled:
            break
        stats.spilled_webs += len(outcome.spilled)
        with phase("spill-insert"):
            report = insert_spill_code(func, outcome.spilled,
                                       rematerialize=rematerialize)
        delta = report.delta
        prev_analyses = analyses
    else:
        raise AllocationError(
            f"{allocator.name}: no fixed point after {max_rounds} rounds"
        )

    assert outcome is not None and ctx is not None
    with phase("rewrite"):
        assignment = _full_assignment(func, outcome)
        _rewrite(func, assignment, ctx.loops, machine, stats)
    return AllocationResult(
        func=func, machine=machine, stats=stats, assignment=assignment
    )


def _count_moves(func: Function, loops: LoopInfo,
                 stats: AllocationStats) -> tuple[int, float]:
    static, weighted = 0, 0.0
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        for instr in blk.instrs:
            if instr.is_move:
                static += 1
                weighted += freq
                rclass = instr.defs()[0].rclass
                stats.moves_before_class[rclass] = (
                    stats.moves_before_class.get(rclass, 0) + 1
                )
    return static, weighted


def _full_assignment(
    func: Function, outcome: RoundOutcome
) -> dict[VReg, PReg]:
    assignment: dict[VReg, PReg] = {}
    for v in func.vregs():
        assignment[v] = outcome.resolve(v)
    return assignment


def _rewrite(
    func: Function,
    assignment: dict[VReg, PReg],
    loops: LoopInfo,
    machine: TargetMachine,
    stats: AllocationStats,
) -> None:
    """Replace vregs with their colors; delete now-identity moves."""
    used: dict[RegClass, set[PReg]] = {}
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        kept = []
        for instr in blk.instrs:
            mapping: dict = {
                v: assignment[v]
                for v in set(instr.used_regs()) | set(instr.defs())
                if isinstance(v, VReg)
            }
            if mapping:
                instr.replace(mapping)
            if isinstance(instr, Move) and instr.dst == instr.src:
                stats.moves_eliminated += 1
                stats.moves_eliminated_weighted += freq
                rclass = instr.dst.rclass
                stats.moves_eliminated_class[rclass] = (
                    stats.moves_eliminated_class.get(rclass, 0) + 1
                )
                continue
            if isinstance(instr, (SpillLoad, SpillStore)):
                if isinstance(instr, SpillLoad):
                    stats.spill_loads += 1
                    rclass = instr.dst.rclass
                else:
                    stats.spill_stores += 1
                    rclass = instr.src.rclass
                stats.spill_weighted += freq
                stats.spills_class[rclass] = (
                    stats.spills_class.get(rclass, 0) + 1
                )
            for reg in list(instr.defs()) + list(instr.used_regs()):
                if isinstance(reg, PReg):
                    used.setdefault(reg.rclass, set()).add(reg)
            kept.append(instr)
        blk.instrs = kept
    for rclass, regs in used.items():
        regfile = machine.file(rclass)
        stats.nonvolatile_used[rclass] = sum(
            1 for r in regs if not regfile.is_volatile(r)
        )
