"""Baseline spill-cost metric shared by every allocator.

The paper's appendix:

    Spill_Cost(V) = sum(Load_Cost(Using(V))  * Freq_Fact(Using(V)))
                  + sum(Store_Cost(Defining(V)) * Freq_Fact(Defining(V)))

with ``Load_Cost = 2`` and ``Store_Cost = 1`` per instruction, and
``Freq_Fact`` from loop analysis.  "For all algorithms, we used the same
heuristics based on the metric in Section 5.1 to decide the spill
candidate" — so this module is used by the baselines and by the
preference-directed allocator alike (the latter adds the preference
strengths on top, in :mod:`repro.core.costs`).

The constants are the *defaults* of :class:`repro.policy.Policy`
(``spill_load_cost`` / ``spill_store_cost`` / ``loop_depth_exponent``);
a non-default policy re-weights the metric.  The default policy takes
the exact historical arithmetic — same int constants, untouched
frequencies — so results stay byte-identical.
"""

from __future__ import annotations

from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.policy import DEFAULT_POLICY, Policy

__all__ = ["LOAD_COST", "STORE_COST", "compute_spill_costs",
           "block_spill_costs", "compute_spill_costs_by_block"]

#: Appendix: Load_Cost(I) is 2, Store_Cost(I) is 1.  These remain the
#: canonical defaults mirrored by ``Policy.spill_load_cost`` /
#: ``Policy.spill_store_cost``.
LOAD_COST = 2
STORE_COST = 1


def _effective_freq(freq, exponent: float):
    """Spill-weighting frequency: ``freq ** exponent``.

    ``exponent == 1.0`` (the default) returns ``freq`` untouched —
    preserving its int-ness and therefore byte-identical totals.  The
    exponent applies to spill-cost *weighting* only; cycle estimation
    elsewhere always uses the raw frequency.
    """
    if exponent == 1.0:
        return freq
    return float(freq) ** exponent


def compute_spill_costs(
    func: Function,
    loops: LoopInfo | None = None,
    cfg: CFG | None = None,
    policy: Policy = DEFAULT_POLICY,
) -> dict[VReg, float]:
    """Frequency-weighted spill cost of every virtual register."""
    if cfg is None:
        cfg = build_cfg(func)
    if loops is None:
        loops = compute_loops(cfg)
    load_cost = policy.spill_load_cost
    store_cost = policy.spill_store_cost
    exponent = policy.loop_depth_exponent
    costs: dict[VReg, float] = {}
    for blk in func.blocks:
        freq = _effective_freq(loops.freq(blk.label), exponent)
        for instr in blk.instrs:
            for u in instr.uses():
                if isinstance(u, VReg):
                    costs[u] = costs.get(u, 0.0) + load_cost * freq
            for d in instr.defs():
                if isinstance(d, VReg):
                    costs[d] = costs.get(d, 0.0) + store_cost * freq
    for param in func.params:
        if isinstance(param, VReg):
            costs.setdefault(param, 0.0)
    return costs


def block_spill_costs(block, freq: float,
                      policy: Policy = DEFAULT_POLICY) -> dict[VReg, float]:
    """One block's frequency-weighted contribution to the spill costs."""
    load_cost = policy.spill_load_cost
    store_cost = policy.spill_store_cost
    freq = _effective_freq(freq, policy.loop_depth_exponent)
    costs: dict[VReg, float] = {}
    for instr in block.instrs:
        for u in instr.uses():
            if isinstance(u, VReg):
                costs[u] = costs.get(u, 0.0) + load_cost * freq
        for d in instr.defs():
            if isinstance(d, VReg):
                costs[d] = costs.get(d, 0.0) + store_cost * freq
    return costs


def compute_spill_costs_by_block(
    func: Function,
    loops: LoopInfo | None = None,
    cfg: CFG | None = None,
    policy: Policy = DEFAULT_POLICY,
) -> tuple[dict[VReg, float], dict[str, dict[VReg, float]]]:
    """Spill costs plus the per-block contribution tables they sum from.

    The totals equal :func:`compute_spill_costs` exactly: every term is
    an integer-valued float (loop frequencies are powers of ten), so the
    two summation orders cannot disagree.  The per-block tables feed
    incremental spill-round re-analysis, which re-derives only the
    blocks spill insertion touched.
    """
    if cfg is None:
        cfg = build_cfg(func)
    if loops is None:
        loops = compute_loops(cfg)
    totals: dict[VReg, float] = {}
    per_block: dict[str, dict[VReg, float]] = {}
    for blk in func.blocks:
        local = block_spill_costs(blk, loops.freq(blk.label), policy)
        per_block[blk.label] = local
        for v, c in local.items():
            totals[v] = totals.get(v, 0.0) + c
    for param in func.params:
        if isinstance(param, VReg):
            totals.setdefault(param, 0.0)
    return totals, per_block
