"""Baseline spill-cost metric shared by every allocator.

The paper's appendix:

    Spill_Cost(V) = sum(Load_Cost(Using(V))  * Freq_Fact(Using(V)))
                  + sum(Store_Cost(Defining(V)) * Freq_Fact(Defining(V)))

with ``Load_Cost = 2`` and ``Store_Cost = 1`` per instruction, and
``Freq_Fact`` from loop analysis.  "For all algorithms, we used the same
heuristics based on the metric in Section 5.1 to decide the spill
candidate" — so this module is used by the baselines and by the
preference-directed allocator alike (the latter adds the preference
strengths on top, in :mod:`repro.core.costs`).
"""

from __future__ import annotations

from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.ir.function import Function
from repro.ir.values import VReg

__all__ = ["LOAD_COST", "STORE_COST", "compute_spill_costs",
           "block_spill_costs", "compute_spill_costs_by_block"]

#: Appendix: Load_Cost(I) is 2, Store_Cost(I) is 1.
LOAD_COST = 2
STORE_COST = 1


def compute_spill_costs(
    func: Function,
    loops: LoopInfo | None = None,
    cfg: CFG | None = None,
) -> dict[VReg, float]:
    """Frequency-weighted spill cost of every virtual register."""
    if cfg is None:
        cfg = build_cfg(func)
    if loops is None:
        loops = compute_loops(cfg)
    costs: dict[VReg, float] = {}
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        for instr in blk.instrs:
            for u in instr.uses():
                if isinstance(u, VReg):
                    costs[u] = costs.get(u, 0.0) + LOAD_COST * freq
            for d in instr.defs():
                if isinstance(d, VReg):
                    costs[d] = costs.get(d, 0.0) + STORE_COST * freq
    for param in func.params:
        if isinstance(param, VReg):
            costs.setdefault(param, 0.0)
    return costs


def block_spill_costs(block, freq: float) -> dict[VReg, float]:
    """One block's frequency-weighted contribution to the spill costs."""
    costs: dict[VReg, float] = {}
    for instr in block.instrs:
        for u in instr.uses():
            if isinstance(u, VReg):
                costs[u] = costs.get(u, 0.0) + LOAD_COST * freq
        for d in instr.defs():
            if isinstance(d, VReg):
                costs[d] = costs.get(d, 0.0) + STORE_COST * freq
    return costs


def compute_spill_costs_by_block(
    func: Function,
    loops: LoopInfo | None = None,
    cfg: CFG | None = None,
) -> tuple[dict[VReg, float], dict[str, dict[VReg, float]]]:
    """Spill costs plus the per-block contribution tables they sum from.

    The totals equal :func:`compute_spill_costs` exactly: every term is
    an integer-valued float (loop frequencies are powers of ten), so the
    two summation orders cannot disagree.  The per-block tables feed
    incremental spill-round re-analysis, which re-derives only the
    blocks spill insertion touched.
    """
    if cfg is None:
        cfg = build_cfg(func)
    if loops is None:
        loops = compute_loops(cfg)
    totals: dict[VReg, float] = {}
    per_block: dict[str, dict[VReg, float]] = {}
    for blk in func.blocks:
        local = block_spill_costs(blk, loops.freq(blk.label))
        per_block[blk.label] = local
        for v, c in local.items():
            totals[v] = totals.get(v, 0.0) + c
    for param in func.params:
        if isinstance(param, VReg):
            totals.setdefault(param, 0.0)
    return totals, per_block
