"""Baseline spill-cost metric shared by every allocator.

The paper's appendix:

    Spill_Cost(V) = sum(Load_Cost(Using(V))  * Freq_Fact(Using(V)))
                  + sum(Store_Cost(Defining(V)) * Freq_Fact(Defining(V)))

with ``Load_Cost = 2`` and ``Store_Cost = 1`` per instruction, and
``Freq_Fact`` from loop analysis.  "For all algorithms, we used the same
heuristics based on the metric in Section 5.1 to decide the spill
candidate" — so this module is used by the baselines and by the
preference-directed allocator alike (the latter adds the preference
strengths on top, in :mod:`repro.core.costs`).
"""

from __future__ import annotations

from repro.cfg.analysis import CFG, build_cfg
from repro.cfg.loops import LoopInfo, compute_loops
from repro.ir.function import Function
from repro.ir.values import VReg

__all__ = ["LOAD_COST", "STORE_COST", "compute_spill_costs"]

#: Appendix: Load_Cost(I) is 2, Store_Cost(I) is 1.
LOAD_COST = 2
STORE_COST = 1


def compute_spill_costs(
    func: Function,
    loops: LoopInfo | None = None,
    cfg: CFG | None = None,
) -> dict[VReg, float]:
    """Frequency-weighted spill cost of every virtual register."""
    if cfg is None:
        cfg = build_cfg(func)
    if loops is None:
        loops = compute_loops(cfg)
    costs: dict[VReg, float] = {}
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        for instr in blk.instrs:
            for u in instr.uses():
                if isinstance(u, VReg):
                    costs[u] = costs.get(u, 0.0) + LOAD_COST * freq
            for d in instr.defs():
                if isinstance(d, VReg):
                    costs[d] = costs.get(d, 0.0) + STORE_COST * freq
    for param in func.params:
        if isinstance(param, VReg):
            costs.setdefault(param, 0.0)
    return costs
