"""Chaitin's allocator with aggressive coalescing — the paper's baseline.

Figure 1(a): renumber → build → coalesce (aggressive) → simplify →
spill code → select.  Simplification is *pessimistic*: when only
significant-degree nodes remain one is marked spilled outright, and a
round that marks any spill goes straight to spill-code insertion without
coloring.  This is the "base algorithm" every ratio in Figure 9 is
normalized to.
"""

from __future__ import annotations

from repro.ir.values import VReg
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.coalesce import coalesce_aggressive
from repro.regalloc.select import select
from repro.regalloc.simplify import simplify

__all__ = ["ChaitinAllocator"]


class ChaitinAllocator(Allocator):
    """Chaitin-style coloring with aggressive coalescing."""

    name = "chaitin-aggressive"

    def __init__(self, color_policy: str = "nonvolatile_first",
                 biased: bool = False):
        self.color_policy = color_policy
        self.biased = biased

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        pending: list[tuple] = []
        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            outcome.coalesced_count += coalesce_aggressive(graph)
            result = simplify(graph, optimistic=False,
                              policy=ctx.policy)
            outcome.alias.update(graph.alias)
            if result.spilled:
                # Spill the *entire* coalesced range of each marked node.
                for rep in result.spilled:
                    for member in graph.members_of(rep):
                        if isinstance(member, VReg):
                            outcome.spilled.add(member)
            pending.append((graph, result, rclass))
        if outcome.spilled:
            return outcome
        for graph, result, rclass in pending:
            colored = select(
                graph,
                result.select_order,
                ctx.machine.file(rclass),
                policy=self.color_policy,
                optimistic_nodes=set(),
                biased=self.biased,
            )
            outcome.assignment.update(colored.assignment)
            outcome.biased_hits += colored.biased_hits
        return outcome
