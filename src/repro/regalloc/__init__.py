"""Register-allocation machinery and the baseline allocators.

The shared pieces (coloring graph, simplify, coalesce, select, spill,
driver) implement the Chaitin-family infrastructure; the allocator
classes are the paper's comparators:

* :class:`ChaitinAllocator` — the base algorithm of Figure 9's ratios,
* :class:`BriggsAllocator` — optimistic coloring + aggressive coalescing,
* :class:`IteratedCoalescingAllocator` — George & Appel,
* :class:`OptimisticCoalescingAllocator` — Park & Moon,
* :class:`CallCostAllocator` — the "aggressive+volatility" configuration
  of Lueh & Gross used in Figure 11,
* :class:`PriorityAllocator` — Chow & Hennessy's priority-based coloring,
  the Section 7 related-work contrast (no figure uses it).

The paper's own algorithm lives in :mod:`repro.core`.
"""

from repro.regalloc.base import (
    AllocationOptions,
    AllocationResult,
    AllocationStats,
    Allocator,
    RoundContext,
    RoundOutcome,
    allocate_function,
)
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.callcost import CallCostAllocator
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.coalesce import (
    briggs_conservative_ok,
    coalesce_aggressive,
    coalesce_conservative,
    conservative_ok,
    george_ok,
)
from repro.regalloc.costs import compute_spill_costs
from repro.regalloc.igraph import AllocGraph, build_alloc_graph
from repro.regalloc.iterated import IteratedCoalescingAllocator
from repro.regalloc.optimistic import OptimisticCoalescingAllocator
from repro.regalloc.priority import PriorityAllocator
from repro.regalloc.select import SelectResult, select
from repro.regalloc.simplify import SimplifyResult, simplify
from repro.regalloc.spill import SpillReport, insert_spill_code
from repro.regalloc.verify import (
    verify_allocation,
    verify_assignment_against_interference,
)

__all__ = [
    "Allocator",
    "AllocationOptions",
    "AllocationResult",
    "AllocationStats",
    "RoundContext",
    "RoundOutcome",
    "allocate_function",
    "ChaitinAllocator",
    "BriggsAllocator",
    "IteratedCoalescingAllocator",
    "OptimisticCoalescingAllocator",
    "CallCostAllocator",
    "PriorityAllocator",
    "AllocGraph",
    "build_alloc_graph",
    "SimplifyResult",
    "simplify",
    "SelectResult",
    "select",
    "SpillReport",
    "insert_spill_code",
    "compute_spill_costs",
    "coalesce_aggressive",
    "coalesce_conservative",
    "briggs_conservative_ok",
    "george_ok",
    "conservative_ok",
    "verify_allocation",
    "verify_assignment_against_interference",
]
