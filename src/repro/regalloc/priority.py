"""Chow & Hennessy's priority-based coloring [4] — the Section 7 contrast.

The paper positions its contribution against the *other* classical
coloring family: "the former [Chaitin] favors packing live ranges while
the latter favors allocating more live ranges with higher priority
though that may use more colors."  This implementation follows that
characterization:

* live ranges with degree < K are *unconstrained* — they can always be
  colored, so they wait until the end;
* constrained live ranges are colored in **priority order** — highest
  first — where priority is the classic savings-per-size measure:
  frequency-weighted spill cost divided by the live range's footprint;
* a constrained range that finds no free color is spilled (the original
  splits; Chaitin-style spilling keeps the framework comparable);
* color choice prefers registers already used by the function (priority
  allocation famously spreads across more registers; reusing first keeps
  the comparison honest while preserving the ordering policy under
  study).

Included for completeness of the paper's landscape; no figure uses it,
but the CLI, the speed bench, and the test suite exercise it alongside
the Chaitin-family allocators.
"""

from __future__ import annotations

from repro.ir.values import PReg, VReg
from repro.regalloc.base import Allocator, RoundContext, RoundOutcome
from repro.regalloc.igraph import AllocGraph
from repro.regalloc.select import forbidden_colors, order_colors

__all__ = ["PriorityAllocator"]


class PriorityAllocator(Allocator):
    """Priority-based coloring (Chow–Hennessy style)."""

    name = "priority-based"

    def __init__(self, color_policy: str = "nonvolatile_first"):
        self.color_policy = color_policy

    def allocate_round(self, ctx: RoundContext) -> RoundOutcome:
        outcome = RoundOutcome()
        sizes = _live_range_sizes(ctx)
        for rclass in ctx.classes():
            graph = ctx.graph(rclass)
            self._color_class(ctx, graph, rclass, sizes, outcome)
        return outcome

    # ------------------------------------------------------------------

    def _color_class(self, ctx, graph: AllocGraph, rclass, sizes,
                     outcome: RoundOutcome) -> None:
        regfile = ctx.machine.file(rclass)
        preference = order_colors(graph.colors, regfile, self.color_policy)

        def priority(node: VReg) -> float:
            return ctx.spill_costs.get(node, 0.0) / max(sizes.get(node, 1),
                                                        1)

        constrained = sorted(
            (n for n in graph.active if graph.significant(n)),
            key=lambda n: (-priority(n), n.id),
        )
        unconstrained = sorted(
            (n for n in graph.active if not graph.significant(n)),
            key=lambda n: n.id,
        )

        used: set[PReg] = set()
        for node in constrained + unconstrained:
            forbidden = forbidden_colors(graph, node, outcome.assignment)
            free = [c for c in preference if c not in forbidden]
            if not free:
                if node.no_spill or not graph.significant(node):
                    # Unconstrained nodes are colorable by definition;
                    # running out here means interference with colors
                    # assigned to higher-priority neighbors — spill the
                    # cheapest spillable thing, which is this node unless
                    # it is a reload temp (then give up on a neighbor).
                    spill_target = _cheapest_neighbor(ctx, graph, node,
                                                      outcome)
                    outcome.assignment.pop(spill_target, None)
                    outcome.spilled.add(spill_target)
                    free = [
                        c for c in preference
                        if c not in forbidden_colors(graph, node,
                                                     outcome.assignment)
                    ]
                    if not free:
                        outcome.spilled.add(node)
                        continue
                else:
                    outcome.spilled.add(node)
                    continue
            # Prefer re-using registers already handed out: priority
            # coloring's tendency to use many colors is costly on
            # stacked register files (the paper's IA-64 remark).
            color = next((c for c in free if c in used), free[0])
            used.add(color)
            outcome.assignment[node] = color


def _cheapest_neighbor(ctx, graph: AllocGraph, node: VReg,
                       outcome: RoundOutcome) -> VReg:
    candidates = [
        n for n in graph.all_neighbors(node)
        if isinstance(n, VReg) and n in outcome.assignment
        and not n.no_spill
    ]
    if not candidates:
        return node
    return min(candidates,
               key=lambda n: (ctx.spill_costs.get(n, 0.0), n.id))


def _live_range_sizes(ctx) -> dict[VReg, int]:
    """Footprint of each live range: instructions where it is live."""
    from repro.analysis.liveness import instruction_liveness

    after = instruction_liveness(ctx.func, ctx.liveness)
    sizes: dict[VReg, int] = {}
    for live in after.values():
        for reg in live:
            if isinstance(reg, VReg):
                sizes[reg] = sizes.get(reg, 0) + 1
    return sizes
