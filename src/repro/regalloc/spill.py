"""Spill-code insertion: live-range splitting around defs and uses.

Chaitin's scheme: for a spilled live range, "spill out the value after its
definitions and spill in before its uses".  Each reload/store goes through
a fresh ``no_spill`` temporary so the residual live ranges are one
instruction long and can never be chosen for spilling again (guaranteeing
termination of the build→color→spill loop).

With ``rematerialize=True`` a spilled live range whose every definition
materializes one identical constant is *rematerialized* instead (Briggs
et al. [3], the technique whose protection motivated conservative
coalescing): uses re-emit the constant and no slot is allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.instructions import ConstInst, Instruction, SpillLoad, SpillStore
from repro.ir.values import VReg

__all__ = ["SpillDelta", "SpillReport", "insert_spill_code",
           "rematerializable_values"]


@dataclass(eq=False)
class SpillDelta:
    """The footprint of one spill-insertion pass, for incremental analysis.

    Spill code never adds blocks or edges, so this delta plus the
    pre-spill analyses determine the post-spill analyses
    (:mod:`repro.analysis.incremental`).

    ``deleted_vregs`` holds every spilled or rematerialized live range:
    their *old* (whole-function) live ranges are gone.  A spilled
    parameter is listed even though the register itself survives — its
    only remaining occurrence is the entry store, inside a touched block,
    so treating the old range as deleted and rediscovering the residue
    from the touched blocks is exact.
    """

    #: labels of blocks whose instruction list was rewritten
    touched_blocks: set[str] = field(default_factory=set)
    #: spilled/rematerialized live ranges whose old range disappeared
    deleted_vregs: set[VReg] = field(default_factory=set)
    #: fresh ``no_spill`` temporaries (all block-local by construction)
    new_vregs: set[VReg] = field(default_factory=set)


@dataclass(eq=False)
class SpillReport:
    """What spill insertion did in one round."""

    slots: dict[VReg, int] = field(default_factory=dict)
    loads_inserted: int = 0
    stores_inserted: int = 0
    #: spilled live ranges turned into constant re-emissions instead
    rematerialized: dict[VReg, object] = field(default_factory=dict)
    #: which blocks/registers changed (consumed by incremental re-analysis)
    delta: SpillDelta = field(default_factory=SpillDelta)


def rematerializable_values(func: Function,
                            spilled: set[VReg]) -> dict[VReg, object]:
    """Spilled vregs whose every def is ``ConstInst`` of one value."""
    values: dict[VReg, object] = {}
    blocked: set[VReg] = set(func.params)
    for _, instr in func.instructions():
        for d in instr.defs():
            if not isinstance(d, VReg) or d not in spilled:
                continue
            if isinstance(instr, ConstInst) and (
                d not in values or values[d] == instr.value
            ):
                values.setdefault(d, instr.value)
            else:
                blocked.add(d)
    return {v: val for v, val in values.items()
            if v not in blocked and v in spilled}


def insert_spill_code(func: Function, spilled: set[VReg],
                      rematerialize: bool = False) -> SpillReport:
    """Split every live range in ``spilled``; rewrites ``func`` in place."""
    report = SpillReport()
    if rematerialize:
        report.rematerialized = rematerializable_values(func, spilled)
        spilled = spilled - set(report.rematerialized)
    for v in sorted(spilled, key=lambda r: r.id):
        report.slots[v] = func.new_slot()

    remat = report.rematerialized
    delta = report.delta
    delta.deleted_vregs = set(report.slots) | set(remat)
    for blk in func.blocks:
        rewritten: list[Instruction] = []
        changed = False
        for instr in blk.instrs:
            # A def of a rematerialized constant disappears outright.
            if isinstance(instr, ConstInst) and instr.dst in remat:
                changed = True
                continue
            used = [u for u in instr.used_regs()
                    if isinstance(u, VReg)
                    and (u in report.slots or u in remat)]
            defined = [d for d in instr.defs()
                       if isinstance(d, VReg) and d in report.slots]
            use_map = {}
            for v in _unique(used):
                tmp = func.new_vreg(v.rclass, name=_tmp_name(v, "r"),
                                    no_spill=True)
                delta.new_vregs.add(tmp)
                if v in remat:
                    rewritten.append(ConstInst(tmp, remat[v]))
                else:
                    rewritten.append(SpillLoad(tmp, report.slots[v]))
                    report.loads_inserted += 1
                use_map[v] = tmp
            if use_map:
                instr.replace_uses(use_map)
                changed = True
            rewritten.append(instr)
            for v in _unique(defined):
                tmp = func.new_vreg(v.rclass, name=_tmp_name(v, "s"),
                                    no_spill=True)
                delta.new_vregs.add(tmp)
                instr.replace_defs({v: tmp})
                rewritten.append(SpillStore(report.slots[v], tmp))
                report.stores_inserted += 1
                changed = True
        blk.instrs = rewritten
        if changed:
            delta.touched_blocks.add(blk.label)

    # Parameters are defined implicitly at entry; store their incoming
    # value so reloads see it.  Inserted after the rewrite so the store
    # reads the parameter register itself, not a reload.  (Lowered
    # functions define parameters via explicit entry moves instead, so
    # this only fires pre-lowering.)
    entry_stores: list[Instruction] = []
    for param in func.params:
        if param in report.slots:
            entry_stores.append(SpillStore(report.slots[param], param))
            report.stores_inserted += 1
    if entry_stores:
        func.entry.instrs[0:0] = entry_stores
        delta.touched_blocks.add(func.entry.label)
    return report


def _unique(regs: list[VReg]) -> list[VReg]:
    seen: set[VReg] = set()
    out: list[VReg] = []
    for r in regs:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out


def _tmp_name(v: VReg, kind: str) -> str:
    base = v.name or f"{v.rclass.prefix()}{v.id}"
    return f"{base}.{kind}"
