"""Benchmark profiles emulating the structural character of SPECjvm98.

The paper evaluates on SPECjvm98 (compress, jess, db, javac, mpegaudio,
mtrt, jack; the *check* test is conventionally omitted and we omit it
too).  We cannot run Java bytecode, but every conclusion in Figures 9–11
rests on structural features of the compiled methods — call frequency,
loop depth, copy density, register pressure, paired-load density, byte
operations, float share — and those features are what a profile pins
down.  The values below follow the tests' documented characters:

* **compress** — LZW compression: deep counted loops over byte data,
  very few calls (the paper singles out compress and mpegaudio as the
  least call-sensitive tests);
* **jess** — expert system: short methods, very frequent calls,
  branchy;
* **db** — in-memory database: call-frequent comparison loops;
* **javac** — the compiler: large, branchy, high-pressure methods with
  many calls;
* **mpegaudio** — decoder: numeric float kernels, deep loops, many
  consecutive loads (paired-load opportunities), few calls;
* **mtrt** — raytracer: float-heavy with moderate calls;
* **jack** — parser generator: call-heavy, branchy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchmarkProfile", "SPEC_PROFILES", "BENCHMARK_NAMES"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Knobs controlling the synthetic program generator."""

    name: str
    #: functions per generated module
    n_functions: int = 10
    #: top-level statement budget per function (pre-expansion)
    stmts: int = 28
    #: number of integer / float values kept live (register pressure)
    int_pool: int = 14
    float_pool: int = 0
    #: probability a statement is a call
    call_prob: float = 0.10
    #: probability a statement opens an if-diamond / a counted loop
    branch_prob: float = 0.12
    loop_prob: float = 0.12
    #: maximum loop nesting
    max_loop_depth: int = 2
    #: probability a statement is an explicit register copy
    copy_prob: float = 0.08
    #: probability a load statement is a fusible consecutive pair
    paired_prob: float = 0.25
    #: probability an integer load is a byte load
    byte_prob: float = 0.0
    #: probability a statement is a load / a store
    load_prob: float = 0.18
    store_prob: float = 0.06
    #: function parameter count range
    min_params: int = 1
    max_params: int = 4
    #: maximum arguments passed at a call site
    max_call_args: int = 4


SPEC_PROFILES: dict[str, BenchmarkProfile] = {
    "compress": BenchmarkProfile(
        name="compress", n_functions=8, stmts=34,
        int_pool=22, float_pool=0,
        call_prob=0.02, branch_prob=0.10, loop_prob=0.18, max_loop_depth=3,
        copy_prob=0.06, paired_prob=0.15, byte_prob=0.45,
        load_prob=0.24, store_prob=0.10,
    ),
    "jess": BenchmarkProfile(
        name="jess", n_functions=20, stmts=14,
        int_pool=14, float_pool=0,
        call_prob=0.18, branch_prob=0.16, loop_prob=0.10, max_loop_depth=1,
        copy_prob=0.10, paired_prob=0.10, byte_prob=0.05,
        load_prob=0.16, store_prob=0.05,
    ),
    "db": BenchmarkProfile(
        name="db", n_functions=14, stmts=18,
        int_pool=15, float_pool=0,
        call_prob=0.14, branch_prob=0.18, loop_prob=0.12, max_loop_depth=2,
        copy_prob=0.09, paired_prob=0.12, byte_prob=0.10,
        load_prob=0.20, store_prob=0.07,
    ),
    "javac": BenchmarkProfile(
        name="javac", n_functions=12, stmts=26,
        int_pool=20, float_pool=0,
        call_prob=0.12, branch_prob=0.18, loop_prob=0.12, max_loop_depth=2,
        copy_prob=0.11, paired_prob=0.10, byte_prob=0.06,
        load_prob=0.17, store_prob=0.06,
    ),
    "mpegaudio": BenchmarkProfile(
        name="mpegaudio", n_functions=8, stmts=36,
        int_pool=12, float_pool=16,
        call_prob=0.04, branch_prob=0.08, loop_prob=0.18, max_loop_depth=3,
        copy_prob=0.06, paired_prob=0.45, byte_prob=0.0,
        load_prob=0.26, store_prob=0.08,
    ),
    "mtrt": BenchmarkProfile(
        name="mtrt", n_functions=10, stmts=24,
        int_pool=10, float_pool=14,
        call_prob=0.09, branch_prob=0.14, loop_prob=0.14, max_loop_depth=2,
        copy_prob=0.08, paired_prob=0.30, byte_prob=0.0,
        load_prob=0.22, store_prob=0.06,
    ),
    "jack": BenchmarkProfile(
        name="jack", n_functions=16, stmts=15,
        int_pool=14, float_pool=0,
        call_prob=0.16, branch_prob=0.20, loop_prob=0.10, max_loop_depth=1,
        copy_prob=0.12, paired_prob=0.08, byte_prob=0.12,
        load_prob=0.16, store_prob=0.05,
    ),
}

#: the order the paper's figures list the tests in
BENCHMARK_NAMES = list(SPEC_PROFILES)
