"""The benchmark suite: one generated module per SPECjvm98-like test."""

from __future__ import annotations

from repro.ir.function import Module
from repro.workloads.generator import generate_module
from repro.workloads.profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.workloads.spillstress import spill_stress_module

__all__ = ["make_benchmark", "make_suite"]


def make_benchmark(name: str, seed: int = 0) -> Module:
    """The deterministic module for one named benchmark.

    Besides the SPECjvm98-like profiles this also serves
    ``"spillstress"`` — the localized-pressure workload backing the
    incremental spill-round bench.  It is deliberately *not* part of
    ``BENCHMARK_NAMES`` so the figure sweeps stay exactly the paper's
    suite.
    """
    if name == "spillstress":
        return spill_stress_module()
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from "
            f"{BENCHMARK_NAMES + ['spillstress']}"
        ) from None
    return generate_module(profile, seed)


def make_suite(names: list[str] | None = None,
               seed: int = 0) -> dict[str, Module]:
    """All (or the named subset of) benchmark modules."""
    return {
        name: make_benchmark(name, seed)
        for name in (names or BENCHMARK_NAMES)
    }
