"""Deterministic synthetic program generator.

Produces multi-assignment (pre-SSA) IR whose structural features follow a
:class:`~repro.workloads.profiles.BenchmarkProfile`.  Guarantees:

* **determinism** — everything derives from ``random.Random(seed)``;
* **termination** — all back edges belong to counted loops with constant
  trip counts, so the interpreters always halt;
* **defined behavior** — division is total, loads read the deterministic
  memory, every callee exists in the default call registry;
* **pressure** — a pool of live variables is repeatedly read and
  overwritten, keeping ``int_pool``/``float_pool`` values simultaneously
  live across loops and calls.
"""

from __future__ import annotations

import random
import zlib

from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.values import Const, RegClass, VReg
from repro.workloads.profiles import BenchmarkProfile

__all__ = ["generate_function", "generate_module"]

INT_OPS = ("add", "sub", "mul", "and", "or", "xor", "add", "sub")
FLOAT_OPS = ("fadd", "fsub", "fmul", "fadd")
CMP_OPS = ("cmplt", "cmple", "cmpeq", "cmpne", "cmpgt", "cmpge")
CALLEES_INT = ("helper", "ext0", "ext1", "ext2", "ext3",
               "ext4", "ext5", "ext6", "ext7")


class _FunctionGenerator:
    def __init__(self, name: str, profile: BenchmarkProfile,
                 rng: random.Random):
        self.profile = profile
        self.rng = rng
        n_params = rng.randint(profile.min_params, profile.max_params)
        self.b = IRBuilder(name, n_params=n_params)
        self.labels = 0
        self.int_pool: list[VReg] = []
        self.float_pool: list[VReg] = []
        self.loop_depth = 0

    # ------------------------------------------------------------------

    def generate(self) -> Function:
        self._init_pools()
        self._body(self.profile.stmts)
        self._epilogue()
        return self.b.finish()

    def _label(self, stem: str) -> str:
        self.labels += 1
        return f"{stem}{self.labels}"

    # ------------------------------------------------------------------

    def _init_pools(self) -> None:
        rng, b, profile = self.rng, self.b, self.profile
        base = b.param(0)
        for i in range(profile.int_pool):
            choice = rng.random()
            if choice < 0.3 and b.func.params:
                var = b.move(rng.choice(b.func.params))
            elif choice < 0.6:
                var = b.load(base, offset=4 * i)
            else:
                var = b.const(rng.randint(1, 64))
            self.int_pool.append(var)
        for i in range(profile.float_pool):
            if rng.random() < 0.5:
                var = b.load(base, offset=4 * (profile.int_pool + i),
                             rclass=RegClass.FLOAT)
            else:
                var = b.const(float(rng.randint(1, 32)), RegClass.FLOAT)
            self.float_pool.append(var)

    def _epilogue(self) -> None:
        # Fold the whole pool into the return value: every pool variable
        # stays live to the function exit, which is what keeps register
        # pressure at the profile's pool size rather than collapsing to
        # whatever the last few statements touched.
        acc = self.int_pool[0]
        for var in self.int_pool[1:]:
            acc = self.b.add(acc, var)
        if self.float_pool:
            facc = self.float_pool[0]
            for var in self.float_pool[1:]:
                facc = self.b.binop("fadd", facc, var)
            as_int = self.b.unary("ftoi", facc, rclass=RegClass.INT)
            acc = self.b.add(acc, as_int)
        self.b.ret(acc)

    # ------------------------------------------------------------------

    def _body(self, budget: int) -> None:
        rng, profile = self.rng, self.profile
        while budget > 0:
            roll = rng.random()
            if roll < profile.loop_prob and budget >= 4 \
                    and self.loop_depth < profile.max_loop_depth:
                inner = min(budget - 2, rng.randint(3, 8))
                self._loop(inner)
                budget -= inner + 2
            elif roll < profile.loop_prob + profile.branch_prob \
                    and budget >= 4:
                inner = min(budget - 2, rng.randint(2, 6))
                self._diamond(inner)
                budget -= inner + 2
            else:
                self._statement()
                budget -= 1

    def _loop(self, inner_budget: int) -> None:
        b, rng = self.b, self.rng
        counter = b.const(0)
        trips = rng.randint(2, 4)
        head = self._label("loop")
        exit_label = self._label("done")
        b.jump(head)
        b.block(head)
        self.loop_depth += 1
        self._body(inner_budget)
        self.loop_depth -= 1
        b.binop("add", counter, Const(1), dst=counter)
        cond = b.binop("cmplt", counter, Const(trips))
        b.branch(cond, head, exit_label)
        b.block(exit_label)

    def _diamond(self, inner_budget: int) -> None:
        b, rng = self.b, self.rng
        lhs, rhs = self._pick_int(), self._pick_int()
        cond = b.binop(rng.choice(CMP_OPS), lhs, rhs)
        then_label = self._label("then")
        else_label = self._label("else")
        merge_label = self._label("merge")
        b.branch(cond, then_label, else_label)
        then_budget = max(1, inner_budget // 2)
        b.block(then_label)
        self._body(then_budget)
        # Redefine a pool variable so the merge needs a phi.
        victim = self._victim_int()
        b.binop("add", victim, Const(rng.randint(1, 9)), dst=victim)
        b.jump(merge_label)
        b.block(else_label)
        self._body(max(1, inner_budget - then_budget))
        b.binop("xor", victim, Const(rng.randint(1, 9)), dst=victim)
        b.jump(merge_label)
        b.block(merge_label)

    # ------------------------------------------------------------------

    def _statement(self) -> None:
        rng, profile = self.rng, self.profile
        roll = rng.random()
        if roll < profile.call_prob:
            self._call()
        elif roll < profile.call_prob + profile.load_prob:
            self._load()
        elif roll < profile.call_prob + profile.load_prob \
                + profile.store_prob:
            self._store()
        elif roll < profile.call_prob + profile.load_prob \
                + profile.store_prob + profile.copy_prob:
            self._copy()
        else:
            self._arith()

    def _pick_int(self) -> VReg:
        return self.rng.choice(self.int_pool)

    def _pick_float(self) -> VReg:
        return self.rng.choice(self.float_pool)

    def _victim_int(self) -> VReg:
        return self.rng.choice(self.int_pool)

    def _use_float(self) -> bool:
        pool = self.profile.float_pool
        total = pool + self.profile.int_pool
        return bool(pool) and self.rng.random() < pool / total

    def _arith(self) -> None:
        b, rng = self.b, self.rng
        if self._use_float():
            op = rng.choice(FLOAT_OPS)
            dst = self._pick_float()
            b.binop(op, self._pick_float(), self._pick_float(), dst=dst)
        else:
            op = rng.choice(INT_OPS)
            dst = self._victim_int()
            rhs = (Const(rng.randint(1, 16)) if rng.random() < 0.3
                   else self._pick_int())
            b.binop(op, self._pick_int(), rhs, dst=dst)

    def _copy(self) -> None:
        b = self.b
        if self._use_float():
            b.move(self._pick_float(), dst=self._pick_float())
        else:
            b.move(self._pick_int(), dst=self._victim_int())

    def _addr_base(self) -> VReg:
        # Bases come from parameters so address values stay small and
        # deterministic under interpretation.
        return self.b.param(self.rng.randrange(len(self.b.func.params)))

    def _load(self) -> None:
        b, rng, profile = self.b, self.rng, self.profile
        base = self._addr_base()
        offset = 4 * rng.randint(0, 63)
        if self._use_float():
            if rng.random() < profile.paired_prob:
                d1, d2 = self._pick_float(), self._pick_float()
                if d1 is d2:
                    d2 = rng.choice(
                        [v for v in self.float_pool if v is not d1] or [d1]
                    )
                if d1 is not d2:
                    b.load(base, offset, dst=d1, rclass=RegClass.FLOAT)
                    b.load(base, offset + 4, dst=d2, rclass=RegClass.FLOAT)
                    return
            b.load(base, offset, dst=self._pick_float(),
                   rclass=RegClass.FLOAT)
            return
        if rng.random() < profile.byte_prob:
            b.load(base, offset, width="byte", dst=self._victim_int())
            return
        if rng.random() < profile.paired_prob:
            d1, d2 = rng.sample(self.int_pool, 2) \
                if len(self.int_pool) >= 2 else (self._victim_int(), None)
            if d2 is not None:
                b.load(base, offset, dst=d1)
                b.load(base, offset + 4, dst=d2)
                return
        b.load(base, offset, dst=self._victim_int())

    def _store(self) -> None:
        b, rng = self.b, self.rng
        base = self._addr_base()
        offset = 4 * rng.randint(64, 127)  # stores land clear of loads
        src = self._pick_float() if self._use_float() else self._pick_int()
        b.store(base, offset, src)

    def _call(self) -> None:
        b, rng = self.b, self.rng
        if self._use_float():
            n_args = rng.randint(
                1, min(self.profile.max_call_args, len(self.float_pool))
            )
            args = [self._pick_float() for _ in range(n_args)]
            dst = self._pick_float()
            result = b.call("fhelper", args, returns=True,
                            rclass=RegClass.FLOAT)
            b.move(result, dst=dst)
            return
        n_args = rng.randint(1, self.profile.max_call_args)
        args = [self._pick_int() for _ in range(n_args)]
        dst = self._victim_int()
        result = b.call(rng.choice(CALLEES_INT), args, returns=True)
        b.move(result, dst=dst)


def generate_function(name: str, profile: BenchmarkProfile,
                      seed: int) -> Function:
    """One deterministic function for ``profile``."""
    rng = random.Random(seed)
    return _FunctionGenerator(name, profile, rng).generate()


def generate_module(profile: BenchmarkProfile, seed: int = 0) -> Module:
    """A deterministic module of ``profile.n_functions`` functions."""
    # zlib.crc32, unlike hash(), is stable across interpreter runs.
    rng = random.Random((zlib.crc32(profile.name.encode()) ^ seed)
                        & 0xFFFFFFFF)
    module = Module(profile.name)
    for i in range(profile.n_functions):
        func_seed = rng.randrange(1 << 30)
        module.add(
            generate_function(f"{profile.name}_f{i}", profile, func_seed)
        )
    return module
