"""Spill-stress workload: large CFGs with *localized* register pressure.

The SPECjvm98-like profiles keep a global pool of values live across the
whole function, so under a squeezed machine *every* block sees spill
code and an incremental spill-round re-analysis degenerates to a full
one.  Real hot methods are not like that: pressure concentrates in a
few inner loops while the surrounding code idles well under the
register budget.  This workload reproduces that shape on purpose — it
is the benchmark for :mod:`repro.analysis.incremental`, where the
interesting quantity is the fraction of blocks a spill round actually
touches.

Each function is a long chain of counted-loop segments.  Most segments
are *cold* (a handful of simultaneously-live temporaries, colorable on
any machine we bench); every ``hot_every``-th segment is *hot*: its
loop body materializes ``hot_pressure`` loads and keeps them all live
into a reduction, far exceeding a squeezed register file.  Only the
running accumulator, the address base, and each segment's loop counter
cross segment boundaries, so spilled webs — and therefore
``SpillDelta.touched_blocks`` — stay confined to the hot segments.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.values import Const, VReg

__all__ = ["spill_stress_function", "spill_stress_module"]


def _segment(b: IRBuilder, acc: VReg, base: VReg, seg: int,
             pressure: int, chain: int, trips: int) -> VReg:
    """One counted loop; returns the new accumulator.

    ``pressure`` values are loaded and held simultaneously live through
    a pairwise reduction; ``chain`` then appends that many *stores* of
    the reduced value.  Stores define nothing, so they add instructions
    — fresh liveness/interference/cost scans pay for every one — while
    the block's register population (and hence its translated masks,
    rows and cost tables) stays a handful of entries.  Cold segments
    are long store runs at trivial pressure: plenty for a from-scratch
    scan to chew on, near-nothing for an incremental patch to
    translate, and nothing for the spiller.
    """
    counter = b.const(0)
    head = f"seg{seg}_head"
    done = f"seg{seg}_done"
    b.jump(head)
    b.block(head)
    temps = [
        b.load(base, offset=4 * ((seg * 31 + i) % 64))
        for i in range(pressure)
    ]
    # Pairwise reduction keeps every temp live until its pair is folded,
    # which is what actually holds the pressure at `pressure` instead of
    # letting a linear fold retire temps as fast as they are defined.
    while len(temps) > 1:
        temps = [
            b.add(temps[i], temps[i + 1]) if i + 1 < len(temps)
            else temps[i]
            for i in range(0, len(temps), 2)
        ]
    value = temps[0]
    for i in range(chain):
        b.store(base, 4 * ((seg * 17 + i) % 64), value)
    new_acc = b.vreg(acc.rclass)
    b.binop("xor", acc, value, dst=new_acc)
    b.binop("add", counter, Const(1), dst=counter)
    cond = b.binop("cmplt", counter, Const(trips))
    b.branch(cond, head, done)
    b.block(done)
    return new_acc


def spill_stress_function(
    name: str = "spillstress",
    n_segments: int = 24,
    hot_every: int = 6,
    hot_pressure: int = 20,
    cold_pressure: int = 3,
    cold_chain: int = 40,
    trips: int = 3,
) -> Function:
    """A segment-chain function whose spills concentrate in hot loops."""
    b = IRBuilder(name, n_params=1)
    base = b.param(0)
    acc = b.move(base)
    for seg in range(n_segments):
        hot = seg % hot_every == 0
        acc = _segment(b, acc, base, seg,
                       hot_pressure if hot else cold_pressure,
                       0 if hot else cold_chain, trips)
    b.ret(acc)
    return b.finish()


def spill_stress_module(n_functions: int = 4, **kwargs) -> Module:
    """A module of identical-shape (but distinct) spill-stress functions."""
    module = Module("spillstress")
    for i in range(n_functions):
        module.add(spill_stress_function(f"spillstress_f{i}", **kwargs))
    return module
