"""Synthetic SPECjvm98-like workloads."""

from repro.workloads.figures import figure7_function
from repro.workloads.generator import generate_function, generate_module
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    SPEC_PROFILES,
    BenchmarkProfile,
)
from repro.workloads.spillstress import (
    spill_stress_function,
    spill_stress_module,
)
from repro.workloads.suite import make_benchmark, make_suite

__all__ = [
    "figure7_function",
    "generate_function",
    "generate_module",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "BENCHMARK_NAMES",
    "make_benchmark",
    "make_suite",
    "spill_stress_function",
    "spill_stress_module",
]
