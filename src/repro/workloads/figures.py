"""IR transcriptions of the paper's in-text programs."""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.values import Const

__all__ = ["figure7_function"]


def figure7_function() -> Function:
    """The program of Figure 7(a), instruction for instruction.

    ::

        i0: v0 = [arg0]
        i1: L1: v1 = [v0]
        i2:     v2 = [v0+4]
        i3:     v3 = v0
        i4:     v4 = v1 + v2
        i5:     arg0 = v3
        i6:     call
        i7:     v0 = v4 + 1
        i8:     if v0 != 0 goto L1
        i9:     ret

    ``arg0`` is parameter 0; the lowering pass materializes the
    ``arg0 = v3`` copy (i5) when it lowers the call.
    """
    b = IRBuilder("figure7", n_params=1)
    v0 = b.load(b.param(0), 0)               # i0
    b.jump("L1")
    b.block("L1")
    v1 = b.load(v0, 0)                       # i1
    v2 = b.load(v0, 4)                       # i2
    v3 = b.move(v0)                          # i3
    v4 = b.add(v1, v2)                       # i4
    b.call("helper", [v3])                   # i5 + i6
    b.binop("add", v4, Const(1), dst=v0)     # i7
    cond = b.binop("cmpne", v0, Const(0))    # i8
    b.branch(cond, "L1", "exit")
    b.block("exit")
    b.ret()                                  # i9
    return b.finish()
