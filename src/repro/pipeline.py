"""End-to-end compilation pipeline.

    generate -> validate -> SSA -> DCE -> out-of-SSA (copy-rich) ->
    lower calling convention -> [allocator under test] -> verify ->
    cycle estimate

``prepare_module`` produces the allocator input once; ``allocate_module``
clones it per allocator so every algorithm colors the *same* code — the
precondition for the ratio figures.

Two throughput levers, both result-neutral:

* round-0 analyses (CFG, loops, liveness, interference, spill costs) are
  memoized per *prepared* function, so sweeping many allocators — or
  timing one repeatedly — re-analyzes nothing on the first round;
* ``allocate_module(..., jobs=N)`` fans functions out over a process
  pool.  Results are merged in submission order and every tie-break in
  the allocators is deterministic, so ``jobs=N`` output is byte-identical
  to ``jobs=1``.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.analysis.incremental import incremental_mode
from repro.analysis.renumber import renumber
from repro.ir.clone import clone_function, clone_module
from repro.ir.function import Function, Module
from repro.ir.validate import validate_function
from repro.regalloc.base import (
    AllocationResult,
    AllocationStats,
    Allocator,
    RoundAnalyses,
    allocate_function,
    compute_round_analyses,
)
from repro.profiling import phase
from repro.regalloc.verify import verify_allocation
from repro.sim.cycles import CycleReport, estimate_cycles
from repro.ssa.construct import to_ssa
from repro.ssa.dce import eliminate_dead_code
from repro.ssa.destruct import from_ssa
from repro.target.lowering import lower_function
from repro.target.machine import TargetMachine

__all__ = ["ModuleAllocation", "prepare_function", "prepare_module",
           "allocate_module", "round0_analyses"]


@dataclass(eq=False)
class ModuleAllocation:
    """One allocator's results over one prepared module."""

    allocator: str
    machine: TargetMachine
    results: list[AllocationResult] = field(default_factory=list)
    stats: AllocationStats = field(default_factory=AllocationStats)
    cycles: CycleReport = field(default_factory=CycleReport)


def prepare_function(func: Function, machine: TargetMachine) -> Function:
    """Run the pre-allocation pipeline on ``func`` in place."""
    with phase("prepare"):
        validate_function(func)
        to_ssa(func)
        validate_function(func, ssa=True)
        eliminate_dead_code(func)
        from_ssa(func)
        lower_function(func, machine)
        validate_function(func)
    return func


def prepare_module(module: Module, machine: TargetMachine) -> Module:
    """A lowered deep copy of ``module``, ready for any allocator."""
    prepared = clone_module(module)
    for func in prepared.functions:
        prepare_function(func, machine)
    return prepared


#: prepared function -> round-0 analyses of a pristine renumbered clone.
#: Keyed weakly so dropping a prepared module frees its analyses too.
_round0_cache: "WeakKeyDictionary[Function, RoundAnalyses]" = (
    WeakKeyDictionary()
)


def round0_analyses(prepared_func: Function) -> RoundAnalyses:
    """Memoized first-round analyses of one prepared function.

    Computed on a renumbered *reference clone* so the cached structures
    are never touched by an allocator's in-place rewrite; every clone of
    ``prepared_func`` renumbers to the same names (renumbering is
    deterministic), so the analyses transfer to any round 0.
    """
    # Collect the per-block summaries whenever incremental spill rounds
    # are enabled, so a cached round 0 can be patched by round 1.  A
    # cache entry built in the other mode is rebuilt rather than reused
    # (apply_delta would just fall back every round otherwise).
    collect = incremental_mode() != "off"
    cached = _round0_cache.get(prepared_func)
    if cached is None or (collect and cached.block_rows is None):
        ref = clone_function(prepared_func)
        renumber(ref)
        cached = compute_round_analyses(ref, collect_deltas=collect)
        _round0_cache[prepared_func] = cached
    return cached


def _allocate_one(
    prepared_func: Function,
    machine: TargetMachine,
    allocator: Allocator,
    verify: bool,
    reuse_analyses: bool,
) -> tuple[AllocationResult, CycleReport]:
    """Allocate one function from its prepared form (worker-safe)."""
    func = clone_function(prepared_func)
    round0 = round0_analyses(prepared_func) if reuse_analyses else None
    result = allocate_function(func, machine, allocator, round0=round0)
    if verify:
        verify_allocation(func, machine)
    return result, estimate_cycles(func, machine)


def allocate_module(
    prepared: Module,
    machine: TargetMachine,
    allocator: Allocator,
    verify: bool = True,
    jobs: int = 1,
    reuse_analyses: bool = True,
) -> ModuleAllocation:
    """Clone ``prepared``, allocate every function, sum stats and cycles.

    ``jobs > 1`` allocates functions on a process pool; stats and cycle
    totals are merged in the module's function order regardless of
    completion order, so the result is identical to a sequential run.
    """
    out = ModuleAllocation(allocator=allocator.name, machine=machine)
    out.stats.allocator = allocator.name
    merged = None
    if jobs > 1 and len(prepared.functions) > 1:
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_allocate_one, func, machine, allocator,
                                verify, reuse_analyses)
                    for func in prepared.functions
                ]
                merged = [f.result() for f in futures]
        except (BrokenProcessPool, OSError, PermissionError,
                RuntimeError) as err:
            # Sandboxed / no-fork environments can refuse to start the
            # pool (or kill its workers before the first result); the
            # answer is the same either way, just slower.  Allocator
            # errors are ReproErrors and still propagate.
            warnings.warn(
                f"process pool unavailable ({err!r}); "
                f"falling back to serial allocation",
                RuntimeWarning,
                stacklevel=2,
            )
            merged = None
    if merged is None:
        merged = [
            _allocate_one(func, machine, allocator, verify, reuse_analyses)
            for func in prepared.functions
        ]
    for result, cycles in merged:
        out.results.append(result)
        out.stats.merge(result.stats)
        out.cycles.add(cycles)
    return out
