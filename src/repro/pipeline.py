"""End-to-end compilation pipeline.

    generate -> validate -> SSA -> DCE -> out-of-SSA (copy-rich) ->
    lower calling convention -> [allocator under test] -> verify ->
    cycle estimate

``prepare_module`` produces the allocator input once; ``allocate_module``
clones it per allocator so every algorithm colors the *same* code — the
precondition for the ratio figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.clone import clone_module
from repro.ir.function import Function, Module
from repro.ir.validate import validate_function
from repro.regalloc.base import (
    AllocationResult,
    AllocationStats,
    Allocator,
    allocate_function,
)
from repro.regalloc.verify import verify_allocation
from repro.sim.cycles import CycleReport, estimate_cycles
from repro.ssa.construct import to_ssa
from repro.ssa.dce import eliminate_dead_code
from repro.ssa.destruct import from_ssa
from repro.target.lowering import lower_function
from repro.target.machine import TargetMachine

__all__ = ["ModuleAllocation", "prepare_function", "prepare_module",
           "allocate_module"]


@dataclass(eq=False)
class ModuleAllocation:
    """One allocator's results over one prepared module."""

    allocator: str
    machine: TargetMachine
    results: list[AllocationResult] = field(default_factory=list)
    stats: AllocationStats = field(default_factory=AllocationStats)
    cycles: CycleReport = field(default_factory=CycleReport)


def prepare_function(func: Function, machine: TargetMachine) -> Function:
    """Run the pre-allocation pipeline on ``func`` in place."""
    validate_function(func)
    to_ssa(func)
    validate_function(func, ssa=True)
    eliminate_dead_code(func)
    from_ssa(func)
    lower_function(func, machine)
    validate_function(func)
    return func


def prepare_module(module: Module, machine: TargetMachine) -> Module:
    """A lowered deep copy of ``module``, ready for any allocator."""
    prepared = clone_module(module)
    for func in prepared.functions:
        prepare_function(func, machine)
    return prepared


def allocate_module(
    prepared: Module,
    machine: TargetMachine,
    allocator: Allocator,
    verify: bool = True,
) -> ModuleAllocation:
    """Clone ``prepared``, allocate every function, sum stats and cycles."""
    work = clone_module(prepared)
    out = ModuleAllocation(allocator=allocator.name, machine=machine)
    out.stats.allocator = allocator.name
    for func in work.functions:
        result = allocate_function(func, machine, allocator)
        if verify:
            verify_allocation(func, machine)
        out.results.append(result)
        out.stats.merge(result.stats)
        out.cycles.add(estimate_cycles(func, machine))
    return out
