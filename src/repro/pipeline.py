"""End-to-end compilation pipeline.

    generate -> validate -> SSA -> DCE -> out-of-SSA (copy-rich) ->
    lower calling convention -> [allocator under test] -> verify ->
    cycle estimate

``prepare_module`` produces the allocator input once; ``allocate_module``
clones it per allocator so every algorithm colors the *same* code — the
precondition for the ratio figures.

Two throughput levers, both result-neutral:

* round-0 analyses (CFG, loops, liveness, interference, spill costs) are
  memoized per *prepared* function, so sweeping many allocators — or
  timing one repeatedly — re-analyzes nothing on the first round;
* ``allocate_module(..., options=AllocationOptions(jobs=N))`` fans
  functions out over the persistent :mod:`repro.exec` worker pool.
  Results are merged in submission order and every tie-break in the
  allocators is deterministic, so ``jobs=N`` output is byte-identical to
  ``jobs=1`` — even when a worker crashes mid-batch and its jobs are
  retried elsewhere (or, past the retry budget, re-run serially here).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.analysis.incremental import incremental_mode
from repro.analysis.renumber import renumber
from repro.exec import WorkerPoolUnavailable, get_default_pool
from repro.ir.clone import clone_function, clone_module
from repro.ir.function import Function, Module
from repro.ir.validate import validate_function
from repro.regalloc.base import (
    AllocationOptions,
    AllocationResult,
    AllocationStats,
    Allocator,
    RoundAnalyses,
    _resolve_options,
    allocate_function,
    compute_round_analyses,
)
from repro.policy import DEFAULT_POLICY, Policy
from repro.profiling import phase
from repro.regalloc.verify import verify_allocation
from repro.sim.cycles import CycleReport, estimate_cycles
from repro.ssa.construct import to_ssa
from repro.ssa.dce import eliminate_dead_code
from repro.ssa.destruct import from_ssa
from repro.target.lowering import lower_function
from repro.target.machine import TargetMachine

__all__ = ["ModuleAllocation", "prepare_function", "prepare_module",
           "allocate_module", "round0_analyses"]


@dataclass(eq=False)
class ModuleAllocation:
    """One allocator's results over one prepared module."""

    allocator: str
    machine: TargetMachine
    results: list[AllocationResult] = field(default_factory=list)
    stats: AllocationStats = field(default_factory=AllocationStats)
    cycles: CycleReport = field(default_factory=CycleReport)


def prepare_function(func: Function, machine: TargetMachine) -> Function:
    """Run the pre-allocation pipeline on ``func`` in place."""
    with phase("prepare"):
        validate_function(func)
        to_ssa(func)
        validate_function(func, ssa=True)
        eliminate_dead_code(func)
        from_ssa(func)
        lower_function(func, machine)
        validate_function(func)
    return func


def prepare_module(module: Module, machine: TargetMachine) -> Module:
    """A lowered deep copy of ``module``, ready for any allocator."""
    prepared = clone_module(module)
    for func in prepared.functions:
        prepare_function(func, machine)
    return prepared


#: prepared function -> {policy digest -> round-0 analyses of a
#: pristine renumbered clone}.  Keyed weakly so dropping a prepared
#: module frees its analyses too; the inner key separates policies
#: because spill costs (and so every structure built on them) are
#: policy-weighted.
_round0_cache: "WeakKeyDictionary[Function, dict[str, RoundAnalyses]]" = (
    WeakKeyDictionary()
)


def round0_analyses(prepared_func: Function,
                    incremental: str | None = None,
                    policy: Policy = DEFAULT_POLICY) -> RoundAnalyses:
    """Memoized first-round analyses of one prepared function.

    Computed on a renumbered *reference clone* so the cached structures
    are never touched by an allocator's in-place rewrite; every clone of
    ``prepared_func`` renumbers to the same names (renumbering is
    deterministic), so the analyses transfer to any round 0.

    ``incremental`` is the caller's
    :attr:`~repro.regalloc.base.AllocationOptions.incremental` mode
    (``None`` falls back to the environment default).
    """
    # Collect the per-block summaries whenever incremental spill rounds
    # are enabled, so a cached round 0 can be patched by round 1.  A
    # cache entry built in the other mode is rebuilt rather than reused
    # (apply_delta would just fall back every round otherwise).
    if incremental is None:
        incremental = incremental_mode()
    collect = incremental != "off"
    per_policy = _round0_cache.setdefault(prepared_func, {})
    cached = per_policy.get(policy.digest())
    if cached is None or (collect and cached.block_rows is None):
        ref = clone_function(prepared_func)
        renumber(ref)
        cached = compute_round_analyses(ref, collect_deltas=collect,
                                        policy=policy)
        per_policy[policy.digest()] = cached
    return cached


def _allocate_one(
    prepared_func: Function,
    machine: TargetMachine,
    allocator: Allocator,
    options: AllocationOptions,
) -> tuple[AllocationResult, CycleReport]:
    """Allocate one function from its prepared form, serially."""
    func = clone_function(prepared_func)
    round0 = None
    if options.reuse_analyses:
        round0 = round0_analyses(prepared_func, options.incremental,
                                 options.policy)
    result = allocate_function(func, machine, allocator, options=options,
                               round0=round0)
    if options.verify:
        verify_allocation(func, machine)
    return result, estimate_cycles(func, machine)


def _pool_results(prepared, machine, allocator, options, pool):
    """Run the module's functions through the worker pool.

    Returns submission-ordered ``(AllocationResult, CycleReport)`` pairs.
    Per-job outcomes: worker *errors* re-raise here (same behavior as a
    serial run); jobs whose workers kept *crashing* past the retry
    budget are re-run serially in this process (byte-identical, just
    slower); *deadline* kills past the retry budget raise
    :class:`~repro.exec.JobDeadlineError` for the service layer to
    degrade on.
    """
    deadline_s = (None if options.deadline_ms is None
                  else options.deadline_ms / 1000.0)
    payloads = [(func, machine, allocator, options)
                for func in prepared.functions]
    batch = pool.run_batch(payloads, deadline_s=deadline_s)
    merged = []
    for func, job in zip(prepared.functions, batch):
        if job.ok:
            merged.append(job.value)
        elif job.kind == "deadline":
            raise job.error
        elif job.kind == "crash":
            warnings.warn(
                f"worker pool gave up on {func.name!r} after "
                f"{job.attempts} attempts ({job.error}); "
                f"falling back to serial allocation for it",
                RuntimeWarning,
                stacklevel=3,
            )
            merged.append(_allocate_one(func, machine, allocator, options))
        else:
            raise job.error
    return merged


def allocate_module(
    prepared: Module,
    machine: TargetMachine,
    allocator: Allocator,
    options: AllocationOptions | None = None,
    *,
    pool=None,
    verify: bool | None = None,
    jobs: int | None = None,
    reuse_analyses: bool | None = None,
) -> ModuleAllocation:
    """Clone ``prepared``, allocate every function, sum stats and cycles.

    All knobs ride on ``options`` (:class:`AllocationOptions`); the bare
    ``verify``/``jobs``/``reuse_analyses`` keywords are deprecated shims.
    ``options.jobs > 1`` allocates functions on the persistent
    :mod:`repro.exec` worker pool; stats and cycle totals are merged in
    the module's function order regardless of completion order, so the
    result is identical to a sequential run.  ``pool`` injects a
    specific :class:`~repro.exec.WorkerPool` (fault-injection tests and
    the resilience benchmark); by default the shared module-level pool
    is used and stays warm across calls.
    """
    options = _resolve_options(
        options, verify=verify, jobs=jobs, reuse_analyses=reuse_analyses
    )
    out = ModuleAllocation(allocator=allocator.name, machine=machine)
    out.stats.allocator = allocator.name
    merged = None
    if options.jobs > 1 and len(prepared.functions) > 1:
        try:
            if pool is None:
                pool = get_default_pool(workers=options.jobs)
            pool.ensure_started()
        except (WorkerPoolUnavailable, OSError, PermissionError,
                RuntimeError) as err:
            # Sandboxed / no-fork environments can refuse to start the
            # pool; the answer is the same either way, just slower.
            # Only *startup* falls back — once the batch is running,
            # task errors propagate and crashed workers are handled
            # per-job inside _pool_results.
            warnings.warn(
                f"process pool unavailable ({err!r}); "
                f"falling back to serial allocation",
                RuntimeWarning,
                stacklevel=2,
            )
            pool = None
        if pool is not None:
            merged = _pool_results(prepared, machine, allocator, options,
                                   pool)
    if merged is None:
        merged = [
            _allocate_one(func, machine, allocator, options)
            for func in prepared.functions
        ]
    for result, cycles in merged:
        out.results.append(result)
        out.stats.merge(result.stats)
        out.cycles.add(cycles)
    return out
