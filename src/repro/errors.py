"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  The subclasses mirror the
major subsystems: IR construction/validation, analyses, register
allocation, and simulation.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IRError",
    "IRValidationError",
    "ParseError",
    "AnalysisError",
    "AllocationError",
    "AllocationVerifyError",
    "SimulationError",
    "TargetError",
    "ServiceError",
    "CodecError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Raised for malformed IR construction (bad operands, bad blocks)."""


class IRValidationError(IRError):
    """Raised by the IR validator when a function violates an invariant."""


class ParseError(IRError):
    """Raised by the textual IR parser on malformed input."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised when an analysis is run on IR it cannot handle."""


class AllocationError(ReproError):
    """Raised when register allocation cannot make progress."""


class AllocationVerifyError(AllocationError):
    """Raised by the post-allocation verifier on an invalid assignment."""


class SimulationError(ReproError):
    """Raised by the interpreters on a runtime fault (bad branch, etc.)."""


class TargetError(ReproError):
    """Raised for inconsistent target machine descriptions."""


class ServiceError(ReproError):
    """Raised by the allocation service on bad requests or overload."""


class CodecError(ServiceError):
    """Raised by the binary IR codec on unencodable IR or a blob that is
    truncated, corrupted, or from an unknown format version.

    Decoding never produces garbage IR: any structural or integrity
    violation surfaces as this error.  It lives in the service family
    because blobs cross process boundaries on the service's behalf
    (worker dispatch, cache shipping), where a torn read is an
    operational fault, not an IR authoring bug.
    """
