"""Control-flow analyses: CFG snapshots, dominance, natural loops."""

from repro.cfg.analysis import CFG, build_cfg, remove_unreachable_blocks
from repro.cfg.dominance import DomInfo, compute_dominance
from repro.cfg.loops import LOOP_FREQ_FACTOR, Loop, LoopInfo, compute_loops

__all__ = [
    "CFG",
    "build_cfg",
    "remove_unreachable_blocks",
    "DomInfo",
    "compute_dominance",
    "Loop",
    "LoopInfo",
    "compute_loops",
    "LOOP_FREQ_FACTOR",
]
