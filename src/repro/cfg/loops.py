"""Natural-loop detection and execution-frequency estimation.

The paper's cost model weights every instruction by ``Freq_Fact``: 1
outside loops and 10 per loop level ("obtained by loop analysis").  We
detect natural loops from back edges in the dominator tree, compute the
nesting depth of every block, and expose
``freq(block) = LOOP_FREQ_FACTOR ** depth(block)``.

Irreducible CFGs (a retreating edge whose target does not dominate its
source) have no natural loop for that edge; the edge is recorded in
:attr:`LoopInfo.irreducible_edges` and contributes no nesting.  The
workload generator only emits reducible flow, but hand-written IR may not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.analysis import CFG
from repro.cfg.dominance import DomInfo, compute_dominance

__all__ = ["Loop", "LoopInfo", "compute_loops", "LOOP_FREQ_FACTOR"]

#: The paper's appendix frequency factor per loop level.
LOOP_FREQ_FACTOR = 10


@dataclass(eq=False)
class Loop:
    """A natural loop: header plus the body block set."""

    header: str
    body: set[str] = field(default_factory=set)
    #: loops immediately nested inside this one
    children: list["Loop"] = field(default_factory=list)
    parent: "Loop | None" = None
    depth: int = 1

    def __contains__(self, label: str) -> bool:
        return label in self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop(header={self.header}, blocks={len(self.body)}, depth={self.depth})"


@dataclass(eq=False)
class LoopInfo:
    """All loops of a function plus per-block depth/frequency."""

    loops: list[Loop] = field(default_factory=list)
    depth: dict[str, int] = field(default_factory=dict)
    irreducible_edges: list[tuple[str, str]] = field(default_factory=list)

    def freq(self, label: str) -> int:
        """Estimated execution frequency of ``label``."""
        return LOOP_FREQ_FACTOR ** self.depth.get(label, 0)

    def loop_of(self, label: str) -> Loop | None:
        """The innermost loop containing ``label`` (or ``None``)."""
        best: Loop | None = None
        for loop in self.loops:
            if label in loop and (best is None or loop.depth > best.depth):
                best = loop
        return best


def compute_loops(cfg: CFG, dom: DomInfo | None = None) -> LoopInfo:
    """Find natural loops and block nesting depths for ``cfg``."""
    if dom is None:
        dom = compute_dominance(cfg)
    reachable = set(dom.rpo_index)
    info = LoopInfo(depth={label: 0 for label in reachable})

    # Back edge: tail -> header where header dominates tail.  Merge loops
    # sharing a header (multiple back edges into one natural loop).
    loops_by_header: dict[str, Loop] = {}
    for tail in reachable:
        for header in cfg.succs[tail]:
            if header not in reachable:
                continue
            if dom.dominates(header, tail):
                loop = loops_by_header.setdefault(header, Loop(header))
                loop.body |= _loop_body(cfg, header, tail)
            elif _is_retreating(dom, cfg, tail, header):
                info.irreducible_edges.append((tail, header))

    info.loops = list(loops_by_header.values())

    # Nest loops: parent = smallest strictly-containing loop.
    by_size = sorted(info.loops, key=lambda lp: len(lp.body))
    for i, inner in enumerate(by_size):
        for outer in by_size[i + 1:]:
            if inner.header in outer.body and inner.body <= outer.body \
                    and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break
    for loop in info.loops:
        depth, anc = 1, loop.parent
        while anc is not None:
            depth += 1
            anc = anc.parent
        loop.depth = depth

    for label in reachable:
        info.depth[label] = max(
            (lp.depth for lp in info.loops if label in lp), default=0
        )
    return info


def _loop_body(cfg: CFG, header: str, tail: str) -> set[str]:
    """Blocks of the natural loop of back edge ``tail -> header``."""
    body = {header, tail}
    stack = [tail]
    while stack:
        node = stack.pop()
        if node == header:
            continue
        for pred in cfg.preds[node]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def _is_retreating(dom: DomInfo, cfg: CFG, tail: str, header: str) -> bool:
    """Retreating but non-back edge => irreducible flow."""
    return dom.rpo_index.get(header, -1) <= dom.rpo_index.get(tail, -1)
