"""Basic control-flow graph queries: edges, orders, reachability.

All CFG-level analyses operate on block labels, matching how terminators
reference their targets.  A :class:`CFG` snapshot is built once per pass;
it does not track later mutation of the function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.ir.function import Function

__all__ = ["CFG", "build_cfg", "remove_unreachable_blocks"]


@dataclass(eq=False)
class CFG:
    """A label-level snapshot of a function's control flow."""

    func: Function
    entry: str
    succs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    preds: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse postorder of a DFS from the entry."""
        order: list[str] = []
        seen: set[str] = set()

        def visit(label: str) -> None:
            # Iterative DFS to survive deep synthetic CFGs.
            stack: list[tuple[str, int]] = [(label, 0)]
            seen.add(label)
            while stack:
                node, idx = stack[-1]
                succ = self.succs[node]
                if idx < len(succ):
                    stack[-1] = (node, idx + 1)
                    nxt = succ[idx]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def postorder(self) -> list[str]:
        order = self.reverse_postorder()
        order.reverse()
        return order

    def reachable(self) -> set[str]:
        return set(self.reverse_postorder())


def build_cfg(func: Function) -> CFG:
    """Compute the CFG of ``func``.

    Raises :class:`AnalysisError` if any block lacks a terminator (the IR
    validator should have been run first).
    """
    succs: dict[str, tuple[str, ...]] = {}
    preds: dict[str, list[str]] = {blk.label: [] for blk in func.blocks}
    for blk in func.blocks:
        if blk.terminator is None:
            raise AnalysisError(
                f"{func.name}/{blk.label}: cannot build CFG without terminator"
            )
        succs[blk.label] = blk.successors()
    for label, targets in succs.items():
        for target in targets:
            preds[target].append(label)
    return CFG(
        func=func,
        entry=func.entry.label,
        succs=succs,
        preds={label: tuple(p) for label, p in preds.items()},
    )


def remove_unreachable_blocks(func: Function) -> int:
    """Drop blocks not reachable from the entry; returns how many."""
    cfg = build_cfg(func)
    live = cfg.reachable()
    before = len(func.blocks)
    func.blocks = [blk for blk in func.blocks if blk.label in live]
    removed = before - len(func.blocks)
    if removed:
        # Phi arms referring to removed predecessors must be dropped too.
        for blk in func.blocks:
            for phi in blk.phis():
                phi.incoming = {
                    lbl: v for lbl, v in phi.incoming.items() if lbl in live
                }
    return removed
