"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"), which is comfortably fast at the CFG sizes the
workload generator produces and has no recursion-depth hazards.
Dominance frontiers follow Cytron et al., as needed for SSA construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.analysis import CFG

__all__ = ["DomInfo", "compute_dominance"]


@dataclass(eq=False)
class DomInfo:
    """Immediate dominators, dominator-tree children, and frontiers."""

    entry: str
    idom: dict[str, str] = field(default_factory=dict)
    children: dict[str, list[str]] = field(default_factory=dict)
    frontier: dict[str, set[str]] = field(default_factory=dict)
    #: reverse postorder index of each reachable block
    rpo_index: dict[str, int] = field(default_factory=dict)

    def dominates(self, a: str, b: str) -> bool:
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            if node == self.entry:
                return False
            node = self.idom[node]

    def dom_tree_preorder(self) -> list[str]:
        """Blocks in a preorder walk of the dominator tree."""
        order: list[str] = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children.get(node, [])))
        return order


def compute_dominance(cfg: CFG) -> DomInfo:
    """Compute dominator tree and dominance frontiers for ``cfg``.

    Unreachable blocks are ignored (they do not appear in any result map).
    """
    rpo = cfg.reverse_postorder()
    rpo_index = {label: i for i, label in enumerate(rpo)}
    idom: dict[str, str | None] = {label: None for label in rpo}
    idom[cfg.entry] = cfg.entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == cfg.entry:
                continue
            processed = [p for p in cfg.preds[label]
                         if p in rpo_index and idom[p] is not None]
            if not processed:
                continue
            new_idom = processed[0]
            for p in processed[1:]:
                new_idom = intersect(new_idom, p)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    info = DomInfo(entry=cfg.entry, rpo_index=rpo_index)
    info.idom = {lbl: d for lbl, d in idom.items() if d is not None}
    info.children = {label: [] for label in rpo}
    for label in rpo:
        if label != cfg.entry:
            info.children[info.idom[label]].append(label)

    info.frontier = {label: set() for label in rpo}
    for label in rpo:
        preds = [p for p in cfg.preds[label] if p in rpo_index]
        if len(preds) < 2:
            continue
        for p in preds:
            runner = p
            while runner != info.idom[label]:
                info.frontier[runner].add(label)
                runner = info.idom[runner]
    return info
