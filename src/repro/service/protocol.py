"""Versioned wire protocol of the allocation service.

One request/response pair per allocation.  Both sides are plain
dataclasses with an explicit wire form (``to_wire``/``from_wire``) so
the JSON schema is spelled out in one place and versioned by
``PROTOCOL_VERSION``.  Serialization goes through
:func:`repro.reporting.canonical_json`, which makes equal payloads
byte-equal — the property the content-addressed cache and the
byte-identity tests rely on.

The *result payload* of a response (code + stats + cycles + effective
allocator) deliberately excludes volatile metadata (request id, cache
flag, timings), so ``result_digest`` is stable across server restarts,
cache hits, and direct :func:`repro.pipeline.allocate_module` runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import InitVar, dataclass, field, replace

from repro.errors import ServiceError
from repro.regalloc.base import AllocationOptions, AllocationStats
from repro.reporting import canonical_json
from repro.sim.cycles import CycleReport
from repro.target.machine import TargetMachine
from repro.target.presets import make_machine
from repro.workloads import BENCHMARK_NAMES

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "SERVICE_ALLOCATORS",
    "MachineSpec",
    "AllocationRequest",
    "AllocationResponse",
    "machine_descriptor",
    "stats_to_dict",
    "cycles_to_dict",
]

#: Bumped whenever a wire field changes meaning; requests carrying an
#: *unsupported* version are rejected instead of silently misread.
#: v1: bare ``verify``/``deadline_s`` knobs.
#: v2: requests carry a serialized :class:`AllocationOptions` under
#: ``options`` (v1 requests are still accepted and get defaulted
#: options; v1 ``verify``/``deadline_s`` keep working as views).
#: v2 also admits the ``allocate_delta`` message type (``base`` session
#: token + new ``ir`` body) and responses may carry ``session_digest``;
#: both are additive, so the version number is unchanged — old peers
#: simply never send the type.
PROTOCOL_VERSION = 2

#: Versions the server still parses.
SUPPORTED_PROTOCOLS = (1, 2)

#: Allocator names a request may ask for (the CLI's choices).
SERVICE_ALLOCATORS = (
    "chaitin", "briggs", "iterated", "optimistic", "callcost",
    "priority", "only-coalescing", "full",
)


@dataclass(frozen=True)
class MachineSpec:
    """A machine preset: registers per class, as ``make_machine`` takes."""

    regs: int = 24
    has_paired_loads: bool = True

    def build(self) -> TargetMachine:
        return make_machine(self.regs, self.has_paired_loads)

    def to_wire(self) -> dict:
        return {"regs": self.regs, "has_paired_loads": self.has_paired_loads}

    @classmethod
    def from_wire(cls, wire: dict) -> "MachineSpec":
        if not isinstance(wire, dict):
            raise ServiceError(f"machine spec must be an object, got {wire!r}")
        regs = wire.get("regs", 24)
        paired = wire.get("has_paired_loads", True)
        if not isinstance(regs, int) or isinstance(regs, bool):
            raise ServiceError(f"machine regs must be an int, got {regs!r}")
        if not isinstance(paired, bool):
            raise ServiceError("machine has_paired_loads must be a bool")
        return cls(regs=regs, has_paired_loads=paired)


def machine_descriptor(machine: TargetMachine) -> dict:
    """A value-complete, JSON-safe digest of a machine's register model.

    Used in cache fingerprints: two machines with equal descriptors give
    equal allocations, whatever objects they are.
    """
    files = {}
    for rclass, regfile in machine.files.items():
        files[rclass.value] = {
            "k": regfile.k,
            "volatile": sorted(r.index for r in regfile.volatile),
            "param_regs": [r.index for r in regfile.param_regs],
            "return_reg": regfile.return_reg.index,
            "byte_load_regs": sorted(r.index
                                     for r in regfile.byte_load_regs),
        }
    return {
        "name": machine.name,
        "has_paired_loads": machine.has_paired_loads,
        "files": files,
    }


@dataclass
class AllocationRequest:
    """One allocation job: IR text *or* a benchmark name, plus knobs.

    Since protocol v2 the knobs ride in ``options``
    (:class:`~repro.regalloc.base.AllocationOptions`), which is the
    *only* stored copy: the historical ``verify``/``deadline_s`` fields
    are now constructor conveniences (folded into ``options`` when no
    explicit ``options`` is given — ``options`` wins otherwise) plus
    read-only properties derived from it.  Only a v1 wire conversation
    still carries them as fields; a v2 wire line carries ``options``
    alone, so the two copies can never disagree.
    """

    id: str = ""
    ir: str | None = None
    bench: str | None = None
    allocator: str = "full"
    machine: MachineSpec = field(default_factory=MachineSpec)
    #: seconds the client is willing to wait; the scheduler degrades the
    #: allocator (it never errors) once the deadline has passed.
    #: Constructor-only: stored as ``options.deadline_ms``.
    deadline_s: InitVar[float | None] = None
    #: constructor-only: stored as ``options.verify``.
    verify: InitVar[bool | None] = None
    options: AllocationOptions | None = None
    protocol: int = PROTOCOL_VERSION
    #: cache key precomputed by a routing tier in the same trust domain
    #: (the cluster router memoizes one digest per unique request); lets
    #: the shard skip re-normalizing the module on its cache-hit path.
    #: Never part of the fingerprint itself.
    fingerprint_hint: str | None = None
    #: non-None makes this an ``allocate_delta`` request (v2 extension):
    #: ``ir`` is the *new* body and the string is the session token of
    #: the edit chain (the ``session_digest`` of the previous response;
    #: empty string starts a fresh chain).  An unknown token degrades
    #: gracefully to a from-scratch build that primes the session.
    base_digest: str | None = None

    def __post_init__(self, deadline_s, verify) -> None:
        # Non-numeric deadlines are remembered raw so validate() can
        # reject them with a ServiceError instead of blowing up here.
        self._invalid_deadline = None
        if self.options is None:
            overrides = {"verify": True if verify is None else bool(verify)}
            if deadline_s is not None:
                if isinstance(deadline_s, (int, float)) and not isinstance(
                    deadline_s, bool
                ):
                    overrides["deadline_ms"] = float(deadline_s) * 1000.0
                else:
                    self._invalid_deadline = deadline_s
            self.options = AllocationOptions.from_env(**overrides)
        # An explicit options value wins outright; the legacy
        # constructor arguments are dropped, not synced.

    def validate(self) -> None:
        if self.protocol not in SUPPORTED_PROTOCOLS:
            raise ServiceError(
                f"protocol version {self.protocol} unsupported "
                f"(server speaks {SUPPORTED_PROTOCOLS})"
            )
        if (self.ir is None) == (self.bench is None):
            raise ServiceError(
                "request needs exactly one of 'ir' (IR text) or "
                "'bench' (benchmark name)"
            )
        if self.bench is not None and self.bench not in BENCHMARK_NAMES:
            raise ServiceError(
                f"unknown benchmark {self.bench!r}; "
                f"choose from {sorted(BENCHMARK_NAMES)}"
            )
        if self.allocator not in SERVICE_ALLOCATORS:
            raise ServiceError(
                f"unknown allocator {self.allocator!r}; "
                f"choose from {sorted(SERVICE_ALLOCATORS)}"
            )
        if self._invalid_deadline is not None:
            raise ServiceError("deadline_s must be a number (seconds)")
        if self.base_digest is not None:
            if self.protocol < 2:
                raise ServiceError(
                    "allocate_delta requires protocol >= 2"
                )
            if self.ir is None:
                raise ServiceError(
                    "allocate_delta requires 'ir' (the new module body); "
                    "'bench' cannot carry an edit stream"
                )

    def to_wire(self) -> dict:
        wire = {
            "type": "allocate" if self.base_digest is None
            else "allocate_delta",
            "protocol": self.protocol,
            "id": self.id,
            "allocator": self.allocator,
            "machine": self.machine.to_wire(),
        }
        if self.ir is not None:
            wire["ir"] = self.ir
        if self.bench is not None:
            wire["bench"] = self.bench
        if self.protocol >= 2:
            # v2 carries the one true copy; the legacy fields would be
            # redundant duplicates and are no longer emitted.
            if self.options is not None:
                wire["options"] = self.options.to_dict()
            if self.fingerprint_hint:
                wire["fingerprint_hint"] = self.fingerprint_hint
        else:
            # v1 compat: bare knobs are all that dialect can express.
            wire["verify"] = self.verify
            if self.deadline_s is not None:
                wire["deadline_s"] = self.deadline_s
        if self.base_digest is not None:
            wire["base"] = self.base_digest
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "AllocationRequest":
        if not isinstance(wire, dict):
            raise ServiceError(f"request must be a JSON object, got {wire!r}")
        options = None
        if wire.get("options") is not None:
            try:
                options = AllocationOptions.from_dict(wire["options"])
            except (TypeError, ValueError) as err:
                raise ServiceError(f"bad options: {err}") from err
        # A garbled hint from a misbehaving proxy must not fail the
        # request — it is a hit-path shortcut, never load-bearing.
        hint = wire.get("fingerprint_hint")
        base_digest = None
        if wire.get("type") == "allocate_delta":
            base = wire.get("base", "")
            base_digest = base if isinstance(base, str) else ""
        req = cls(
            id=str(wire.get("id", "")),
            ir=wire.get("ir"),
            bench=wire.get("bench"),
            allocator=wire.get("allocator", "full"),
            machine=MachineSpec.from_wire(wire.get("machine", {})),
            # Bare knobs only matter when no options object arrived
            # (v1 peers, hand-written lines); options wins otherwise.
            deadline_s=wire.get("deadline_s"),
            verify=bool(wire.get("verify", True)),
            options=options,
            protocol=wire.get("protocol", PROTOCOL_VERSION),
            fingerprint_hint=hint if isinstance(hint, str) and hint else None,
            base_digest=base_digest,
        )
        req.validate()
        return req

    def to_json(self) -> str:
        return canonical_json(self.to_wire())


# Read-only views of the one stored copy.  Assigned after the @dataclass
# decoration on purpose: inside the class body the property objects
# would be visible at decoration time and become the InitVar *defaults*.
AllocationRequest.verify = property(
    lambda self: self.options.verify,
    doc="Read-only view of ``options.verify``.",
)
AllocationRequest.deadline_s = property(
    lambda self: (None if self.options.deadline_ms is None
                  else self.options.deadline_ms / 1000.0),
    doc="Read-only view of ``options.deadline_ms``, in seconds.",
)


@dataclass
class AllocationResponse:
    """The service's answer; also what ``--json`` CLI commands print."""

    id: str = ""
    ok: bool = True
    #: allocator the client asked for / the one actually run
    allocator: str = ""
    effective_allocator: str = ""
    degraded: bool = False
    cached: bool = False
    #: content address of the request (cache key)
    fingerprint: str = ""
    #: sha256 of the canonical result payload (code+stats+cycles)
    result_digest: str = ""
    #: allocated module, as ``repro.ir.printer`` renders it
    code: str = ""
    stats: dict = field(default_factory=dict)
    cycles: dict = field(default_factory=dict)
    error: str = ""
    #: per-phase wall seconds (volatile; excluded from the digest)
    timings: dict = field(default_factory=dict)
    #: ``allocate_delta`` only: the edit chain's session token — echo it
    #: as ``base`` on the next edit.  Volatile metadata like ``timings``:
    #: excluded from the result payload, so delta responses stay
    #: digest-identical to full-path responses for the same IR.
    session_digest: str = ""
    protocol: int = PROTOCOL_VERSION

    def result_payload(self) -> dict:
        """The deterministic part of the response (digest input)."""
        return {
            "effective_allocator": self.effective_allocator,
            "code": self.code,
            "stats": self.stats,
            "cycles": self.cycles,
        }

    def seal(self) -> "AllocationResponse":
        """Stamp ``result_digest`` from the current result payload."""
        digest = hashlib.sha256(
            canonical_json(self.result_payload()).encode()
        ).hexdigest()
        self.result_digest = digest
        return self

    def to_wire(self) -> dict:
        return {
            "type": "allocation",
            "protocol": self.protocol,
            "id": self.id,
            "ok": self.ok,
            "allocator": self.allocator,
            "effective_allocator": self.effective_allocator,
            "degraded": self.degraded,
            "cached": self.cached,
            "fingerprint": self.fingerprint,
            "result_digest": self.result_digest,
            "code": self.code,
            "stats": self.stats,
            "cycles": self.cycles,
            "error": self.error,
            "timings": self.timings,
            "session_digest": self.session_digest,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "AllocationResponse":
        if not isinstance(wire, dict):
            raise ServiceError(f"response must be a JSON object, got {wire!r}")
        return cls(
            id=str(wire.get("id", "")),
            ok=bool(wire.get("ok", False)),
            allocator=wire.get("allocator", ""),
            effective_allocator=wire.get("effective_allocator", ""),
            degraded=bool(wire.get("degraded", False)),
            cached=bool(wire.get("cached", False)),
            fingerprint=wire.get("fingerprint", ""),
            result_digest=wire.get("result_digest", ""),
            code=wire.get("code", ""),
            stats=wire.get("stats", {}),
            cycles=wire.get("cycles", {}),
            error=wire.get("error", ""),
            timings=wire.get("timings", {}),
            session_digest=wire.get("session_digest", ""),
            protocol=wire.get("protocol", PROTOCOL_VERSION),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_wire())

    def for_cache(self) -> "AllocationResponse":
        """A copy stripped of per-request metadata, safe to share."""
        return replace(self, id="", cached=False, timings={},
                       session_digest="")

    @classmethod
    def error_response(cls, request_id: str, message: str,
                       allocator: str = "") -> "AllocationResponse":
        return cls(id=request_id, ok=False, allocator=allocator,
                   error=message)


def stats_to_dict(stats: AllocationStats) -> dict:
    """JSON-safe rendering of :class:`AllocationStats` (sorted class keys)."""

    def by_class(table: dict) -> dict:
        return {rc.value: table[rc] for rc in sorted(table, key=lambda
                                                     rc: rc.value)}

    return {
        "allocator": stats.allocator,
        "rounds": stats.rounds,
        "moves_before": stats.moves_before,
        "moves_before_weighted": stats.moves_before_weighted,
        "moves_eliminated": stats.moves_eliminated,
        "moves_eliminated_weighted": stats.moves_eliminated_weighted,
        "moves_remaining": stats.moves_remaining,
        "spill_loads": stats.spill_loads,
        "spill_stores": stats.spill_stores,
        "spill_instructions": stats.spill_instructions,
        "spill_weighted": stats.spill_weighted,
        "coalesced_count": stats.coalesced_count,
        "biased_hits": stats.biased_hits,
        "spilled_webs": stats.spilled_webs,
        "nonvolatile_used": by_class(stats.nonvolatile_used),
        "moves_before_class": by_class(stats.moves_before_class),
        "moves_eliminated_class": by_class(stats.moves_eliminated_class),
        "spills_class": by_class(stats.spills_class),
    }


def cycles_to_dict(report: CycleReport) -> dict:
    """JSON-safe rendering of :class:`CycleReport`, with the total."""
    return {
        "op_cycles": report.op_cycles,
        "move_cycles": report.move_cycles,
        "spill_cycles": report.spill_cycles,
        "caller_save_cycles": report.caller_save_cycles,
        "callee_save_cycles": report.callee_save_cycles,
        "byte_penalty_cycles": report.byte_penalty_cycles,
        "call_overhead_cycles": report.call_overhead_cycles,
        "paired_saved_cycles": report.paired_saved_cycles,
        "paired_loads_fused": report.paired_loads_fused,
        "moves_remaining": report.moves_remaining,
        "spill_instructions": report.spill_instructions,
        "total": report.total,
    }
