"""One registry for every JSON document the repo emits.

The shapes leaving the system: ``allocation`` (``alloc --json``,
``submit --json``, and every server response line), ``comparison``
(``compare --json`` / ``bench --json``), ``stats`` (the ``stats``
control reply), ``final_stats`` (the snapshot ``serve`` dumps on
shutdown), ``cluster_stats`` (the router's snapshot), and
``policy_tuning`` (the offline tuner's report).  Historically each was
assembled at its call site; they now all come from here, stamped with a
shared ``schema`` version so downstream consumers can detect shape
changes without guessing from the fields.

``schema`` versions the *envelope shapes* in this module; it is
orthogonal to ``protocol`` (the request/response conversation version,
:data:`repro.service.protocol.PROTOCOL_VERSION`), which the documents
keep carrying unchanged.
"""

from __future__ import annotations

from repro.service.protocol import PROTOCOL_VERSION, AllocationResponse

__all__ = [
    "SCHEMA_VERSION",
    "SCHEMA_TYPES",
    "SERVICE_COUNTERS",
    "allocation_payload",
    "comparison_payload",
    "stats_payload",
    "final_stats_payload",
    "cluster_stats_payload",
    "policy_tuning_payload",
    "dataflow_backend_fields",
]

#: Bumped whenever any emitted document shape changes incompatibly.
#: v1: first versioned emission (previously the documents carried only
#: ``protocol``).
#: v2: ``cluster_stats`` joins the registry (the ``repro cluster``
#: stats/final snapshot) and ``stats`` documents are guaranteed to carry
#: every :data:`SERVICE_COUNTERS` counter plus the ``worker_pool`` and
#: ``alloc_phases`` sections.
#: v3: ``allocation`` documents carry ``session_digest`` (the
#: ``allocate_delta`` edit-chain token, empty off the delta path) and
#: the counter contract gains the ``delta_requests`` / ``session_*``
#: family plus the ``session_hit_ratio`` metrics field.
#: v4: ``policy_tuning`` joins the registry (``benchmarks/
#: tune_policy.py``'s report: per-family default/candidate measurements
#: and the winning :class:`repro.policy.Policy`).
SCHEMA_VERSION = 4

#: Every ``type`` tag this module can emit.
SCHEMA_TYPES = ("allocation", "comparison", "stats", "final_stats",
                "cluster_stats", "policy_tuning")

#: Counters every ``stats``/``final_stats`` metrics section must carry —
#: the contract the schema version vouches for (asserted by the
#: round-trip tests so a renamed counter forces a coherent bump here).
SERVICE_COUNTERS = (
    "requests_total",
    "responses_ok",
    "responses_error",
    "cache_hits",
    "cache_misses",
    "degraded_total",
    "deadline_misses",
    "rejected_total",
    "batches_total",
    "worker_deadline_kills",
    "delta_requests",
    "session_hits",
    "session_misses",
    "session_patches_value",
    "session_patches_struct",
    "session_rebuilds",
)


def _tagged(payload: dict) -> dict:
    payload["schema"] = SCHEMA_VERSION
    return payload


def dataflow_backend_fields() -> dict:
    """The dataflow-backend stamp benchmark reports carry.

    ``backend`` is what the kernels compute with (``validate`` mode
    computes with — and returns — the numpy results, so it stamps
    ``numpy``); ``numpy_version`` is ``None`` when numpy is absent.
    Perf trajectories are only comparable within one backend, so the
    regression gates refuse to compare reports whose backends differ.
    """
    from repro.analysis.matrix import active_backend, numpy_version

    return {
        "backend": active_backend(),
        "numpy_version": numpy_version(),
    }


def allocation_payload(response: AllocationResponse) -> dict:
    """The wire/CLI form of one allocation response."""
    return _tagged(response.to_wire())


def comparison_payload(machine_desc: dict, results: dict,
                       bench: str | None = None) -> dict:
    """``compare``/``bench`` --json: one sealed response per allocator.

    ``results`` maps allocator name -> allocation payload (each entry is
    itself an :func:`allocation_payload`-shaped document).
    """
    payload = _tagged({
        "type": "comparison",
        "protocol": PROTOCOL_VERSION,
        "machine": machine_desc,
        "results": results,
    })
    if bench is not None:
        payload["bench"] = bench
    return payload


def stats_payload(queue_depth: int, metrics: dict,
                  cache: dict | None = None) -> dict:
    """The ``stats`` control reply of a running server."""
    payload = _tagged({
        "type": "stats",
        "protocol": PROTOCOL_VERSION,
        "queue_depth": queue_depth,
        "metrics": metrics,
    })
    if cache is not None:
        payload["cache"] = cache
    return payload


def final_stats_payload(metrics: dict, cache: dict) -> dict:
    """The snapshot ``serve`` prints when it shuts down."""
    return _tagged({
        "type": "final_stats",
        "protocol": PROTOCOL_VERSION,
        "metrics": metrics,
        "cache": cache,
    })


def policy_tuning_payload(tuner: dict, families: dict,
                          best: dict | None = None) -> dict:
    """The offline policy tuner's report (``BENCH_policy_tuning.json``).

    ``tuner`` describes the search (seed, budget, workload snapshot,
    runtime knobs); ``families`` maps family name -> that family's
    default/tuned measurements and deltas; ``best`` is the winning
    policy's ``to_dict()`` form plus its digest (absent when no
    candidate beat the default).
    """
    payload = _tagged({
        "type": "policy_tuning",
        "protocol": PROTOCOL_VERSION,
        "tuner": tuner,
        "families": families,
    })
    if best is not None:
        payload["best"] = best
    return payload


def cluster_stats_payload(router: dict, shards: list,
                          supervisor: dict | None = None,
                          shard_stats: dict | None = None) -> dict:
    """The ``stats`` reply (and shutdown snapshot) of a cluster router.

    ``router`` is a :class:`~repro.cluster.router.ClusterMetrics`
    snapshot, ``shards`` the health table, ``supervisor`` the process
    topology (pids, cache-peer counters) when the shards are locally
    supervised, and ``shard_stats`` maps shard index -> that shard's own
    ``stats`` document (each entry is itself a ``stats``-shaped payload,
    or None when the probe failed).
    """
    payload = _tagged({
        "type": "cluster_stats",
        "protocol": PROTOCOL_VERSION,
        "router": router,
        "shards": shards,
    })
    if supervisor is not None:
        payload["supervisor"] = supervisor
    if shard_stats is not None:
        payload["shard_stats"] = shard_stats
    return payload
