"""Per-function allocation sessions for the edit-driven incremental path.

A session retains what a from-scratch allocation throws away: the
prepared+renumbered *reference* form of each function and its round-0
analyses.  When the next edit of the same source arrives, the session
diffs the new raw body against the retained raw body
(:func:`repro.ir.diff.diff_functions`) and takes the cheapest sound
path down a three-rung ladder:

* **value** — the edit is *transparent* (constant values, opcodes,
  load/store offsets inside matched blocks): every prepare/renumber
  artifact of the base carries over verbatim, so the session patches
  the changed values onto a clone of the retained reference through a
  position map and reuses the retained analyses wholesale.  The
  position map is built once per reference from instruction *identity*:
  raw instructions are mutated in place by SSA/DCE/lowering, so an
  ``id()``-keyed scan of the prepared function recovers where each raw
  instruction landed (instructions dropped by DCE simply have no entry
  — deadness is value-independent, so skipping their edits is exact).
* **struct** — the edit is structural but block-local: the new body is
  prepared and renumbered from scratch, diffed against the retained
  reference in register-pairing mode, and the retained analyses are
  patched through the delta
  (:func:`repro.analysis.incremental.apply_function_delta`).
* **rebuild** — the delta is inconsistent, touches too much of the
  function, or a patch precondition fails: full re-prepare and
  re-analysis, which is exactly the from-scratch path.

Whatever the rung, allocation itself runs on a clone of the reference
with ``assume_renumbered=True``, so the result is byte-identical to a
from-scratch run (renumbering is deterministic).  The
``REPRO_INCREMENTAL_EDITS`` guard (``AllocationOptions
.incremental_edits``) selects ``off`` (always rebuild), ``on``, or
``validate`` — the latter recomputes everything from scratch and raises
:class:`~repro.errors.AllocationError` on any divergence, in analyses,
rendered code, stats, or cycle estimates.

:class:`SessionStore` holds :class:`ModuleSession` objects keyed by the
*base digest* — the same module+machine content fingerprint the
scheduler's prepared-module cache uses — with LRU eviction, and
:func:`execute_delta_request` is the ``allocate_delta`` compute path
mirroring :func:`repro.service.scheduler.execute_request`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.incremental import compare_analyses
from repro.analysis.renumber import renumber
from repro.errors import AllocationError
from repro.ir.clone import clone_function
from repro.ir.diff import diff_functions
from repro.ir.function import Function
from repro.ir.parser import parse_module
from repro.ir.printer import print_function, print_module
from repro.ir.validate import validate_function
from repro.policy import DEFAULT_POLICY, Policy
from repro.profiling import phase
from repro.regalloc.base import (
    AllocationOptions,
    AllocationResult,
    AllocationStats,
    Allocator,
    RoundAnalyses,
    allocate_function,
    compute_round_analyses,
)
from repro.regalloc.verify import verify_allocation
from repro.reporting import canonical_json
from repro.service.cache import request_fingerprint
from repro.service.protocol import (
    AllocationRequest,
    AllocationResponse,
    cycles_to_dict,
    machine_descriptor,
    stats_to_dict,
)
from repro.sim.cycles import CycleReport, estimate_cycles
from repro.target.machine import TargetMachine

__all__ = [
    "FunctionSession",
    "ModuleSession",
    "SessionStore",
    "IncrementalAllocation",
    "allocate_function_incremental",
    "execute_delta_request",
]


def _prepare_ref(raw: Function, machine: TargetMachine):
    """Prepare+renumber a clone of ``raw``; map raw positions into it.

    Returns ``(ref, posmap)`` where ``posmap`` maps ``(label, index)``
    of a raw instruction to the ``(label, index)`` where that same
    object sits in the reference (absent when DCE dropped it).  The
    strong ``originals`` list pins every raw instruction alive through
    the scan so a recycled ``id()`` can never alias a new instruction
    created by SSA construction or lowering.
    """
    # Deferred import: pipeline imports regalloc.base like we do, but
    # the service layer is allowed to sit on top of it, not inside it.
    from repro.pipeline import prepare_function

    work = clone_function(raw)
    originals = [instr for blk in work.blocks for instr in blk.instrs]
    premap = {
        id(instr): (blk.label, i)
        for blk in work.blocks
        for i, instr in enumerate(blk.instrs)
    }
    prepare_function(work, machine)
    renumber(work)
    posmap: dict[tuple[str, int], tuple[str, int]] = {}
    for blk in work.blocks:
        for i, instr in enumerate(blk.instrs):
            raw_pos = premap.get(id(instr))
            if raw_pos is not None:
                posmap[raw_pos] = (blk.label, i)
    del originals
    return work, posmap


@dataclass(eq=False)
class FunctionSession:
    """Retained state of one function: raw body, reference, analyses."""

    name: str
    #: the raw (parsed, un-prepared) body the next edit is diffed against
    raw: Function
    #: prepared + renumbered reference the analyses describe; never
    #: mutated — allocation and value-patching always work on clones
    ref: Function
    analyses: RoundAnalyses
    #: raw ``(label, index)`` -> reference ``(label, index)``
    posmap: dict
    #: ``(allocator, result-shaping options)`` -> ``(result, cycles)``
    #: for *this exact body*; shared across identical advances (an
    #: unchanged function in a multi-function module skips allocation
    #: outright), dropped on any edit
    memo: dict = field(default_factory=dict)

    @classmethod
    def build(cls, parsed: Function, machine: TargetMachine,
              policy: Policy = DEFAULT_POLICY) -> "FunctionSession":
        """A fresh session for ``parsed`` (the from-scratch rung)."""
        raw = clone_function(parsed)
        ref, posmap = _prepare_ref(raw, machine)
        analyses = compute_round_analyses(ref, collect_deltas=True,
                                          policy=policy)
        return cls(name=parsed.name, raw=raw, ref=ref, analyses=analyses,
                   posmap=posmap)

    def advance(self, parsed: Function,
                machine: TargetMachine) -> tuple["FunctionSession", str]:
        """The session for the edited body, plus the ladder rung taken.

        ``parsed`` is the new raw body; the rung is ``"value"``
        (transparent edit, analyses shared), ``"struct"`` (analyses
        patched through a renumbered-mode delta), or ``"rebuild"``
        (full re-prepare).  ``self`` is left usable — other edits may
        still branch off the same base digest.
        """
        delta = diff_functions(self.raw, parsed)
        if delta.transparent:
            validate_function(parsed)
            if delta.identical:
                return FunctionSession(
                    name=self.name, raw=clone_function(parsed),
                    ref=self.ref, analyses=self.analyses,
                    posmap=self.posmap, memo=self.memo,
                ), "value"
            ref = clone_function(self.ref)
            with phase("patch"):
                blocks = {blk.label: blk for blk in ref.blocks}
                for edit in delta.value_edits:
                    pos = self.posmap.get((edit.label, edit.index))
                    if pos is None:
                        continue  # DCE'd; deadness is value-independent
                    label, index = pos
                    setattr(blocks[label].instrs[index], edit.attr,
                            edit.new)
            return FunctionSession(
                name=self.name, raw=clone_function(parsed), ref=ref,
                analyses=self.analyses, posmap=self.posmap,
            ), "value"
        if not delta.consistent:
            return FunctionSession.build(parsed, machine,
                                         self.analyses.policy), "rebuild"
        raw = clone_function(parsed)
        ref, posmap = _prepare_ref(raw, machine)
        rdelta = diff_functions(self.ref, ref, pair_registers=True)
        analyses = None
        if rdelta.consistent:
            analyses = self.analyses.apply_edit_delta(ref, rdelta)
        rung = "struct"
        if analyses is None:
            analyses = compute_round_analyses(ref, collect_deltas=True,
                                              policy=self.analyses.policy)
            rung = "rebuild"
        return FunctionSession(name=self.name, raw=raw, ref=ref,
                               analyses=analyses, posmap=posmap), rung


@dataclass(eq=False)
class IncrementalAllocation:
    """One :func:`allocate_function_incremental` outcome."""

    result: AllocationResult
    cycles: CycleReport
    session: FunctionSession
    #: ladder rung taken: ``new`` (no base session), ``value``,
    #: ``struct``, or ``rebuild``
    path: str


def _allocate_on(session: FunctionSession, machine: TargetMachine,
                 allocator: Allocator, options: AllocationOptions):
    """Allocate a clone of the session's reference; verify + cycles."""
    func = clone_function(session.ref)
    result = allocate_function(func, machine, allocator, options=options,
                               round0=session.analyses,
                               assume_renumbered=True)
    if options.verify:
        verify_allocation(func, machine)
    return result, estimate_cycles(func, machine)


def _validate_session(session: FunctionSession, parsed: Function,
                      machine: TargetMachine, allocator: Allocator,
                      options: AllocationOptions,
                      result: AllocationResult,
                      cycles: CycleReport) -> None:
    """Recompute ``parsed`` from scratch; raise on any divergence."""
    from repro.pipeline import prepare_function

    prepared = prepare_function(clone_function(parsed), machine)
    ref = clone_function(prepared)
    renumber(ref)
    fresh = compute_round_analyses(ref, collect_deltas=True,
                                   policy=options.policy)
    problems = compare_analyses(session.analyses, fresh)
    if problems:
        raise AllocationError(
            f"incremental edit analyses diverged for {session.name!r}: "
            + "; ".join(problems)
        )
    func = clone_function(prepared)
    scratch = allocate_function(func, machine, allocator, options=options,
                                round0=fresh)
    if options.verify:
        verify_allocation(func, machine)
    if print_function(result.func) != print_function(func):
        raise AllocationError(
            f"incremental edit allocation diverged from scratch "
            f"for {session.name!r}"
        )
    if stats_to_dict(result.stats) != stats_to_dict(scratch.stats):
        raise AllocationError(
            f"incremental edit stats diverged from scratch "
            f"for {session.name!r}"
        )
    if cycles_to_dict(cycles) != cycles_to_dict(
            estimate_cycles(func, machine)):
        raise AllocationError(
            f"incremental edit cycle estimate diverged from scratch "
            f"for {session.name!r}"
        )


def allocate_function_incremental(
    session: FunctionSession | None,
    func: Function,
    machine: TargetMachine,
    allocator: Allocator,
    options: AllocationOptions | None = None,
) -> IncrementalAllocation:
    """Allocate raw ``func``, reusing ``session`` state where sound.

    ``session`` is the :class:`FunctionSession` of the *previous*
    version of the function (``None`` for the first sighting);
    ``func`` is its new raw (parsed, un-prepared) body.  The returned
    :class:`IncrementalAllocation` carries the allocation, the cycle
    estimate, the *new* session to retain for the next edit, and the
    ladder rung taken.  ``options.incremental_edits`` selects the mode:
    ``off`` always rebuilds, ``validate`` additionally recomputes from
    scratch and raises :class:`AllocationError` on divergence.  The
    result is byte-identical to a from-scratch
    :func:`~repro.regalloc.base.allocate_function` run in every mode.
    """
    if options is None:
        options = AllocationOptions.from_env()
    mode = options.incremental_edits
    with phase("session"):
        # A session built under a different policy carries analyses
        # (spill costs and everything derived from them) that are not
        # this request's; retained state is only sound policy-for-policy.
        stale_policy = (session is not None
                        and session.analyses.policy != options.policy)
        if session is None or mode == "off" or stale_policy:
            fresh = FunctionSession.build(func, machine, options.policy)
            path = "new" if session is None else "rebuild"
        else:
            fresh, path = session.advance(func, machine)
    memo_key = (allocator.name, options.max_rounds, options.rematerialize,
                options.verify, options.policy.digest())
    hit = fresh.memo.get(memo_key)
    if hit is not None:
        result, cycles = hit
    else:
        result, cycles = _allocate_on(fresh, machine, allocator, options)
        fresh.memo[memo_key] = (result, cycles)
    if mode == "validate" and session is not None:
        _validate_session(fresh, func, machine, allocator, options,
                          result, cycles)
    return IncrementalAllocation(result=result, cycles=cycles,
                                 session=fresh, path=path)


@dataclass(eq=False)
class ModuleSession:
    """Sessions of every function of one module version, under one digest."""

    digest: str
    #: canonical machine descriptor; a session only serves requests
    #: naming the machine it was built for
    machine_key: str
    functions: dict[str, FunctionSession] = field(default_factory=dict)


def session_digest(normalized_ir: str, machine: TargetMachine) -> str:
    """A fresh edit chain's store token: content digest of IR+machine.

    Only the chain *start* (no ``base_digest``) mints a token; later
    edits keep reusing it, so one key follows the whole stream.
    Allocator and options are deliberately excluded — one retained
    session serves every allocator, exactly like the scheduler's
    prepared-module cache (same fingerprint function, same key).
    """
    return request_fingerprint(normalized_ir, machine, "", verify=False)


class SessionStore:
    """LRU store of :class:`ModuleSession` objects keyed by base digest."""

    def __init__(self, capacity: int = 32):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[str, ModuleSession]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str,
            machine_key: str | None = None) -> ModuleSession | None:
        entry = self._entries.get(digest)
        if entry is None or (machine_key is not None
                             and entry.machine_key != machine_key):
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, session: ModuleSession) -> None:
        self._entries[digest] = session
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def snapshot(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def execute_delta_request(
    request: AllocationRequest,
    store: SessionStore,
    options: AllocationOptions | None = None,
    *,
    effective_allocator: str | None = None,
    info: dict | None = None,
) -> AllocationResponse:
    """Run one ``allocate_delta`` request against a session store.

    Mirrors :func:`repro.service.scheduler.execute_request`: same
    response shape, same ``result_digest`` input — the response is
    byte-identical to the full path for the same IR, plus a
    ``session_digest``: the token naming the store entry retained for
    the new module version, which the client echoes as ``base_digest``
    on its next edit.  The token is *stable along an edit chain* — a
    known ``base_digest`` is reused as the storage key, and an unknown
    one adopts the client's token after a one-time scratch build — so a
    digest-sharded router that routes ``allocate_delta`` lines by
    ``base_digest`` keeps a keystroke stream pinned to the shard
    holding its session.  Correctness never depends on the lookup:
    whatever (or nothing) the token resolves to, the differ reconciles
    the retained state with the new body or rebuilds from scratch.
    ``info``, when given, is filled with ``base_hit`` and the per-rung
    ``paths`` counts for the caller's metrics.
    """
    # Deferred import: the scheduler imports this module for its store.
    from repro.service.scheduler import ALLOCATOR_FACTORIES

    request.validate()
    name = effective_allocator or request.allocator
    if options is None:
        options = request.options
    machine = request.machine.build()
    module = parse_module(request.ir)
    machine_key = canonical_json(machine_descriptor(machine))
    if not options.policy.is_default():
        # Retained sessions are policy-specific (see
        # allocate_function_incremental); keying the store entry by the
        # policy too keeps a chain from thrashing another policy's
        # sessions under the same token.
        machine_key += "+policy:" + options.policy.digest()
    base = None
    if request.base_digest:
        base = store.get(request.base_digest, machine_key)
    allocator = ALLOCATOR_FACTORIES[name]()
    stats = AllocationStats(allocator=allocator.name)
    cycles = CycleReport()
    results: list[AllocationResult] = []
    sessions: dict[str, FunctionSession] = {}
    paths: dict[str, int] = {}
    for func in module.functions:
        prev = base.functions.get(func.name) if base is not None else None
        out = allocate_function_incremental(prev, func, machine, allocator,
                                            options)
        results.append(out.result)
        stats.merge(out.result.stats)
        cycles.add(out.cycles)
        sessions[func.name] = out.session
        paths[out.path] = paths.get(out.path, 0) + 1
    digest = request.base_digest or session_digest(
        print_module(module), machine)
    store.put(digest, ModuleSession(digest=digest, machine_key=machine_key,
                                    functions=sessions))
    if info is not None:
        info["base_hit"] = base is not None
        info["paths"] = paths
    response = AllocationResponse(
        id=request.id,
        ok=True,
        allocator=request.allocator,
        effective_allocator=name,
        degraded=name != request.allocator,
        code="\n\n".join(print_function(r.func) for r in results),
        stats=stats_to_dict(stats),
        cycles=cycles_to_dict(cycles),
    )
    response = response.seal()
    response.session_digest = digest
    return response
