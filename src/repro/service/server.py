"""Line-delimited-JSON allocation server (TCP and stdio front ends).

Wire format: one JSON object per line, both directions.  Messages are
dispatched on their ``type`` field:

* ``allocate`` (default) — an :class:`AllocationRequest`; answered with
  an :class:`AllocationResponse` line once the scheduler finishes it.
* ``allocate_delta`` — the edit-stream variant (session token + new
  body); same request/response classes, served by the scheduler's
  session store instead of the content-addressed cache.
* ``ping`` — liveness probe, answered with ``{"type": "pong"}``.
* ``stats`` — scheduler/cache/metrics snapshot.
* ``shutdown`` — acknowledge, then stop the server (the final metrics
  snapshot is also dumped to the log stream on shutdown).

The TCP front end is a small asyncio loop: connections are cheap and
concurrent, while the actual allocation work happens on the scheduler's
worker (and, inside it, the pipeline's process pool), so a slow
allocation never blocks other clients' cache hits or stats probes.
``serve_stdio`` is the same dispatcher over stdin/stdout for
subprocess-style embedding; it processes one line at a time.
:class:`ServerThread` runs the TCP server on a background thread — the
in-process harness the tests and the throughput bench drive.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import IO

from repro.reporting import canonical_json
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AllocationRequest,
    AllocationResponse,
)
from repro.service.schema import allocation_payload, stats_payload
from repro.service.scheduler import Scheduler

__all__ = ["AllocationServer", "ServerThread", "serve_stdio"]


def _dispatch_control(message: dict, scheduler: Scheduler) -> dict | None:
    """Handle non-allocate message types; None means 'allocate'."""
    kind = message.get("type", "allocate")
    if kind in ("allocate", "allocate_delta"):
        return None
    if kind == "ping":
        return {"type": "pong", "protocol": PROTOCOL_VERSION}
    if kind == "stats":
        cache = (scheduler.cache.snapshot()
                 if scheduler.cache is not None else None)
        return stats_payload(scheduler.queue_depth,
                             scheduler.metrics.snapshot(), cache)
    if kind == "shutdown":
        return {"type": "shutdown", "protocol": PROTOCOL_VERSION, "ok": True}
    return {"type": "error", "protocol": PROTOCOL_VERSION,
            "error": f"unknown message type {kind!r}"}


def _error_line(message: str, request_id: str = "") -> dict:
    return allocation_payload(
        AllocationResponse.error_response(request_id, message))


class AllocationServer:
    """Asyncio TCP front end over one scheduler."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = 0):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        # Idle keep-alive connections are parked in readline(); cancel
        # them so the loop can close without destroying pending tasks.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._handle_line(line)
                writer.write((canonical_json(reply) + "\n").encode())
                await writer.drain()
                if reply.get("type") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        try:
            message = json.loads(line)
        except ValueError as err:
            return _error_line(f"malformed JSON: {err}")
        if not isinstance(message, dict):
            return _error_line("request must be a JSON object")
        control = _dispatch_control(message, self.scheduler)
        if control is not None:
            if control.get("type") == "shutdown":
                self.request_shutdown()
            return control
        try:
            request = AllocationRequest.from_wire(message)
        except Exception as err:
            return _error_line(str(err), str(message.get("id", "")))
        future = self.scheduler.submit(request)
        response = await asyncio.wrap_future(future)
        return allocation_payload(response)


def serve_stdio(scheduler: Scheduler, in_stream: IO[str],
                out_stream: IO[str]) -> None:
    """The same protocol over text streams, one line at a time."""
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as err:
            reply = _error_line(f"malformed JSON: {err}")
        else:
            control = _dispatch_control(message, scheduler)
            if control is not None:
                reply = control
            else:
                try:
                    request = AllocationRequest.from_wire(message)
                except Exception as err:
                    reply = _error_line(str(err),
                                        str(message.get("id", "")))
                else:
                    reply = allocation_payload(
                        scheduler.submit(request).result())
        print(canonical_json(reply), file=out_stream, flush=True)
        if reply.get("type") == "shutdown":
            break


class ServerThread:
    """A TCP server on a background thread (tests, benches, CLI serve)."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = 0):
        self.scheduler = scheduler
        self.server = AllocationServer(scheduler, host, port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def start(self) -> tuple[str, int]:
        """Start scheduler + server; returns the bound (host, port)."""
        self.scheduler.start()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-server", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        return self.server.host, self.server.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_until_shutdown()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def join(self, timeout: float | None = None) -> None:
        """Block until the server shuts down (a ``shutdown`` request)."""
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.scheduler.stop()
