"""Blocking client for the LDJSON allocation server.

One short-lived connection per call keeps the client trivially
thread-safe — the closed-loop load generator in
``benchmarks/bench_service_throughput.py`` runs many of these in
parallel — at the cost of a TCP handshake per request, which is noise
next to an allocation.
"""

from __future__ import annotations

import json
import socket

from repro.errors import ServiceError
from repro.reporting import canonical_json
from repro.service.protocol import AllocationRequest, AllocationResponse

__all__ = ["ServiceClient"]


class ServiceClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, message: dict) -> dict:
        """Send one JSON message, return the JSON reply."""
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall((canonical_json(message) + "\n").encode())
                reply = self._read_line(sock)
        except OSError as err:
            raise ServiceError(
                f"cannot reach allocation server at "
                f"{self.host}:{self.port}: {err}"
            ) from err
        try:
            return json.loads(reply)
        except ValueError as err:
            raise ServiceError(f"malformed server reply: {err}") from err

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        line = b"".join(chunks)
        if not line:
            raise ServiceError("server closed the connection mid-request")
        return line

    def allocate(self, request: AllocationRequest) -> AllocationResponse:
        return AllocationResponse.from_wire(self.request(request.to_wire()))

    def ping(self) -> bool:
        return self.request({"type": "ping"}).get("type") == "pong"

    def stats(self) -> dict:
        return self.request({"type": "stats"})

    def shutdown(self) -> dict:
        return self.request({"type": "shutdown"})
