"""Allocation-as-a-service: protocol, cache, scheduler, server, metrics.

The service layer turns the one-shot pipeline into a long-lived server:
clients submit IR (or a benchmark name) plus a machine preset, an
allocator, and an optional deadline; the scheduler batches requests onto
the process-pool workers, answers repeats from a content-addressed
cache, and degrades gracefully (``full`` -> ``chaitin``) under load or
past-deadline instead of failing.  Non-degraded responses are
byte-identical to a direct :func:`repro.pipeline.allocate_module` run.
"""

from repro.service.cache import (
    CacheBackend,
    DiskCacheBackend,
    ResultCache,
    request_fingerprint,
)
from repro.service.client import ServiceClient
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    AllocationRequest,
    AllocationResponse,
    MachineSpec,
)
from repro.service.schema import SCHEMA_VERSION
from repro.service.scheduler import Scheduler, execute_request
from repro.service.server import AllocationServer, ServerThread, serve_stdio

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "SCHEMA_VERSION",
    "AllocationRequest",
    "AllocationResponse",
    "MachineSpec",
    "CacheBackend",
    "DiskCacheBackend",
    "ResultCache",
    "request_fingerprint",
    "ServiceMetrics",
    "Scheduler",
    "execute_request",
    "AllocationServer",
    "ServerThread",
    "serve_stdio",
    "ServiceClient",
]
