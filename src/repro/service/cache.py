"""Content-addressed allocation cache with LRU bounds and pluggable tiers.

The key of an entry is a fingerprint of *what determines the result*:
the normalized IR text (parse -> print round-trip, so formatting and
comment noise never split the cache), the machine's full register model,
the allocator name, and the verify flag.  Two requests that would
allocate identically therefore share one entry — including a ``bench``
request and an ``ir`` request carrying the same module text.

Entries store the response with per-request metadata stripped
(:meth:`AllocationResponse.for_cache`), so a hit can be re-addressed to
any request id.  The in-memory layer is a bounded LRU; behind it sits an
optional :class:`CacheBackend` — the second tier consulted only on a
memory miss and written through on every store.  Two backends ship:

* :class:`DiskCacheBackend` — the historical on-disk layer under
  ``~/.cache/repro`` (override with ``disk_dir=``, or
  ``AllocationOptions.cache_dir`` — which ``from_env`` fills from
  ``$REPRO_CACHE_DIR`` at the serve entry points), persisting entries
  across server restarts;
* :class:`repro.cluster.cachepeer.PeerCacheBackend` — a TCP client of a
  shared cache-peer server, so the shards of a cluster share hits.

All backend I/O failures degrade to cache misses — the cache must never
take the service down.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

from repro.regalloc.base import AllocationOptions
from repro.reporting import canonical_json
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AllocationResponse,
    machine_descriptor,
)
from repro.target.machine import TargetMachine

__all__ = [
    "ResultCache",
    "CacheBackend",
    "DiskCacheBackend",
    "request_fingerprint",
    "default_cache_dir",
]


def request_fingerprint(normalized_ir: str, machine: TargetMachine,
                        allocator: str, verify: bool = True,
                        options: "AllocationOptions | None" = None) -> str:
    """The content address of one allocation request.

    Only *result-relevant* options enter the key: ``max_rounds``,
    ``rematerialize``, and a non-default heuristic ``policy`` change the
    allocation, so they are hashed; execution policy (``jobs``,
    ``incremental``, deadlines) is result-neutral by construction and
    deliberately excluded — a cached entry must be valid whatever
    machinery computed it.

    A *default* policy adds nothing to the payload: its results are
    byte-identical to the pre-policy constants, so fingerprints (and
    therefore the cached entries of all existing traffic) are unchanged.
    A non-default policy joins as its canonical digest.
    """
    policy = None
    if options is not None:
        verify = options.verify
        max_rounds = options.max_rounds
        rematerialize = options.rematerialize
        if not options.policy.is_default():
            policy = options.policy
    else:
        defaults = AllocationOptions()
        max_rounds = defaults.max_rounds
        rematerialize = defaults.rematerialize
    fields = {
        "protocol": PROTOCOL_VERSION,
        "ir": normalized_ir,
        "machine": machine_descriptor(machine),
        "allocator": allocator,
        "verify": verify,
        "max_rounds": max_rounds,
        "rematerialize": rematerialize,
    }
    if policy is not None:
        fields["policy"] = policy.digest()
    payload = canonical_json(fields)
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir(options: AllocationOptions | None = None) -> Path:
    """Disk-cache directory: ``options.cache_dir``, else ``~/.cache/repro``.

    This function is deliberately *pure* with respect to the
    environment: ``$REPRO_CACHE_DIR`` is folded into ``options`` by
    :meth:`AllocationOptions.from_env` at the composition roots (the
    ``serve`` CLIs), never consulted here.  The cache layer reading the
    environment behind the options surface was a bug — an options value
    constructed without ``from_env`` silently picked up the variable.
    """
    if options is not None and options.cache_dir:
        return Path(options.cache_dir).expanduser()
    return Path("~/.cache/repro").expanduser()


class CacheBackend:
    """Second cache tier behind the in-memory LRU.

    Implementations must be safe to call from the scheduler's worker
    thread and must *never raise* out of ``get``/``put`` — a broken
    backend is a cache miss, not a service outage.  Entries cross the
    backend boundary as :class:`AllocationResponse` objects with
    per-request metadata already stripped.
    """

    name = "none"

    def get(self, key: str) -> AllocationResponse | None:
        raise NotImplementedError

    def put(self, key: str, entry: AllocationResponse) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {"backend": self.name}

    def close(self) -> None:
        """Release any connections/handles; idempotent."""


class DiskCacheBackend(CacheBackend):
    """One JSON file per entry under ``root`` (atomic replace writes)."""

    name = "disk"

    def __init__(self, root: Path | str):
        self.root = Path(root).expanduser()
        self.hits = 0
        self.puts = 0
        self.errors = 0

    def path_for(self, key: str) -> Path:
        # Shard by prefix so a long-lived cache dir stays listable.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> AllocationResponse | None:
        try:
            path = self.path_for(key)
            if not path.is_file():
                return None
            wire = json.loads(path.read_text())
            entry = AllocationResponse.from_wire(wire)
            if entry.protocol != PROTOCOL_VERSION or not entry.ok:
                return None
            self.hits += 1
            return entry
        except (OSError, ValueError):
            self.errors += 1
            return None

    def put(self, key: str, entry: AllocationResponse) -> None:
        # Unique per-writer temp name: cluster shards share a cache
        # dir, and two processes storing the same entry through a fixed
        # ``<key>.tmp`` could interleave write/replace and publish a
        # torn file.  mkstemp keeps the temp on the same filesystem so
        # os.replace stays atomic.
        try:
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=f".{key[:8]}-",
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(entry.to_json() + "\n")
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
            self.puts += 1
        except OSError:
            self.errors += 1

    def snapshot(self) -> dict:
        return {
            "backend": self.name,
            "root": str(self.root),
            "hits": self.hits,
            "puts": self.puts,
            "errors": self.errors,
        }


class ResultCache:
    """Bounded LRU of allocation responses over an optional backend tier.

    ``disk_dir=`` remains the convenience spelling for the historical
    layout and simply constructs a :class:`DiskCacheBackend`; pass
    ``backend=`` for anything else.  The ``disk_hits``/``disk_errors``
    counters kept their names when the disk layer generalized — they now
    count *backend* hits/errors whatever the backend is.
    """

    def __init__(self, max_entries: int = 256,
                 disk_dir: Path | str | None = None,
                 backend: CacheBackend | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if disk_dir is not None and backend is not None:
            raise ValueError("pass disk_dir or backend, not both")
        self.max_entries = max_entries
        self.backend = (DiskCacheBackend(disk_dir) if disk_dir is not None
                        else backend)
        self._entries: "OrderedDict[str, AllocationResponse]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.disk_errors = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def disk_dir(self) -> Path | None:
        """The disk root when the backend is the disk layer, else None."""
        return getattr(self.backend, "root", None)

    def _disk_path(self, key: str) -> Path:
        """Compat shim: the disk backend's path for ``key``."""
        return self.backend.path_for(key)

    # -- lookup --------------------------------------------------------

    def get(self, key: str) -> AllocationResponse | None:
        """The cached response for ``key`` (shared copy), or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return replace(entry)
        entry = self._backend_get(key)
        if entry is not None:
            self.hits += 1
            self.disk_hits += 1
            self._remember(key, entry)
            return replace(entry)
        self.misses += 1
        return None

    def put(self, key: str, response: AllocationResponse) -> None:
        """Store ``response`` under ``key`` (metadata stripped)."""
        entry = response.for_cache()
        self._remember(key, entry)
        if self.backend is not None:
            before = self._backend_errors()
            self.backend.put(key, entry)
            self.disk_errors += self._backend_errors() - before

    def _remember(self, key: str, entry: AllocationResponse) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _backend_get(self, key: str) -> AllocationResponse | None:
        if self.backend is None:
            return None
        before = self._backend_errors()
        entry = self.backend.get(key)
        self.disk_errors += self._backend_errors() - before
        return entry

    def _backend_errors(self) -> int:
        return getattr(self.backend, "errors", 0)

    def close(self) -> None:
        if self.backend is not None:
            self.backend.close()

    # -- introspection -------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
            "evictions": self.evictions,
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
            "backend": (self.backend.snapshot()
                        if self.backend is not None else None),
        }
