"""Batching scheduler: bounded queue, deadlines, graceful degradation.

Requests enter a bounded queue (admission control: a full queue rejects
immediately rather than building unbounded backlog) and a worker drains
them in batches onto the existing pipeline — ``allocate_module`` with
its process-pool ``jobs`` fan-out.  Two load-shedding mechanisms, both
*graceful* (the client always gets a valid allocation, never an error):

* **deadline**: a request whose wait has already exceeded its
  ``deadline_s`` is downgraded along the degradation ladder
  (``full`` -> ``chaitin``) so it completes quickly;
* **overload**: requests admitted while the queue is above the
  high-watermark are downgraded the same way.

Degraded responses carry ``degraded: true`` and are *not* written to the
content-addressed cache — the cache only ever holds the allocator the
client asked for, which keeps cached responses byte-identical to a
direct :func:`repro.pipeline.allocate_module` run.

Batches reuse work across requests: the module parse/prepare step is
memoized per (module, machine) fingerprint, so fifty requests sweeping
eight allocators over one module prepare it once (and, through
``round0_analyses``, analyze it once).
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from time import perf_counter

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.errors import ReproError, ServiceError
from repro.exec import FaultPlan, JobDeadlineError, WorkerPool
from repro.exec.wire import machine_content_digest
from repro.ir.codec import module_digest
from repro.ir.function import Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_function, print_module
from repro.pipeline import ModuleAllocation, allocate_module, prepare_module
from repro.policy import DEFAULT_POLICY, Policy
from repro.profiling import profiled
from repro.regalloc import (
    AllocationOptions,
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    PriorityAllocator,
)
from repro.service.cache import ResultCache, request_fingerprint
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    AllocationRequest,
    AllocationResponse,
    cycles_to_dict,
    stats_to_dict,
)
from repro.service.session import SessionStore, execute_delta_request
from repro.workloads import make_benchmark

__all__ = [
    "ALLOCATOR_FACTORIES",
    "DEGRADATION_LADDER",
    "degrade_for",
    "render_allocation",
    "execute_request",
    "Scheduler",
]

#: The canonical name -> factory map, shared with the CLI.
ALLOCATOR_FACTORIES = {
    "chaitin": ChaitinAllocator,
    "briggs": BriggsAllocator,
    "iterated": IteratedCoalescingAllocator,
    "optimistic": OptimisticCoalescingAllocator,
    "callcost": CallCostAllocator,
    "priority": PriorityAllocator,
    "only-coalescing": lambda: PreferenceDirectedAllocator(
        PreferenceConfig.only_coalescing()
    ),
    "full": PreferenceDirectedAllocator,
}

#: Under pressure each allocator falls back one rung; ``chaitin`` is the
#: floor (cheapest round, no preference machinery) and never degrades.
#: The canonical copy lives on :class:`repro.policy.Policy` — this view
#: is the *default* policy's ladder, kept for import compatibility.
DEGRADATION_LADDER = DEFAULT_POLICY.ladder_map()


def degrade_for(allocator: str, policy: Policy = DEFAULT_POLICY) -> str:
    """One rung down ``policy``'s degradation ladder (floor: chaitin)."""
    return policy.ladder_map().get(allocator, "chaitin")


#: session ladder rung -> metrics counter (``new`` is a scratch build
#: too — the function had no retained session to advance).
_SESSION_RUNG_COUNTERS = {
    "value": "session_patches_value",
    "struct": "session_patches_struct",
    "new": "session_rebuilds",
    "rebuild": "session_rebuilds",
}


def resolve_module(request: AllocationRequest) -> Module:
    """The module a request names: parsed IR text or a benchmark."""
    if request.ir is not None:
        return parse_module(request.ir)
    return make_benchmark(request.bench)


def render_allocation(run: ModuleAllocation) -> str:
    """The allocated module exactly as ``print_module`` renders it."""
    return "\n\n".join(print_function(r.func) for r in run.results)


def execute_request(
    request: AllocationRequest,
    options: AllocationOptions | None = None,
    *,
    jobs: int | None = None,
    effective_allocator: str | None = None,
    prepared=None,
    machine=None,
    pool: WorkerPool | None = None,
) -> AllocationResponse:
    """Run one request through the pipeline (no queue, no cache).

    This is the single compute path shared by the scheduler, the
    ``--json`` CLI commands, and the byte-identity tests; callers may
    pass a pre-``prepare_module``-d module to skip re-preparation.
    ``options`` defaults to the request's own; the bare ``jobs``
    keyword was removed (it raises TypeError with the replacement
    spelling).  ``pool`` routes parallel allocation through a specific
    worker pool (the scheduler passes its own).
    """
    request.validate()
    name = effective_allocator or request.allocator
    if options is None:
        options = request.options
    if jobs is not None:
        raise TypeError(
            "the legacy 'jobs' keyword was removed; pass "
            "options=AllocationOptions(jobs=...) instead"
        )
    if machine is None:
        machine = request.machine.build()
    if prepared is None:
        prepared = prepare_module(resolve_module(request), machine)
    run = allocate_module(prepared, machine, ALLOCATOR_FACTORIES[name](),
                          options, pool=pool)
    response = AllocationResponse(
        id=request.id,
        ok=True,
        allocator=request.allocator,
        effective_allocator=name,
        degraded=name != request.allocator,
        code=render_allocation(run),
        stats=stats_to_dict(run.stats),
        cycles=cycles_to_dict(run.cycles),
    )
    return response.seal()


@dataclass(eq=False)
class _Job:
    request: AllocationRequest
    future: Future
    submitted_at: float
    overloaded: bool = False


class Scheduler:
    """Queue + worker turning requests into responses.

    ``options`` is the server-side execution policy applied to every
    request (most importantly ``jobs``, the worker-pool width); knobs a
    request carries itself (verify, deadline, max_rounds, ...) stay per
    request.  The bare ``jobs`` keyword was removed (TypeError).  With
    ``options.jobs > 1`` the scheduler owns a persistent
    :class:`~repro.exec.WorkerPool`, giving every allocation process
    isolation: a crashed or wedged worker is killed and respawned, the
    job retried, and — past the retry budget — the computation degrades
    to in-process serial execution rather than erroring.  ``fault_plan``
    injects deterministic worker faults (tests, resilience benchmark).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        metrics: ServiceMetrics | None = None,
        options: AllocationOptions | None = None,
        jobs: int | None = None,
        max_queue: int = 64,
        batch_size: int = 8,
        overload_watermark: int | None = None,
        prepared_cache_size: int = 32,
        session_store_size: int = 32,
        fault_plan: FaultPlan | None = None,
    ):
        self.cache = cache
        self.metrics = metrics or ServiceMetrics()
        if jobs is not None:
            raise TypeError(
                "the legacy 'jobs' keyword was removed; pass "
                "options=AllocationOptions(jobs=...) instead"
            )
        self.options = options or AllocationOptions.from_env()
        self.jobs = self.options.jobs
        self.pool: WorkerPool | None = None
        if self.jobs > 1:
            self.pool = WorkerPool(workers=self.jobs, fault_plan=fault_plan)
        self.batch_size = max(1, batch_size)
        self.overload_watermark = (
            overload_watermark
            if overload_watermark is not None
            else max(2, (max_queue * 3) // 4)
        )
        self._queue: "queue.Queue[_Job]" = queue.Queue(maxsize=max_queue)
        #: retained edit sessions for the ``allocate_delta`` path
        self.sessions = SessionStore(capacity=session_store_size)
        self._prepared: dict[str, tuple] = {}
        self._prepared_cache_size = max(1, prepared_cache_size)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- intake --------------------------------------------------------

    def submit(self, request: AllocationRequest) -> Future:
        """Admit a request; the Future resolves to an AllocationResponse.

        A full queue resolves the future *immediately* with an
        ``ok=false`` rejection — backpressure is explicit, not implicit
        latency.
        """
        future: Future = Future()
        self.metrics.inc("requests_total")
        try:
            request.validate()
        except ServiceError as err:
            self.metrics.inc("responses_error")
            future.set_result(AllocationResponse.error_response(
                request.id, str(err), request.allocator))
            return future
        job = _Job(
            request=request,
            future=future,
            submitted_at=perf_counter(),
            overloaded=self._queue.qsize() >= self.overload_watermark,
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self.metrics.inc("rejected_total")
            self.metrics.inc("responses_error")
            future.set_result(AllocationResponse.error_response(
                request.id,
                "queue full: admission control rejected the request",
                request.allocator,
            ))
            return future
        self.metrics.set_queue_depth(self._queue.qsize())
        return future

    # -- processing ----------------------------------------------------

    def run_once(self, timeout: float = 0.0) -> int:
        """Drain and process up to ``batch_size`` queued jobs."""
        jobs: list[_Job] = []
        try:
            jobs.append(
                self._queue.get(timeout=timeout)
                if timeout > 0 else self._queue.get_nowait()
            )
        except queue.Empty:
            return 0
        while len(jobs) < self.batch_size:
            try:
                jobs.append(self._queue.get_nowait())
            except queue.Empty:
                break
        self.metrics.inc("batches_total")
        self.metrics.set_queue_depth(self._queue.qsize())
        for job in jobs:
            job.future.set_result(self._process(job))
        if self.pool is not None:
            self.metrics.set_worker_pool(self.pool.snapshot())
        return len(jobs)

    def _prepare_cached(self, normalized_ir: str, request, module, machine):
        """Memoized ``prepare_module`` keyed by module+machine content.

        The key is the codec content digest of the parsed module plus
        the machine's register model — cheaper than the historical
        second ``request_fingerprint`` pass (which re-hashed the full
        normalized text) and exactly as collision-safe, since the codec
        digest *is* content identity.  The wire-visible cache
        fingerprint in :meth:`_process` is untouched.
        """
        key = (module_digest(module), machine_content_digest(machine))
        hit = self._prepared.get(key)
        if hit is None:
            hit = (prepare_module(module, machine), machine)
            self._prepared[key] = hit
            while len(self._prepared) > self._prepared_cache_size:
                self._prepared.pop(next(iter(self._prepared)))
        return hit

    def _process(self, job: _Job) -> AllocationResponse:
        request = job.request
        started = perf_counter()
        wait_s = started - job.submitted_at
        self.metrics.observe("wait", wait_s)
        timings = {"wait_s": round(wait_s, 6)}
        if request.base_digest is not None:
            return self._process_delta(job, timings)
        try:
            # A routing tier that already computed the content digest
            # (and is trusted to have used the same fingerprint
            # function) lets us skip the parse+normalize pass on the
            # hit path.  The hint is only ever used to *read*; a stale
            # or wrong hint falls through to the full path below, and
            # puts always go under the locally computed fingerprint.
            hint = request.fingerprint_hint
            if hint and self.cache is not None:
                hit = self.cache.get(hint)
                if hit is not None:
                    self.metrics.inc("cache_hits")
                    self.metrics.inc("responses_ok")
                    hit.id = request.id
                    hit.cached = True
                    hit.fingerprint = hint
                    total = perf_counter() - job.submitted_at
                    hit.timings = {**timings, "total_s": round(total, 6)}
                    self.metrics.observe("total", total)
                    return hit
            t0 = perf_counter()
            module = resolve_module(request)
            normalized = print_module(module)
            machine = request.machine.build()
            timings["parse_s"] = round(perf_counter() - t0, 6)
            self.metrics.observe("parse", timings["parse_s"])
            fingerprint = request_fingerprint(
                normalized, machine, request.allocator,
                options=request.options,
            )
            if self.cache is not None:
                hit = self.cache.get(fingerprint)
                if hit is not None:
                    self.metrics.inc("cache_hits")
                    self.metrics.inc("responses_ok")
                    hit.id = request.id
                    hit.cached = True
                    hit.fingerprint = fingerprint
                    total = perf_counter() - job.submitted_at
                    hit.timings = {**timings, "total_s": round(total, 6)}
                    self.metrics.observe("total", total)
                    return hit
                self.metrics.inc("cache_misses")

            # Per-request knobs ride on the request; execution policy
            # (pool width) is the server's.
            run_options = request.options.replace(jobs=self.jobs)
            effective = request.allocator
            if request.deadline_s is not None and (
                perf_counter() - job.submitted_at
            ) > request.deadline_s:
                self.metrics.inc("deadline_misses")
                effective = degrade_for(request.allocator,
                                        request.options.policy)
                # The deadline already passed; degradation is about
                # finishing fast now, not about killing more workers.
                run_options = run_options.replace(deadline_ms=None)
            elif job.overloaded:
                effective = degrade_for(request.allocator,
                                        request.options.policy)

            t0 = perf_counter()
            prepared, machine = self._prepare_cached(
                normalized, request, module, machine
            )
            timings["prepare_s"] = round(perf_counter() - t0, 6)
            self.metrics.observe("prepare", timings["prepare_s"])

            t0 = perf_counter()
            with profiled() as prof:
                try:
                    response = execute_request(
                        request, run_options,
                        effective_allocator=effective,
                        prepared=prepared, machine=machine, pool=self.pool,
                    )
                except JobDeadlineError:
                    # A worker blew the per-job wall-time budget on every
                    # retry.  Degrade one rung and rerun without the
                    # deadline so the client still gets an allocation —
                    # other queued requests were never blocked (the kill
                    # freed the worker).
                    self.metrics.inc("deadline_misses")
                    self.metrics.inc("worker_deadline_kills")
                    effective = degrade_for(effective,
                                            request.options.policy)
                    response = execute_request(
                        request,
                        run_options.replace(deadline_ms=None),
                        effective_allocator=effective,
                        prepared=prepared, machine=machine, pool=self.pool,
                    )
            self.metrics.record_phases(prof.snapshot())
            timings["allocate_s"] = round(perf_counter() - t0, 6)
            self.metrics.observe("allocate", timings["allocate_s"])

            response.fingerprint = fingerprint
            if response.degraded:
                self.metrics.inc("degraded_total")
            elif self.cache is not None:
                self.cache.put(fingerprint, response)
            self.metrics.inc("responses_ok")
        except ReproError as err:
            self.metrics.inc("responses_error")
            response = AllocationResponse.error_response(
                request.id, str(err), request.allocator)
        except Exception as err:  # never kill the worker
            self.metrics.inc("responses_error")
            response = AllocationResponse.error_response(
                request.id, f"internal error: {type(err).__name__}: {err}",
                request.allocator)
        total = perf_counter() - job.submitted_at
        timings["total_s"] = round(total, 6)
        response.timings = timings
        self.metrics.observe("total", total)
        return response

    def _process_delta(self, job: _Job, timings: dict) -> AllocationResponse:
        """The ``allocate_delta`` path: session store instead of cache.

        Delta responses carry a session token and are never written to
        the content-addressed cache — the session store *is* their
        reuse tier (every keystroke changes the content digest, so the
        cache could only ever hit on a verbatim repeat).  Deadline and
        overload degradation mirror the full path.
        """
        request = job.request
        self.metrics.inc("delta_requests")
        try:
            run_options = request.options.replace(jobs=self.jobs)
            effective = request.allocator
            if request.deadline_s is not None and (
                perf_counter() - job.submitted_at
            ) > request.deadline_s:
                self.metrics.inc("deadline_misses")
                effective = degrade_for(request.allocator,
                                        request.options.policy)
                run_options = run_options.replace(deadline_ms=None)
            elif job.overloaded:
                effective = degrade_for(request.allocator,
                                        request.options.policy)
            t0 = perf_counter()
            info: dict = {}
            with profiled() as prof:
                response = execute_delta_request(
                    request, self.sessions, run_options,
                    effective_allocator=effective, info=info,
                )
            self.metrics.record_phases(prof.snapshot())
            timings["allocate_s"] = round(perf_counter() - t0, 6)
            self.metrics.observe("allocate", timings["allocate_s"])
            self.metrics.inc("session_hits" if info.get("base_hit")
                             else "session_misses")
            for rung, count in info.get("paths", {}).items():
                self.metrics.inc(
                    _SESSION_RUNG_COUNTERS.get(rung, "session_rebuilds"),
                    by=count,
                )
            if response.degraded:
                self.metrics.inc("degraded_total")
            self.metrics.inc("responses_ok")
        except ReproError as err:
            self.metrics.inc("responses_error")
            response = AllocationResponse.error_response(
                request.id, str(err), request.allocator)
        except Exception as err:  # never kill the worker
            self.metrics.inc("responses_error")
            response = AllocationResponse.error_response(
                request.id, f"internal error: {type(err).__name__}: {err}",
                request.allocator)
        total = perf_counter() - job.submitted_at
        timings["total_s"] = round(total, 6)
        response.timings = timings
        self.metrics.observe("total", total)
        return response

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self.run_once(timeout=0.05) == 0:
                continue

    def stop(self) -> None:
        """Stop the worker; unanswered jobs get a shutdown error."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.pool is not None:
            self.pool.shutdown()
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            self.metrics.inc("responses_error")
            job.future.set_result(AllocationResponse.error_response(
                job.request.id, "server shutting down",
                job.request.allocator))

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()
