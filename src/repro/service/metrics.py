"""Service metrics: latency histograms, gauges, counters.

Dependency-free and thread-safe (one lock around every mutation — the
scheduler worker, the server loop, and stats readers all touch these).
Histograms use fixed log-spaced bucket bounds so snapshots are stable
and comparable across runs; percentiles are estimated from the bucket
upper bounds, which is the usual Prometheus-style trade-off.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["LatencyHistogram", "ServiceMetrics"]

#: Upper bounds (seconds) of the latency buckets: 100us .. ~105s, with
#: a +inf overflow bucket at the end.
_BOUNDS = tuple(0.0001 * (2 ** i) for i in range(21))


class LatencyHistogram:
    """Fixed-bucket latency histogram over seconds."""

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(_BOUNDS, seconds)] += 1
        self.total += 1
        self.sum_s += seconds
        self.max_s = max(self.max_s, seconds)

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile."""
        if not self.total:
            return 0.0
        rank = p / 100.0 * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return _BOUNDS[i] if i < len(_BOUNDS) else self.max_s
        return self.max_s

    def snapshot(self) -> dict:
        mean = self.sum_s / self.total if self.total else 0.0
        return {
            "count": self.total,
            "mean_s": round(mean, 6),
            "max_s": round(self.max_s, 6),
            "p50_s": round(self.percentile(50), 6),
            "p99_s": round(self.percentile(99), 6),
        }


class ServiceMetrics:
    """All service counters in one place; ``snapshot()`` is the wire form."""

    PHASES = ("wait", "parse", "prepare", "allocate", "total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latency = {phase: LatencyHistogram() for phase in self.PHASES}
        self.counters = {
            "requests_total": 0,
            "responses_ok": 0,
            "responses_error": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "degraded_total": 0,
            "deadline_misses": 0,
            "rejected_total": 0,
            "batches_total": 0,
            "worker_deadline_kills": 0,
            "delta_requests": 0,
            "session_hits": 0,
            "session_misses": 0,
            "session_patches_value": 0,
            "session_patches_struct": 0,
            "session_rebuilds": 0,
        }
        self.queue_depth = 0
        self.queue_depth_max = 0
        #: accumulated allocator phase profile (path -> {s, calls}) from
        #: :func:`repro.profiling` snapshots of executed requests
        self.alloc_phases: dict[str, dict] = {}
        #: latest :meth:`repro.exec.WorkerPool.snapshot` (counters plus
        #: per-worker pid/liveness/job tallies); empty when serving
        #: in-process (jobs=1)
        self.worker_pool: dict = {}

    def observe(self, phase: str, seconds: float) -> None:
        with self._lock:
            self.latency[phase].observe(seconds)

    def record_phases(self, snapshot: dict) -> None:
        """Fold one :meth:`repro.profiling.Profiler.snapshot` in."""
        with self._lock:
            for path, entry in snapshot.items():
                slot = self.alloc_phases.setdefault(
                    path, {"s": 0.0, "calls": 0}
                )
                slot["s"] += entry["s"]
                slot["calls"] += entry["calls"]

    def inc(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self.counters[counter] += by

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.queue_depth_max = max(self.queue_depth_max, depth)

    def set_worker_pool(self, snapshot: dict) -> None:
        """Publish the scheduler pool's latest state snapshot."""
        with self._lock:
            self.worker_pool = snapshot

    @property
    def cache_hit_ratio(self) -> float:
        hits = self.counters["cache_hits"]
        total = hits + self.counters["cache_misses"]
        return hits / total if total else 0.0

    @property
    def session_hit_ratio(self) -> float:
        hits = self.counters["session_hits"]
        total = hits + self.counters["session_misses"]
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self.counters),
                "cache_hit_ratio": round(self.cache_hit_ratio, 4),
                "session_hit_ratio": round(
                    self.counters["session_hits"]
                    / (self.counters["session_hits"]
                       + self.counters["session_misses"])
                    if (self.counters["session_hits"]
                        + self.counters["session_misses"]) else 0.0, 4),
                "queue_depth": self.queue_depth,
                "queue_depth_max": self.queue_depth_max,
                "latency": {
                    phase: hist.snapshot()
                    for phase, hist in self.latency.items()
                },
                "alloc_phases": {
                    path: {"s": round(entry["s"], 6),
                           "calls": entry["calls"]}
                    for path, entry in self.alloc_phases.items()
                },
                "worker_pool": dict(self.worker_pool),
            }
