"""Graphviz DOT export for the analysis structures.

Renders the four graphs this project revolves around — the CFG, the
interference graph, the Register Preference Graph, and the Coloring
Precedence Graph — as DOT text, for inspection with any Graphviz
viewer::

    from repro.viz import rpg_to_dot
    print(rpg_to_dot(rpg))        # pipe into `dot -Tsvg`

Pure text generation; no Graphviz dependency.
"""

from __future__ import annotations

from repro.analysis.interference import InterferenceGraph
from repro.cfg.analysis import CFG
from repro.core.cpg import BOTTOM, TOP, ColoringPrecedenceGraph
from repro.core.rpg import PrefKind, RegGroup, RegisterPreferenceGraph
from repro.ir.values import PReg, VReg

__all__ = ["cfg_to_dot", "interference_to_dot", "rpg_to_dot", "cpg_to_dot"]

_PREF_STYLE = {
    PrefKind.COALESCE: "solid",
    PrefKind.SEQ_NEXT: "dashed",
    PrefKind.SEQ_PREV: "dashed",
    PrefKind.GROUP: "dotted",
}


def _quote(text: str) -> str:
    return '"' + str(text).replace('"', r"\"") + '"'


def cfg_to_dot(cfg: CFG, name: str = "cfg") -> str:
    """Block-level control flow; the entry is drawn doubled."""
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    lines.append(f"  {_quote(cfg.entry)} [peripheries=2];")
    for src, targets in sorted(cfg.succs.items()):
        for dst in targets:
            lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines)


def interference_to_dot(ig: InterferenceGraph,
                        name: str = "interference") -> str:
    """Undirected interference edges; move relations drawn dashed."""
    lines = [f"graph {name} {{", "  node [fontname=monospace];"]
    for node in sorted(ig.nodes(), key=str):
        shape = "box" if isinstance(node, PReg) else "ellipse"
        lines.append(f"  {_quote(node)} [shape={shape}];")
    seen: set[frozenset] = set()
    for node in ig.nodes():
        for other in ig.neighbors(node):
            key = frozenset((str(node), str(other)))
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"  {_quote(node)} -- {_quote(other)};")
    for mv in ig.moves:
        key = frozenset((str(mv.dst), str(mv.src), "move"))
        if key in seen:
            continue
        seen.add(key)
        lines.append(
            f"  {_quote(mv.dst)} -- {_quote(mv.src)} "
            f"[style=dashed, constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines)


def rpg_to_dot(rpg: RegisterPreferenceGraph, name: str = "rpg") -> str:
    """Preference edges labeled with kind and strength (Figure 7(c))."""
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    targets: set = set()
    for src in sorted(rpg.nodes(), key=str):
        for edge in rpg.edges_from(src):
            targets.add(edge.target)
            label = f"{edge.kind.value}\\n{edge.strength}"
            style = _PREF_STYLE[edge.kind]
            lines.append(
                f"  {_quote(src)} -> {_quote(edge.target)} "
                f"[label={_quote(label)}, style={style}];"
            )
    for target in targets:
        if isinstance(target, RegGroup):
            lines.append(f"  {_quote(target)} [shape=octagon];")
        elif isinstance(target, PReg):
            lines.append(f"  {_quote(target)} [shape=box];")
    lines.append("}")
    return "\n".join(lines)


def cpg_to_dot(cpg: ColoringPrecedenceGraph, name: str = "cpg") -> str:
    """The precedence partial order (Figure 7(e)/(f))."""
    lines = [f"digraph {name} {{", "  node [fontname=monospace];",
             "  rankdir=TB;"]
    lines.append(f"  {_quote(TOP)} [shape=plaintext];")
    lines.append(f"  {_quote(BOTTOM)} [shape=plaintext];")
    for src in sorted(cpg.succs, key=str):
        for dst in sorted(cpg.succs[src], key=str):
            lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines)
