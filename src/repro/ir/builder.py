"""A small convenience layer for constructing IR by hand.

Used heavily by the tests and examples; the workload generator uses it
too.  The builder tracks a current block and appends instructions to it::

    b = IRBuilder("f", n_params=2)
    v = b.add(b.param(0), b.param(1))
    b.ret(v)
    func = b.finish()
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Instruction,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, RegClass, Register, Value, VReg

__all__ = ["IRBuilder"]


class IRBuilder:
    """Imperative construction of a :class:`~repro.ir.function.Function`."""

    def __init__(
        self,
        name: str,
        n_params: int = 0,
        param_classes: list[RegClass] | None = None,
        entry_label: str = "entry",
    ):
        self.func = Function(name)
        classes = param_classes or [RegClass.INT] * n_params
        if len(classes) != n_params:
            raise IRError("param_classes length must equal n_params")
        for i, rclass in enumerate(classes):
            self.func.params.append(self.func.new_vreg(rclass, name=f"p{i}"))
        self._block = BasicBlock(entry_label)
        self.func.blocks.append(self._block)

    # ------------------------------------------------------------------
    # block management

    @property
    def current(self) -> BasicBlock:
        return self._block

    def block(self, label: str) -> BasicBlock:
        """Create a new block and make it current."""
        if any(b.label == label for b in self.func.blocks):
            raise IRError(f"duplicate block label {label!r}")
        self._block = BasicBlock(label)
        self.func.blocks.append(self._block)
        return self._block

    def switch_to(self, label: str) -> BasicBlock:
        """Make an existing block current."""
        self._block = self.func.block(label)
        return self._block

    def emit(self, instr: Instruction) -> Instruction:
        if self._block.terminator is not None:
            raise IRError(
                f"block {self._block.label} already terminated; "
                f"cannot append {instr}"
            )
        self._block.instrs.append(instr)
        return instr

    # ------------------------------------------------------------------
    # values

    def param(self, index: int) -> VReg:
        return self.func.params[index]

    def vreg(self, rclass: RegClass = RegClass.INT, name: str | None = None) -> VReg:
        return self.func.new_vreg(rclass, name)

    # ------------------------------------------------------------------
    # instruction helpers (each returns the destination register)

    def const(self, value: int | float, rclass: RegClass = RegClass.INT,
              dst: Register | None = None) -> Register:
        dst = dst or self.func.new_vreg(rclass)
        self.emit(ConstInst(dst, value))
        return dst

    def move(self, src: Register, dst: Register | None = None) -> Register:
        dst = dst or self.func.new_vreg(src.rclass)
        self.emit(Move(dst, src))
        return dst

    def unary(self, op: str, src: Value, dst: Register | None = None,
              rclass: RegClass | None = None) -> Register:
        if rclass is None:
            rclass = src.rclass if not isinstance(src, Const) else RegClass.INT
        dst = dst or self.func.new_vreg(rclass)
        self.emit(UnaryOp(op, dst, src))
        return dst

    def binop(self, op: str, lhs: Value, rhs: Value,
              dst: Register | None = None,
              rclass: RegClass | None = None) -> Register:
        if rclass is None:
            rclass = RegClass.FLOAT if op.startswith("f") else RegClass.INT
            if op.startswith("cmp"):
                rclass = RegClass.INT
        dst = dst or self.func.new_vreg(rclass)
        self.emit(BinOp(op, dst, lhs, rhs))
        return dst

    def add(self, lhs: Value, rhs: Value, dst: Register | None = None) -> Register:
        return self.binop("add", lhs, rhs, dst)

    def load(self, base: Value, offset: int = 0, width: str = "word",
             dst: Register | None = None,
             rclass: RegClass = RegClass.INT) -> Register:
        dst = dst or self.func.new_vreg(rclass)
        self.emit(Load(dst, base, offset, width))
        return dst

    def store(self, base: Value, offset: int, src: Value) -> None:
        self.emit(Store(base, offset, src))

    def call(self, callee: str, args: list[Value] | None = None,
             returns: bool = False,
             rclass: RegClass = RegClass.INT) -> Register | None:
        dst = self.func.new_vreg(rclass) if returns else None
        self.emit(Call(callee, list(args or []), dst))
        return dst

    def phi(self, incoming: dict[str, Value],
            dst: Register | None = None,
            rclass: RegClass = RegClass.INT) -> Register:
        dst = dst or self.func.new_vreg(rclass)
        if self._block.terminator is not None:
            raise IRError(f"block {self._block.label} already terminated")
        # Phis must lead the block.
        pos = len(self._block.phis())
        self._block.instrs.insert(pos, Phi(dst, dict(incoming)))
        return dst

    # ------------------------------------------------------------------
    # terminators

    def jump(self, target: str) -> None:
        self.emit(Jump(target))

    def branch(self, cond: Value, iftrue: str, iffalse: str) -> None:
        self.emit(Branch(cond, iftrue, iffalse))

    def ret(self, value: Value | None = None) -> None:
        if value is not None:
            self.func.returns_value = True
        self.emit(Ret(value))

    # ------------------------------------------------------------------

    def finish(self) -> Function:
        """Validate terminators and return the built function."""
        for blk in self.func.blocks:
            if blk.terminator is None:
                raise IRError(f"block {blk.label} lacks a terminator")
        return self.func
