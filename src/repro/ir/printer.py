"""Textual rendering of IR, with optional per-block annotations.

The instruction ``__str__`` methods define the concrete syntax; this module
adds function/module layout, annotation hooks (used to print liveness or
allocation results next to the code), and a side-by-side diff helper used
by the examples.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Instruction

__all__ = ["print_function", "print_module", "side_by_side"]

AnnotateBlock = Callable[[BasicBlock], str]
AnnotateInstr = Callable[[Instruction], str]


def print_function(
    func: Function,
    annotate_block: AnnotateBlock | None = None,
    annotate_instr: AnnotateInstr | None = None,
) -> str:
    """Render ``func``; annotation callbacks add trailing comments."""
    params = ", ".join(str(p) for p in func.params)
    head = f"func {func.name}({params})"
    if func.returns_value:
        head += " -> value"
    lines = [head + " {"]
    for blk in func.blocks:
        header = f"{blk.label}:"
        if annotate_block is not None:
            note = annotate_block(blk)
            if note:
                header += f"        ; {note}"
        lines.append(header)
        for instr in blk.instrs:
            text = f"  {instr}"
            if annotate_instr is not None:
                note = annotate_instr(instr)
                if note:
                    text = f"{text:<40} ; {note}"
            lines.append(text)
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    return "\n\n".join(print_function(f) for f in module.functions)


def side_by_side(
    left: Function,
    right: Function,
    titles: tuple[str, str] = ("before", "after"),
    width: int = 44,
) -> str:
    """Two functions rendered in parallel columns (examples/debugging)."""
    left_lines = print_function(left).splitlines()
    right_lines = print_function(right).splitlines()
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    out = [f"{titles[0]:<{width}}| {titles[1]}", "-" * (2 * width)]
    for l, r in zip(left_lines, right_lines):
        out.append(f"{l:<{width}}| {r}")
    return "\n".join(out)


def format_assignment(assignment: Mapping, per_line: int = 4) -> str:
    """Render a live-range -> register mapping compactly."""
    items = sorted(
        (str(k), str(v)) for k, v in assignment.items()
    )
    cells = [f"{k} -> {v}" for k, v in items]
    lines = []
    for i in range(0, len(cells), per_line):
        lines.append("  ".join(f"{c:<18}" for c in cells[i:i + per_line]).rstrip())
    return "\n".join(lines)
