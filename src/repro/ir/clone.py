"""Deep-cloning of functions and modules.

Allocation rewrites IR in place, so comparing allocators on the same
input requires independent copies.  Registers and constants are immutable
(frozen dataclasses) and shared; instructions and blocks are rebuilt.
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Instruction,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
)

__all__ = ["clone_function", "clone_module", "clone_instruction"]


def clone_instruction(instr: Instruction) -> Instruction:
    """A fresh instruction object with the same (shared) operands."""
    if isinstance(instr, ConstInst):
        return ConstInst(instr.dst, instr.value)
    if isinstance(instr, Move):
        return Move(instr.dst, instr.src)
    if isinstance(instr, UnaryOp):
        return UnaryOp(instr.op, instr.dst, instr.src)
    if isinstance(instr, BinOp):
        return BinOp(instr.op, instr.dst, instr.lhs, instr.rhs)
    if isinstance(instr, Load):
        return Load(instr.dst, instr.base, instr.offset, instr.width)
    if isinstance(instr, Store):
        return Store(instr.base, instr.offset, instr.src)
    if isinstance(instr, Call):
        return Call(instr.callee, list(instr.args), instr.dst,
                    list(instr.reg_uses), list(instr.reg_defs))
    if isinstance(instr, Phi):
        return Phi(instr.dst, dict(instr.incoming))
    if isinstance(instr, Jump):
        return Jump(instr.target)
    if isinstance(instr, Branch):
        return Branch(instr.cond, instr.iftrue, instr.iffalse)
    if isinstance(instr, Ret):
        return Ret(instr.src, list(instr.reg_uses))
    if isinstance(instr, SpillLoad):
        return SpillLoad(instr.dst, instr.slot)
    if isinstance(instr, SpillStore):
        return SpillStore(instr.slot, instr.src)
    raise TypeError(f"cannot clone {type(instr).__name__}")


def clone_function(func: Function) -> Function:
    """An independent deep copy of ``func``."""
    out = Function(
        name=func.name,
        params=list(func.params),
        next_vreg_id=func.next_vreg_id,
        next_slot=func.next_slot,
        returns_value=func.returns_value,
    )
    for blk in func.blocks:
        out.blocks.append(
            BasicBlock(blk.label, [clone_instruction(i) for i in blk.instrs])
        )
    return out


def clone_module(module: Module) -> Module:
    out = Module(module.name)
    for func in module.functions:
        out.add(clone_function(func))
    return out
