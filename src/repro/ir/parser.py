"""Parser for the textual IR syntax produced by the printer.

The concrete syntax is exactly what ``str(Function)`` emits, so IR can be
round-tripped (used by the test suite and handy for writing compact test
fixtures as strings).  Named physical registers are not parseable; use the
``$r<i>`` / ``$fr<i>`` forms.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
    COMPARE_OPS,
    FLOAT_BINOPS,
    INT_BINOPS,
    UNARY_OPS,
)
from repro.ir.values import Const, PReg, RegClass, Value, VReg

__all__ = ["parse_function", "parse_module"]

_FUNC_RE = re.compile(r"^func\s+(\w+)\(([^)]*)\)(\s*->\s*value)?\s*\{$")
_LABEL_RE = re.compile(r"^(\w+):(\s*;.*)?$")
_VREG_FLOAT_RE = re.compile(r"^%f\d+$")
_PREG_RE = re.compile(r"^\$(fr|r)(\d+)$")
_LOAD_RE = re.compile(r"^load(\.b)?\s*\[(\S+?)\+(-?\d+)\]$")
_STORE_RE = re.compile(r"^store\s*\[(\S+?)\+(-?\d+)\]\s*=\s*(\S+)$")
_CALL_PRE_RE = re.compile(r"^call\s+(\w+)\((.*)\)$")
_CALL_POST_RE = re.compile(r"^call\s+(\w+)\s*\[(.*)\]$")
_PHI_RE = re.compile(r"^phi\s*\[(.*)\]$")
_RELOAD_RE = re.compile(r"^reload\s+slot(\d+)$")
_SPILL_RE = re.compile(r"^spill\s+slot(\d+)\s*=\s*(\S+)$")

_BINOPS = set(INT_BINOPS) | set(FLOAT_BINOPS) | set(COMPARE_OPS)
_UNOPS = set(UNARY_OPS)


class _Parser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.pos = 0
        self.func: Function | None = None
        self.regs: dict[str, VReg] = {}

    # ------------------------------------------------------------------

    def _next_meaningful(self) -> tuple[int, str] | None:
        while self.pos < len(self.lines):
            lineno = self.pos + 1
            raw = self.lines[self.pos]
            self.pos += 1
            stripped = raw.split(";", 1)[0].strip()
            if stripped:
                return lineno, stripped
        return None

    def parse_function(self) -> Function:
        item = self._next_meaningful()
        if item is None:
            raise ParseError("expected function header, found end of input")
        lineno, line = item
        m = _FUNC_RE.match(line)
        if not m:
            raise ParseError(f"bad function header: {line!r}", lineno)
        name, params_text, returns = m.group(1), m.group(2), m.group(3)
        self.func = Function(name, returns_value=bool(returns))
        self.regs = {}
        for token in filter(None, (t.strip() for t in params_text.split(","))):
            reg = self._reg(token, lineno)
            if not isinstance(reg, VReg):
                raise ParseError(f"parameter must be virtual: {token}", lineno)
            self.func.params.append(reg)

        block: BasicBlock | None = None
        while True:
            item = self._next_meaningful()
            if item is None:
                raise ParseError("unterminated function (missing '}')")
            lineno, line = item
            if line == "}":
                break
            label = _LABEL_RE.match(line)
            if label:
                block = BasicBlock(label.group(1))
                self.func.blocks.append(block)
                continue
            if block is None:
                raise ParseError(f"instruction before any label: {line!r}",
                                 lineno)
            block.instrs.append(self._instr(line, lineno))
        return self.func

    # ------------------------------------------------------------------

    def _reg(self, token: str, lineno: int) -> VReg | PReg:
        token = token.strip()
        if token.startswith("%"):
            if token in self.regs:
                return self.regs[token]
            rclass = (RegClass.FLOAT if _VREG_FLOAT_RE.match(token)
                      else RegClass.INT)
            assert self.func is not None
            reg = self.func.new_vreg(rclass, name=token[1:])
            self.regs[token] = reg
            return reg
        m = _PREG_RE.match(token)
        if m:
            rclass = RegClass.FLOAT if m.group(1) == "fr" else RegClass.INT
            return PReg(int(m.group(2)), rclass)
        raise ParseError(f"bad register token {token!r}", lineno)

    def _value(self, token: str, lineno: int,
               rclass: RegClass = RegClass.INT) -> Value:
        token = token.strip()
        if token.startswith(("%", "$")):
            return self._reg(token, lineno)
        try:
            if "." in token or "e" in token.lower():
                return Const(float(token), RegClass.FLOAT)
            return Const(int(token), rclass)
        except ValueError:
            raise ParseError(f"bad value token {token!r}", lineno) from None

    def _instr(self, line: str, lineno: int):
        m = _STORE_RE.match(line)
        if m:
            return Store(self._value(m.group(1), lineno), int(m.group(2)),
                         self._value(m.group(3), lineno))
        m = _SPILL_RE.match(line)
        if m:
            return SpillStore(int(m.group(1)), self._value(m.group(2), lineno))
        m = _CALL_POST_RE.match(line)
        if m:
            uses = [self._reg(t, lineno)
                    for t in filter(None, (x.strip()
                                           for x in m.group(2).split(",")))]
            for u in uses:
                if not isinstance(u, PReg):
                    raise ParseError("lowered call uses must be physical",
                                     lineno)
            return Call(m.group(1), reg_uses=uses)
        if line.startswith("jump "):
            return Jump(line[5:].strip())
        if line.startswith("branch "):
            parts = [p.strip() for p in line[7:].split(",")]
            if len(parts) != 3:
                raise ParseError(f"bad branch: {line!r}", lineno)
            return Branch(self._value(parts[0], lineno), parts[1], parts[2])
        if line == "ret":
            return Ret()
        if line.startswith("ret ["):
            inner = line[len("ret ["):-1]
            uses = [self._reg(t, lineno)
                    for t in filter(None, (x.strip() for x in inner.split(",")))]
            return Ret(None, reg_uses=[u for u in uses if isinstance(u, PReg)])
        if line.startswith("ret "):
            return Ret(self._value(line[4:], lineno))
        if line.startswith("call "):
            return self._call_pre(line, lineno, dst=None)

        if "=" not in line:
            raise ParseError(f"unrecognized instruction {line!r}", lineno)
        dst_text, rhs = (s.strip() for s in line.split("=", 1))
        dst = self._reg(dst_text, lineno)
        return self._assign(dst, rhs, lineno)

    def _call_pre(self, rhs: str, lineno: int, dst):
        m = _CALL_PRE_RE.match(rhs)
        if not m:
            raise ParseError(f"bad call {rhs!r}", lineno)
        args = [self._value(t, lineno)
                for t in filter(None, (x.strip()
                                       for x in m.group(2).split(",")))]
        return Call(m.group(1), args, dst)

    def _assign(self, dst, rhs: str, lineno: int):
        m = _LOAD_RE.match(rhs)
        if m:
            width = "byte" if m.group(1) else "word"
            return Load(dst, self._value(m.group(2), lineno),
                        int(m.group(3)), width)
        m = _RELOAD_RE.match(rhs)
        if m:
            return SpillLoad(dst, int(m.group(1)))
        m = _PHI_RE.match(rhs)
        if m:
            incoming = {}
            for part in filter(None, (x.strip() for x in m.group(1).split(","))):
                if ":" not in part:
                    raise ParseError(f"bad phi arm {part!r}", lineno)
                label, val = (s.strip() for s in part.split(":", 1))
                incoming[label] = self._value(val, lineno, dst.rclass)
            return Phi(dst, incoming)
        if rhs.startswith("call "):
            return self._call_pre(rhs, lineno, dst)

        tokens = rhs.split(None, 1)
        if tokens and tokens[0] in _BINOPS:
            operands = [t.strip() for t in tokens[1].split(",")]
            if len(operands) != 2:
                raise ParseError(f"binop needs two operands: {rhs!r}", lineno)
            return BinOp(tokens[0], dst,
                         self._value(operands[0], lineno, dst.rclass),
                         self._value(operands[1], lineno, dst.rclass))
        if tokens and tokens[0] in _UNOPS:
            return UnaryOp(tokens[0], dst, self._value(tokens[1], lineno,
                                                       dst.rclass))
        # Bare value: move (register source) or const materialization.
        value = self._value(rhs, lineno, dst.rclass)
        if isinstance(value, Const):
            return ConstInst(dst, value.value)
        return Move(dst, value)


def parse_function(text: str) -> Function:
    """Parse a single function from its textual form."""
    return _Parser(text).parse_function()


def parse_module(text: str, name: str = "module") -> Module:
    """Parse a module: a sequence of functions."""
    parser = _Parser(text)
    module = Module(name)
    while True:
        save = parser.pos
        probe = parser._next_meaningful()
        if probe is None:
            break
        parser.pos = save
        module.add(parser.parse_function())
    return module
