"""Structural diffing of two versions of one function.

:func:`diff_functions` compares a *base* and a *new* version of a
function and produces a :class:`FunctionDelta`: which blocks changed
structurally, which were added or removed, whether the edge set
changed, which registers of the base survive into the new version (and
under what name), and — in raw mode — the list of pure *value edits*
(constant values, immediate offsets, opcode swaps) that leave the
function's structure untouched.

Two comparison modes serve the two layers of the incremental edit path
(:mod:`repro.service.session`):

* **raw mode** (``pair_registers=False``) compares two freshly parsed,
  unprepared functions.  Registers must be *identical* — the diff
  detects edits that are transparent to the whole prepare pipeline
  (SSA construction, DCE, lowering are all value- and
  opcode-indifferent), so the session can patch the stored prepared
  function instead of re-preparing.  Constant operands of ``call``
  arguments and ``ret`` are deliberately *not* value edits: lowering
  materializes them into fresh ``ConstInst`` instructions whose
  identity the position map cannot track, so those edits are
  structural.

* **renumbered mode** (``pair_registers=True``) compares two prepared
  and renumbered versions.  Register *names* differ globally (webs are
  numbered in traversal order, so one inserted web shifts every later
  id); matching blocks pair their register operands positionally into
  ``rename``, the base→new translation the analysis patcher
  (:func:`repro.analysis.incremental.apply_function_delta`) pushes
  masks through.  Any non-register difference marks the block touched.

A :class:`~repro.regalloc.spill.SpillDelta` is the degenerate case of
this contract — no blocks added or removed, no edge changes, renaming
given by the round's renumbering — re-expressed by
:meth:`FunctionDelta.from_spill`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Instruction,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, PReg, Register, VReg
from repro.profiling import phase

__all__ = ["ValueEdit", "FunctionDelta", "diff_functions"]


@dataclass(frozen=True)
class ValueEdit:
    """One structure-preserving field change inside a matched block."""

    label: str
    index: int
    #: attribute name on the instruction object (``value``, ``op``,
    #: ``offset``, ``lhs``, ``rhs``, ``src``, ``base``, ``cond``)
    attr: str
    new: object
    old: object = None


@dataclass(eq=False)
class FunctionDelta:
    """What changed between a base and a new version of one function.

    Block classification is by label: ``touched_blocks`` are common
    labels whose bodies differ structurally (their analysis summaries
    must be re-derived), ``added_blocks``/``removed_blocks`` exist on
    only one side.  A relabeled block is simply a removed plus an added
    label — conservative but exact.  ``rename`` maps every base
    register that occurs in a matched (untouched) block or parameter
    list to its new-version counterpart; base registers outside its
    domain occur only in touched/removed blocks, so their dataflow bits
    are dropped and rediscovered by the patcher's re-scan.
    """

    touched_blocks: frozenset[str] = frozenset()
    added_blocks: frozenset[str] = frozenset()
    removed_blocks: frozenset[str] = frozenset()
    #: entry label, any block's successor list, or block membership
    #: changed — the CFG and loop nest must be rebuilt
    changed_edges: bool = False
    #: base register -> new register for every survivor (identity map in
    #: raw mode, positional pairing in renumbered mode)
    rename: dict[Register, Register] = field(default_factory=dict)
    #: new-version vregs with no base counterpart
    new_vregs: frozenset[VReg] = frozenset()
    #: base vregs with no new-version counterpart
    deleted_vregs: frozenset[VReg] = frozenset()
    #: raw mode only: the structure-preserving edits, in block order
    value_edits: tuple[ValueEdit, ...] = ()
    #: False when the versions cannot be reconciled at all (parameter
    #: list changed, register pairing inconsistent) — callers must fall
    #: back to a from-scratch build
    consistent: bool = True

    @property
    def structural(self) -> bool:
        """Any change beyond pure value edits."""
        return bool(self.touched_blocks or self.added_blocks
                    or self.removed_blocks or self.changed_edges)

    @property
    def transparent(self) -> bool:
        """True when the new version is the base with value edits only —
        every prepare/renumber/analysis artifact of the base carries
        over verbatim."""
        return self.consistent and not self.structural

    @property
    def identical(self) -> bool:
        return self.transparent and not self.value_edits

    def touched_fraction(self, n_new_blocks: int) -> float:
        """Share of the new function's blocks needing a re-scan."""
        if n_new_blocks <= 0:
            return 1.0
        changed = len(self.touched_blocks) + len(self.added_blocks)
        return changed / n_new_blocks

    @classmethod
    def from_spill(cls, delta, renumbering) -> "FunctionDelta":
        """A spill round's footprint as a :class:`FunctionDelta`.

        Spill insertion rewrites blocks in place (never the edge set)
        and the subsequent renumbering renames every surviving live
        range bijectively, so the general patcher reproduces the
        PR-3 spill path exactly.
        """
        return cls(
            touched_blocks=frozenset(delta.touched_blocks),
            rename={w.original: w.reg for w in renumbering.webs},
            new_vregs=frozenset(delta.new_vregs),
            deleted_vregs=frozenset(delta.deleted_vregs),
        )


def _operand_edit(old, new, label: str, index: int,
                  attr: str) -> ValueEdit | None | bool:
    """Classify one operand slot in raw mode.

    Returns ``True`` (equal), a :class:`ValueEdit` (constant value
    changed in place), or ``None`` (structural difference).
    """
    if old == new:
        return True
    if (isinstance(old, Const) and isinstance(new, Const)
            and old.rclass == new.rclass):
        return ValueEdit(label, index, attr, new, old)
    return None


def _raw_edits(a: Instruction, b: Instruction, label: str,
               index: int) -> list[ValueEdit] | None:
    """Value edits turning ``a`` into ``b``; None when structural.

    The transparent field set is exactly what the prepare pipeline
    treats opaquely: constant values (``ConstInst.value`` and ``Const``
    operands of arithmetic/memory/branch instructions), memory
    ``offset`` immediates, and opcode names.  ``call`` arguments,
    ``ret`` values, and load widths are excluded — lowering
    materializes the former into fresh instructions and width changes
    alter pairing preferences structurally.
    """
    if type(a) is not type(b):
        return None
    out: list[ValueEdit] = []

    def slot(old, new, attr) -> bool:
        got = _operand_edit(old, new, label, index, attr)
        if got is None:
            return False
        if got is not True:
            out.append(got)
        return True

    if isinstance(a, ConstInst):
        if a.dst != b.dst:
            return None
        if a.value != b.value:
            out.append(ValueEdit(label, index, "value", b.value, a.value))
        return out
    if isinstance(a, Move):
        return out if a.dst == b.dst and a.src == b.src else None
    if isinstance(a, UnaryOp):
        if a.dst != b.dst or not slot(a.src, b.src, "src"):
            return None
        if a.op != b.op:
            out.append(ValueEdit(label, index, "op", b.op, a.op))
        return out
    if isinstance(a, BinOp):
        if (a.dst != b.dst or not slot(a.lhs, b.lhs, "lhs")
                or not slot(a.rhs, b.rhs, "rhs")):
            return None
        if a.op != b.op:
            out.append(ValueEdit(label, index, "op", b.op, a.op))
        return out
    if isinstance(a, Load):
        if (a.dst != b.dst or a.width != b.width
                or not slot(a.base, b.base, "base")):
            return None
        if a.offset != b.offset:
            out.append(ValueEdit(label, index, "offset", b.offset, a.offset))
        return out
    if isinstance(a, Store):
        if not slot(a.base, b.base, "base") or not slot(a.src, b.src, "src"):
            return None
        if a.offset != b.offset:
            out.append(ValueEdit(label, index, "offset", b.offset, a.offset))
        return out
    if isinstance(a, Branch):
        if a.iftrue != b.iftrue or a.iffalse != b.iffalse:
            return None
        return out if slot(a.cond, b.cond, "cond") else None
    if isinstance(a, Jump):
        return out if a.target == b.target else None
    if isinstance(a, Call):
        same = (a.callee == b.callee and a.dst == b.dst
                and a.args == b.args and a.reg_uses == b.reg_uses
                and a.reg_defs == b.reg_defs)
        return out if same else None
    if isinstance(a, Ret):
        return out if a.src == b.src and a.reg_uses == b.reg_uses else None
    if isinstance(a, Phi):
        return out if a.dst == b.dst and a.incoming == b.incoming else None
    if isinstance(a, SpillLoad):
        return out if a.dst == b.dst and a.slot == b.slot else None
    if isinstance(a, SpillStore):
        return out if a.src == b.src and a.slot == b.slot else None
    return None


def _shape(instr: Instruction) -> tuple | None:
    """(structural key, pairable operand slots) of one instruction.

    Two instructions match in renumbered mode iff their keys are equal
    and their slots pair register-by-register (:func:`_pair_values`).
    Every non-register field — opcodes, constants, offsets, widths,
    labels, physical register lists — goes into the key: renumbered
    matching is deliberately strict, because a matched block's analysis
    summaries are reused verbatim under the rename.
    """
    t = type(instr)
    if t is ConstInst:
        return (t, instr.value), (instr.dst,)
    if t is Move:
        return (t,), (instr.dst, instr.src)
    if t is UnaryOp:
        return (t, instr.op), (instr.dst, instr.src)
    if t is BinOp:
        return (t, instr.op), (instr.dst, instr.lhs, instr.rhs)
    if t is Load:
        return (t, instr.offset, instr.width), (instr.dst, instr.base)
    if t is Store:
        return (t, instr.offset), (instr.base, instr.src)
    if t is Call:
        key = (t, instr.callee, len(instr.args),
               tuple(instr.reg_uses), tuple(instr.reg_defs))
        return key, (instr.dst, *instr.args)
    if t is Phi:
        return (t, tuple(instr.incoming)), \
            (instr.dst, *instr.incoming.values())
    if t is Jump:
        return (t, instr.target), ()
    if t is Branch:
        return (t, instr.iftrue, instr.iffalse), (instr.cond,)
    if t is Ret:
        return (t, tuple(instr.reg_uses)), (instr.src,)
    if t is SpillLoad:
        return (t, instr.slot), (instr.dst,)
    if t is SpillStore:
        return (t, instr.slot), (instr.src,)
    return None


def _pair_values(a, b, pairs: list) -> bool:
    """Whether one operand slot is compatible; VReg pairs are recorded."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, VReg) and isinstance(b, VReg):
        if a.rclass != b.rclass:
            return False
        pairs.append((a, b))
        return True
    # Physical registers and constants never rename.
    return a == b


def _pair_instrs(a: Instruction, b: Instruction, pairs: list) -> bool:
    sa, sb = _shape(a), _shape(b)
    if sa is None or sb is None or sa[0] != sb[0]:
        return False
    slots_a, slots_b = sa[1], sb[1]
    if len(slots_a) != len(slots_b):
        return False
    mark = len(pairs)
    for x, y in zip(slots_a, slots_b):
        if not _pair_values(x, y, pairs):
            del pairs[mark:]
            return False
    return True


def _vreg_occurrences(func: Function) -> set[VReg]:
    seen: set[VReg] = {p for p in func.params if isinstance(p, VReg)}
    for blk in func.blocks:
        for instr in blk.instrs:
            for reg in instr.defs():
                if isinstance(reg, VReg):
                    seen.add(reg)
            for reg in instr.used_regs():
                if isinstance(reg, VReg):
                    seen.add(reg)
    return seen


def _targets(blk) -> tuple[str, ...]:
    if not blk.instrs:
        return ()
    return tuple(blk.instrs[-1].block_targets())


def diff_functions(base: Function, new: Function, *,
                   pair_registers: bool = False) -> FunctionDelta:
    """The :class:`FunctionDelta` turning ``base`` into ``new``.

    ``pair_registers`` selects renumbered mode (registers pair
    positionally into the rename map) over raw mode (registers must be
    identical; structure-preserving constant/opcode/offset changes are
    reported as :class:`ValueEdit`\\ s).  Neither input is mutated.
    """
    with phase("diff"):
        return _diff_functions(base, new, pair_registers)


def _diff_functions(base: Function, new: Function,
                    pair_registers: bool) -> FunctionDelta:
    pairs: list[tuple[VReg, VReg]] = []
    consistent = base.name == new.name
    if len(base.params) != len(new.params):
        consistent = False
    else:
        for p, q in zip(base.params, new.params):
            if pair_registers:
                if not _pair_values(p, q, pairs):
                    consistent = False
            elif p != q:
                consistent = False
    if not consistent:
        return FunctionDelta(consistent=False)

    base_blocks = {blk.label: blk for blk in base.blocks}
    new_blocks = {blk.label: blk for blk in new.blocks}
    added = frozenset(new_blocks) - set(base_blocks)
    removed = frozenset(base_blocks) - set(new_blocks)
    touched: set[str] = set()
    edits: list[ValueEdit] = []
    changed_edges = bool(added or removed)
    if base.blocks and new.blocks \
            and base.blocks[0].label != new.blocks[0].label:
        changed_edges = True

    for blk in new.blocks:
        label = blk.label
        old_blk = base_blocks.get(label)
        if old_blk is None:
            continue
        if _targets(old_blk) != _targets(blk):
            changed_edges = True
        if len(old_blk.instrs) != len(blk.instrs):
            touched.add(label)
            continue
        if pair_registers:
            mark = len(pairs)
            for a, b in zip(old_blk.instrs, blk.instrs):
                if not _pair_instrs(a, b, pairs):
                    del pairs[mark:]
                    touched.add(label)
                    break
        else:
            block_edits: list[ValueEdit] = []
            for i, (a, b) in enumerate(zip(old_blk.instrs, blk.instrs)):
                got = _raw_edits(a, b, label, i)
                if got is None:
                    touched.add(label)
                    break
                block_edits.extend(got)
            else:
                edits.extend(block_edits)

    # The pairings of every matched block and the parameter lists must
    # agree on one bijective rename; any conflict poisons the whole
    # delta (the analyses patcher cannot translate masks through a
    # non-function or a non-injection).
    rename: dict[Register, Register] = {}
    reverse: dict[Register, Register] = {}
    for old_reg, new_reg in pairs:
        have = rename.get(old_reg)
        if have is None:
            if new_reg in reverse:
                return FunctionDelta(consistent=False)
            rename[old_reg] = new_reg
            reverse[new_reg] = old_reg
        elif have != new_reg:
            return FunctionDelta(consistent=False)
    if not pair_registers:
        # Raw mode: survivors keep their names; expose the identity map
        # over every register of the matched region so both modes offer
        # the same contract.
        for blk in new.blocks:
            if blk.label in touched or blk.label in added:
                continue
            for instr in blk.instrs:
                for reg in (*instr.defs(), *instr.used_regs()):
                    rename.setdefault(reg, reg)
        for p in new.params:
            if isinstance(p, (VReg, PReg)):
                rename.setdefault(p, p)

    base_regs = _vreg_occurrences(base)
    new_regs = _vreg_occurrences(new)
    deleted = frozenset(r for r in base_regs if r not in rename)
    fresh = frozenset(r for r in new_regs if r not in reverse) \
        if pair_registers else frozenset(r for r in new_regs
                                         if r not in rename)

    return FunctionDelta(
        touched_blocks=frozenset(touched),
        added_blocks=added,
        removed_blocks=removed,
        changed_edges=changed_edges,
        rename=rename,
        new_vregs=fresh,
        deleted_vregs=deleted,
        value_edits=tuple(edits),
        consistent=True,
    )
