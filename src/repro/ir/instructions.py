"""Instruction set of the RTL-style IR.

All instructions expose a uniform operand interface used by every analysis
and by the allocators:

* :meth:`Instruction.uses` — values read (registers and constants),
* :meth:`Instruction.defs` — registers written,
* :meth:`Instruction.replace` — rewrite operands through a mapping
  (used by out-of-SSA, renumbering, spill insertion, and final rewriting).

Identity semantics: instructions are mutable and hashable by identity
(``eq=False``), so they can key side tables built by the analyses.

Calls exist in two forms.  Before the calling-convention lowering pass a
:class:`Call` carries ``args``/``dst`` virtual operands.  Lowering moves the
arguments into physical parameter registers, replaces ``dst`` by a move from
the return register, and records the convention registers in ``reg_uses`` /
``reg_defs``; from then on the call reads/writes physical registers only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.values import PReg, Register, Value, VReg

__all__ = [
    "Instruction",
    "ConstInst",
    "Move",
    "UnaryOp",
    "BinOp",
    "Load",
    "Store",
    "Call",
    "Phi",
    "Jump",
    "Branch",
    "Ret",
    "SpillLoad",
    "SpillStore",
    "INT_BINOPS",
    "FLOAT_BINOPS",
    "COMPARE_OPS",
    "UNARY_OPS",
]

#: Integer binary opcodes understood by the interpreters.
INT_BINOPS = (
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr",
)

#: Float binary opcodes.
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")

#: Comparison opcodes (always produce an INT 0/1 result).
COMPARE_OPS = ("cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge")

#: Unary opcodes.
UNARY_OPS = ("neg", "not", "zext8", "fneg", "itof", "ftoi")


def _is_reg(value: Value) -> bool:
    return isinstance(value, (VReg, PReg))


@dataclass(eq=False, slots=True)
class Instruction:
    """Abstract base of all instructions."""

    def uses(self) -> list[Value]:
        """Values read by this instruction (registers and constants)."""
        raise NotImplementedError

    def defs(self) -> list[Register]:
        """Registers written by this instruction."""
        raise NotImplementedError

    def used_regs(self) -> list[Register]:
        """Registers (only) read by this instruction."""
        return [v for v in self.uses() if _is_reg(v)]

    def replace(self, mapping: dict[Value, Value]) -> None:
        """Rewrite every operand ``v`` to ``mapping.get(v, v)`` in place."""
        raise NotImplementedError

    def replace_uses(self, mapping: dict[Value, Value]) -> None:
        """Rewrite use operands only, leaving the destination untouched.

        Needed when an instruction reads and writes the same register and
        the two occurrences must rename differently (SSA renaming).
        """
        dst = getattr(self, "dst", None) if hasattr(self, "dst") else None
        self.replace(mapping)
        if dst is not None:
            self.dst = dst  # type: ignore[attr-defined]

    def replace_defs(self, mapping: dict[Value, Value]) -> None:
        """Rewrite the destination register only."""
        dst = getattr(self, "dst", None) if hasattr(self, "dst") else None
        if dst is not None and dst in mapping:
            self.dst = mapping[dst]  # type: ignore[attr-defined]

    @property
    def is_move(self) -> bool:
        """True for register-to-register copies (coalescing candidates)."""
        return False

    @property
    def is_terminator(self) -> bool:
        """True for instructions that end a basic block."""
        return False

    def block_targets(self) -> tuple[str, ...]:
        """Labels of successor blocks (empty for non-terminators)."""
        return ()


@dataclass(eq=False, slots=True)
class ConstInst(Instruction):
    """``dst = value`` — materialize an immediate."""

    dst: Register
    value: int | float

    def uses(self) -> list[Value]:
        return []

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __str__(self) -> str:
        return f"{self.dst} = {self.value}"


@dataclass(eq=False, slots=True)
class Move(Instruction):
    """``dst = src`` — a register-to-register copy."""

    dst: Register
    src: Register

    def uses(self) -> list[Value]:
        return [self.src]

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)
        self.src = mapping.get(self.src, self.src)

    @property
    def is_move(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass(eq=False, slots=True)
class UnaryOp(Instruction):
    """``dst = op src``."""

    op: str
    dst: Register
    src: Value

    def uses(self) -> list[Value]:
        return [self.src]

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.src}"


@dataclass(eq=False, slots=True)
class BinOp(Instruction):
    """``dst = lhs op rhs``."""

    op: str
    dst: Register
    lhs: Value
    rhs: Value

    def uses(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(eq=False, slots=True)
class Load(Instruction):
    """``dst = [base + offset]``.

    ``width`` is ``"word"`` or ``"byte"``.  Byte loads model the paper's
    *limited register usage* (type-2) preference: on an irregular target
    only a subset of the integer file can receive a byte load without an
    extra zero-extension.
    """

    dst: Register
    base: Value
    offset: int = 0
    width: str = "word"

    def uses(self) -> list[Value]:
        return [self.base]

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)
        self.base = mapping.get(self.base, self.base)

    def __str__(self) -> str:
        suffix = ".b" if self.width == "byte" else ""
        return f"{self.dst} = load{suffix} [{self.base}+{self.offset}]"


@dataclass(eq=False, slots=True)
class Store(Instruction):
    """``[base + offset] = src``."""

    base: Value
    offset: int
    src: Value

    def uses(self) -> list[Value]:
        return [self.base, self.src]

    def defs(self) -> list[Register]:
        return []

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.base = mapping.get(self.base, self.base)
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"store [{self.base}+{self.offset}] = {self.src}"


@dataclass(eq=False, slots=True)
class Call(Instruction):
    """A function call.

    Pre-lowering: ``args`` holds virtual argument values and ``dst`` the
    virtual result register (or ``None``).  Post-lowering: ``args`` is empty,
    ``dst`` is ``None``, and ``reg_uses``/``reg_defs`` record the physical
    parameter and return registers established by the calling convention.
    """

    callee: str
    args: list[Value] = field(default_factory=list)
    dst: Register | None = None
    reg_uses: list[PReg] = field(default_factory=list)
    reg_defs: list[PReg] = field(default_factory=list)

    def uses(self) -> list[Value]:
        return list(self.args) + list(self.reg_uses)

    def defs(self) -> list[Register]:
        out: list[Register] = []
        if self.dst is not None:
            out.append(self.dst)
        out.extend(self.reg_defs)
        return out

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.args = [mapping.get(a, a) for a in self.args]
        if self.dst is not None:
            self.dst = mapping.get(self.dst, self.dst)

    @property
    def lowered(self) -> bool:
        """True once the calling convention has been applied."""
        return not self.args and self.dst is None

    def __str__(self) -> str:
        if not self.lowered:
            args = ", ".join(str(a) for a in self.args)
            head = f"{self.dst} = " if self.dst is not None else ""
            return f"{head}call {self.callee}({args})"
        uses = ", ".join(str(r) for r in self.reg_uses)
        return f"call {self.callee} [{uses}]"


@dataclass(eq=False, slots=True)
class Phi(Instruction):
    """``dst = phi [label1: v1, label2: v2, ...]`` (SSA only)."""

    dst: Register
    incoming: dict[str, Value] = field(default_factory=dict)

    def uses(self) -> list[Value]:
        return list(self.incoming.values())

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)
        self.incoming = {
            label: mapping.get(v, v) for label, v in self.incoming.items()
        }

    def __str__(self) -> str:
        inc = ", ".join(f"{lbl}: {v}" for lbl, v in sorted(self.incoming.items()))
        return f"{self.dst} = phi [{inc}]"


@dataclass(eq=False, slots=True)
class Jump(Instruction):
    """Unconditional branch to ``target``."""

    target: str

    def uses(self) -> list[Value]:
        return []

    def defs(self) -> list[Register]:
        return []

    def replace(self, mapping: dict[Value, Value]) -> None:
        pass

    @property
    def is_terminator(self) -> bool:
        return True

    def block_targets(self) -> tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(eq=False, slots=True)
class Branch(Instruction):
    """Conditional branch: nonzero ``cond`` goes to ``iftrue``."""

    cond: Value
    iftrue: str
    iffalse: str

    def uses(self) -> list[Value]:
        return [self.cond]

    def defs(self) -> list[Register]:
        return []

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.cond = mapping.get(self.cond, self.cond)

    @property
    def is_terminator(self) -> bool:
        return True

    def block_targets(self) -> tuple[str, ...]:
        return (self.iftrue, self.iffalse)

    def __str__(self) -> str:
        return f"branch {self.cond}, {self.iftrue}, {self.iffalse}"


@dataclass(eq=False, slots=True)
class Ret(Instruction):
    """Function return.

    Pre-lowering ``src`` is the virtual return value; lowering replaces it
    with a move into the return register and records that register in
    ``reg_uses`` so it stays live to the exit.
    """

    src: Value | None = None
    reg_uses: list[PReg] = field(default_factory=list)

    def uses(self) -> list[Value]:
        out: list[Value] = []
        if self.src is not None:
            out.append(self.src)
        out.extend(self.reg_uses)
        return out

    def defs(self) -> list[Register]:
        return []

    def replace(self, mapping: dict[Value, Value]) -> None:
        if self.src is not None:
            self.src = mapping.get(self.src, self.src)

    @property
    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        if self.src is not None:
            return f"ret {self.src}"
        if self.reg_uses:
            return f"ret [{', '.join(str(r) for r in self.reg_uses)}]"
        return "ret"


@dataclass(eq=False, slots=True)
class SpillLoad(Instruction):
    """``dst = reload slot`` — reload of a spilled live range."""

    dst: Register
    slot: int

    def uses(self) -> list[Value]:
        return []

    def defs(self) -> list[Register]:
        return [self.dst]

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __str__(self) -> str:
        return f"{self.dst} = reload slot{self.slot}"


@dataclass(eq=False, slots=True)
class SpillStore(Instruction):
    """``spill slot = src`` — store of a spilled live range."""

    slot: int
    src: Value

    def uses(self) -> list[Value]:
        return [self.src]

    def defs(self) -> list[Register]:
        return []

    def replace(self, mapping: dict[Value, Value]) -> None:
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"spill slot{self.slot} = {self.src}"
