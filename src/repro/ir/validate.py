"""IR well-formedness checks.

``validate_function`` enforces the structural invariants every pass relies
on.  It is deliberately strict: analyses and allocators assume these hold
and do not re-check them.
"""

from __future__ import annotations

from repro.errors import IRValidationError
from repro.ir.function import Function
from repro.ir.instructions import Call, Phi, Ret
from repro.ir.values import Const, PReg, VReg

__all__ = ["validate_function", "validate_module"]


def validate_function(func: Function, ssa: bool = False) -> None:
    """Raise :class:`IRValidationError` unless ``func`` is well formed.

    Checks:

    * every block ends with exactly one terminator (and none mid-block),
    * branch targets resolve to existing blocks,
    * block labels are unique,
    * phis lead their block and have one incoming per CFG predecessor,
    * operand register classes are consistent per instruction,
    * with ``ssa=True``: every virtual register has at most one definition.
    """
    labels = [blk.label for blk in func.blocks]
    if len(labels) != len(set(labels)):
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        raise IRValidationError(f"{func.name}: duplicate block labels {dupes}")
    if not func.blocks:
        raise IRValidationError(f"{func.name}: function has no blocks")

    label_set = set(labels)
    preds: dict[str, set[str]] = {l: set() for l in labels}

    for blk in func.blocks:
        if not blk.instrs or not blk.instrs[-1].is_terminator:
            raise IRValidationError(
                f"{func.name}/{blk.label}: block does not end in a terminator"
            )
        for instr in blk.instrs[:-1]:
            if instr.is_terminator:
                raise IRValidationError(
                    f"{func.name}/{blk.label}: terminator {instr} mid-block"
                )
        for target in blk.successors():
            if target not in label_set:
                raise IRValidationError(
                    f"{func.name}/{blk.label}: branch to unknown block "
                    f"{target!r}"
                )
            preds[target].add(blk.label)

    for blk in func.blocks:
        seen_non_phi = False
        for instr in blk.instrs:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    raise IRValidationError(
                        f"{func.name}/{blk.label}: phi {instr} does not lead "
                        f"its block"
                    )
                if set(instr.incoming) != preds[blk.label]:
                    raise IRValidationError(
                        f"{func.name}/{blk.label}: phi {instr} incoming "
                        f"labels {sorted(instr.incoming)} != predecessors "
                        f"{sorted(preds[blk.label])}"
                    )
            else:
                seen_non_phi = True
            _check_classes(func, blk.label, instr)

    if ssa:
        _check_single_assignment(func)


def _check_classes(func: Function, label: str, instr) -> None:
    """Per-instruction register-class consistency."""
    if isinstance(instr, Call) and not instr.lowered:
        return  # argument classes are callee-defined until lowering
    if isinstance(instr, Ret):
        return
    defs = instr.defs()
    from repro.ir.instructions import BinOp, Load, Move, UnaryOp

    if isinstance(instr, Move):
        if instr.dst.rclass is not instr.src.rclass:
            raise IRValidationError(
                f"{func.name}/{label}: move mixes classes: {instr}"
            )
    elif isinstance(instr, BinOp) and not instr.op.startswith("cmp"):
        want = defs[0].rclass
        for operand in instr.uses():
            if not isinstance(operand, Const) and operand.rclass is not want:
                raise IRValidationError(
                    f"{func.name}/{label}: binop mixes classes: {instr}"
                )
    elif isinstance(instr, UnaryOp) and instr.op in ("neg", "not", "zext8", "fneg"):
        operand = instr.src
        if not isinstance(operand, Const) and operand.rclass is not defs[0].rclass:
            raise IRValidationError(
                f"{func.name}/{label}: unary mixes classes: {instr}"
            )
    elif isinstance(instr, Load) and instr.width == "byte":
        if defs[0].rclass.value != "int":
            raise IRValidationError(
                f"{func.name}/{label}: byte load into non-int register: {instr}"
            )


def _check_single_assignment(func: Function) -> None:
    defined: set[VReg] = set(func.params)
    for blk in func.blocks:
        for instr in blk.instrs:
            for d in instr.defs():
                if isinstance(d, PReg):
                    continue
                if d in defined:
                    raise IRValidationError(
                        f"{func.name}: SSA violation, {d} defined twice "
                        f"(second at {instr} in {blk.label})"
                    )
                defined.add(d)


def validate_module(module, ssa: bool = False) -> None:
    """Validate every function in a module."""
    for func in module.functions:
        validate_function(func, ssa=ssa)
