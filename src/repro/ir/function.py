"""Basic blocks, functions, and modules.

A :class:`Function` owns an ordered list of :class:`BasicBlock`; the first
block is the entry.  Control flow is by label, resolved through the
function's block map, so blocks can be freely rewritten without fixing up
object references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import IRError
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import RegClass, VReg

__all__ = ["BasicBlock", "Function", "Module"]


@dataclass(eq=False)
class BasicBlock:
    """A labeled straight-line sequence ending in a terminator."""

    label: str
    instrs: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction | None:
        """The final instruction if it is a terminator, else ``None``."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def phis(self) -> list[Phi]:
        """The leading phi instructions of this block."""
        out = []
        for instr in self.instrs:
            if isinstance(instr, Phi):
                out.append(instr)
            else:
                break
        return out

    def non_phi_instrs(self) -> list[Instruction]:
        """Instructions after the leading phis."""
        return self.instrs[len(self.phis()):]

    def successors(self) -> tuple[str, ...]:
        """Labels of successor blocks (empty if no terminator yet)."""
        term = self.terminator
        return term.block_targets() if term else ()

    def insert_before_terminator(self, instr: Instruction) -> None:
        """Insert ``instr`` just before the block terminator."""
        if self.terminator is None:
            self.instrs.append(instr)
        else:
            self.instrs.insert(len(self.instrs) - 1, instr)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instrs)


@dataclass(eq=False)
class Function:
    """A single function: parameters plus an ordered list of blocks."""

    name: str
    params: list[VReg] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    #: Next fresh virtual register id (monotone; never reused).
    next_vreg_id: int = 0
    #: Next fresh spill slot index.
    next_slot: int = 0
    #: True when the function returns a value (drives lowering).
    returns_value: bool = False

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise IRError(f"function {self.name}: no block labeled {label!r}")

    def block_map(self) -> dict[str, BasicBlock]:
        """Label -> block mapping (rebuilt on each call; blocks mutate)."""
        return {blk.label: blk for blk in self.blocks}

    def new_vreg(
        self,
        rclass: RegClass = RegClass.INT,
        name: str | None = None,
        no_spill: bool = False,
    ) -> VReg:
        """Allocate a fresh virtual register."""
        reg = VReg(self.next_vreg_id, rclass, name, no_spill)
        self.next_vreg_id += 1
        return reg

    def new_slot(self) -> int:
        """Allocate a fresh spill slot index."""
        slot = self.next_slot
        self.next_slot += 1
        return slot

    def instructions(self) -> Iterator[tuple[BasicBlock, Instruction]]:
        """Iterate ``(block, instruction)`` pairs in layout order."""
        for blk in self.blocks:
            for instr in blk.instrs:
                yield blk, instr

    def instruction_count(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)

    def vregs(self) -> set[VReg]:
        """All virtual registers appearing anywhere in the function."""
        out: set[VReg] = set(self.params)
        for _, instr in self.instructions():
            for v in instr.uses():
                if isinstance(v, VReg):
                    out.add(v)
            for d in instr.defs():
                if isinstance(d, VReg):
                    out.add(d)
        return out

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        head = f"func {self.name}({params})"
        if self.returns_value:
            head += " -> value"
        body = "\n".join(str(blk) for blk in self.blocks)
        return f"{head} {{\n{body}\n}}"


@dataclass(eq=False)
class Module:
    """A collection of functions compiled and allocated together."""

    name: str = "module"
    functions: list[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise IRError(f"module {self.name}: no function named {name!r}")

    def add(self, func: Function) -> Function:
        self.functions.append(func)
        return func

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions)

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions)
