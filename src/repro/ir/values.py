"""Value kinds used as instruction operands.

The IR is register-transfer style: operands are virtual registers
(:class:`VReg`), physical registers (:class:`PReg`, which appear after the
calling-convention lowering pass and after register allocation), and
integer/float immediates (:class:`Const`).

Registers carry a :class:`RegClass`; the allocator never mixes classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["RegClass", "VReg", "PReg", "Const", "Value", "Register"]


class RegClass(enum.Enum):
    """Architectural register class of a value."""

    INT = "int"
    FLOAT = "float"

    # Enum's default __hash__ hashes the member *name* string on every
    # call; registers and class-keyed tables are hashed millions of times
    # per allocation, so use the identity hash (members are singletons,
    # and Enum equality is already identity).
    __hash__ = object.__hash__

    def prefix(self) -> str:
        """Printer prefix for registers of this class (``v``/``f``)."""
        return "v" if self is RegClass.INT else "f"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegClass.{self.name}"


@dataclass(frozen=True, slots=True)
class VReg:
    """A virtual register (an unbounded supply, one per SSA-ish name).

    ``no_spill`` marks short-lived temporaries introduced by spill code;
    spilling them again would not terminate, so allocators treat their
    spill cost as infinite.
    """

    id: int
    rclass: RegClass = RegClass.INT
    name: str | None = None
    no_spill: bool = False
    #: precomputed hash; register hashing dominates set/dict operations in
    #: the allocator, and the value is an integer function of the identity
    #: fields so hashing (and set iteration order) is process-independent
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            (self.id << 3)
            | (4 if self.rclass is RegClass.FLOAT else 0)
            | (2 if self.no_spill else 0),
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        base = f"%{self.name}" if self.name else f"%{self.rclass.prefix()}{self.id}"
        return base

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, slots=True)
class PReg:
    """A physical register, identified by class and index within the file."""

    index: int
    rclass: RegClass = RegClass.INT
    name: str | None = None
    #: precomputed, process-independent hash (bit 0 set: disjoint from VReg)
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            (self.index << 3)
            | (4 if self.rclass is RegClass.FLOAT else 0)
            | 1,
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.name:
            return f"${self.name}"
        prefix = "r" if self.rclass is RegClass.INT else "fr"
        return f"${prefix}{self.index}"

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, slots=True)
class Const:
    """An immediate operand."""

    value: int | float
    rclass: RegClass = RegClass.INT

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return str(self)


Register = VReg | PReg
Value = VReg | PReg | Const
