"""RTL-style intermediate representation.

The IR is the substrate every other subsystem builds on: values and
register classes (:mod:`repro.ir.values`), the instruction set
(:mod:`repro.ir.instructions`), functions/blocks/modules
(:mod:`repro.ir.function`), an imperative builder, a printer, a parser for
the printed syntax, and a structural validator.
"""

from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Instruction,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
)
from repro.ir.parser import parse_function, parse_module
from repro.ir.printer import print_function, print_module, side_by_side
from repro.ir.validate import validate_function, validate_module
from repro.ir.values import Const, PReg, RegClass, Register, Value, VReg

__all__ = [
    "IRBuilder",
    "BasicBlock",
    "Function",
    "Module",
    "Instruction",
    "ConstInst",
    "Move",
    "UnaryOp",
    "BinOp",
    "Load",
    "Store",
    "Call",
    "Phi",
    "Jump",
    "Branch",
    "Ret",
    "SpillLoad",
    "SpillStore",
    "parse_function",
    "parse_module",
    "print_function",
    "print_module",
    "side_by_side",
    "validate_function",
    "validate_module",
    "Const",
    "PReg",
    "VReg",
    "RegClass",
    "Register",
    "Value",
]
