"""Compact, versioned, deterministic binary encoding of ``Function``.

The codec exists for one contract: **equal IR encodes to equal bytes**,
so ``sha256(encode_function(f))`` is a content key.  Two value-identical
functions — clones, re-parses of the same text, the same function
pickled into another process — produce byte-identical blobs, which lets
the worker pool ship each distinct function once per batch keyed by
digest (:mod:`repro.exec.wire`) and lets the round-0 analysis cache in
:mod:`repro.exec.alloctask` key entries without re-printing the
function text on every job.

Wire layout (all multi-byte scalars big-endian)::

    magic   b"RIRC"                      4 bytes
    version 0x01                         1 byte
    length  len(payload)                 u32
    crc32   zlib.crc32(payload)          u32
    payload

and the payload::

    string table   uvarint count, then per string uvarint len + utf8
    value table    uvarint count, then tagged entries (below)
    function       name strref, flag byte (bit0 returns_value),
                   uvarint next_vreg_id, uvarint next_slot,
                   uvarint n_params + param valrefs (must be VRegs),
                   uvarint n_blocks + blocks
    block          label strref, uvarint n_instrs + instructions

Strings (function name, opcodes, labels, callees, register names, load
widths) and values (``VReg``/``PReg``/``Const``) are interned in
first-use order during a fixed structural traversal, so the tables —
and therefore the bytes — are a pure function of IR content.  Operands
reference table indices as uvarints; signed scalars (constants, memory
offsets) are zigzag varints; float constants are 8-byte IEEE-754
doubles (exact round-trip, so the printer renders the decoded value
identically).

Value-table entries::

    0x00 VReg   flags (1 float, 2 no_spill, 4 named), uvarint id, [strref]
    0x01 PReg   flags (1 float, 4 named), uvarint index, [strref]
    0x02 Const  flags (1 float class), tag byte 0x00 int / 0x01 float,
                then zigzag varint or f64

Instruction opcodes::

    0x00 ConstInst(int)    dst, zigzag value
    0x01 ConstInst(float)  dst, f64 value
    0x02 Move              dst, src
    0x03 UnaryOp           op strref, dst, src
    0x04 BinOp             op strref, dst, lhs, rhs
    0x05 Load              dst, base, zigzag offset, width strref
    0x06 Store             base, zigzag offset, src
    0x07 Call              callee strref, args, flag+[dst],
                           reg_uses (PRegs), reg_defs (PRegs)
    0x08 Phi               dst, uvarint n + (label strref, valref) pairs
                           in insertion order
    0x09 Jump              target strref
    0x0a Branch            cond, iftrue strref, iffalse strref
    0x0b Ret               flag+[src], reg_uses (PRegs)
    0x0c SpillLoad         dst, uvarint slot
    0x0d SpillStore        uvarint slot, src

Decoding validates everything — magic, version, declared length, crc32,
every table index, every operand kind the IR type demands (destinations
are registers, params are VRegs, convention registers are PRegs) — and
raises :class:`repro.errors.CodecError` on any violation; a truncated
or bit-flipped blob can never decode into garbage IR.  Version bumps
are explicit: an old reader rejects a new blob by version byte instead
of misparsing it.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

from repro.errors import CodecError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Jump,
    Load,
    Move,
    Phi,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, PReg, RegClass, VReg

__all__ = [
    "encode_function",
    "decode_function",
    "function_digest",
    "module_digest",
    "CODEC_VERSION",
    "CodecError",
]

MAGIC = b"RIRC"
CODEC_VERSION = 1
_HEADER = struct.Struct(">4sBII")
_F64 = struct.Struct(">d")

_VAL_VREG, _VAL_PREG, _VAL_CONST = 0, 1, 2
(_OP_CONST_INT, _OP_CONST_FLOAT, _OP_MOVE, _OP_UNARY, _OP_BIN, _OP_LOAD,
 _OP_STORE, _OP_CALL, _OP_PHI, _OP_JUMP, _OP_BRANCH, _OP_RET,
 _OP_SPILL_LOAD, _OP_SPILL_STORE) = range(14)


def _uvarint(out: bytearray, n: int) -> None:
    if n < 0:
        raise CodecError(f"negative count/index {n} is not encodable")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(out: bytearray, n: int) -> None:
    _uvarint(out, (n << 1) if n >= 0 else ((-n) << 1) - 1)


class _Encoder:
    """Interning tables plus the body buffer of one function."""

    def __init__(self) -> None:
        self.body = bytearray()
        self._strings: dict[str, int] = {}
        self._str_table: list[str] = []
        self._values: dict[tuple, int] = {}
        self._val_table = bytearray()
        self._n_values = 0

    def strref(self, text: str, out: bytearray | None = None) -> None:
        if not isinstance(text, str):
            raise CodecError(f"expected a string operand, got {text!r}")
        index = self._strings.get(text)
        if index is None:
            index = self._strings[text] = len(self._str_table)
            self._str_table.append(text)
        _uvarint(self.body if out is None else out, index)

    def valref(self, value) -> None:
        # Interning must not conflate ``Const(1)`` with ``Const(1.0)``
        # (dataclass equality would: ``1 == 1.0``), so Const keys carry
        # the concrete value type.
        if isinstance(value, VReg):
            key = ("v", value.id, value.rclass, value.name, value.no_spill)
        elif isinstance(value, PReg):
            key = ("p", value.index, value.rclass, value.name)
        elif isinstance(value, Const):
            key = ("c", value.rclass, type(value.value), value.value)
        else:
            raise CodecError(f"unencodable operand {value!r} "
                             f"({type(value).__name__})")
        index = self._values.get(key)
        if index is None:
            index = self._values[key] = self._n_values
            self._n_values += 1
            self._encode_value(value)
        _uvarint(self.body, index)

    def regref(self, value) -> None:
        if not isinstance(value, (VReg, PReg)):
            raise CodecError(f"destination must be a register, "
                             f"got {value!r}")
        self.valref(value)

    def _encode_value(self, value) -> None:
        out = self._val_table
        if isinstance(value, VReg):
            out.append(_VAL_VREG)
            out.append((1 if value.rclass is RegClass.FLOAT else 0)
                       | (2 if value.no_spill else 0)
                       | (4 if value.name is not None else 0))
            _uvarint(out, value.id)
            if value.name is not None:
                self.strref(value.name, out)
        elif isinstance(value, PReg):
            out.append(_VAL_PREG)
            out.append((1 if value.rclass is RegClass.FLOAT else 0)
                       | (4 if value.name is not None else 0))
            _uvarint(out, value.index)
            if value.name is not None:
                self.strref(value.name, out)
        else:
            out.append(_VAL_CONST)
            out.append(1 if value.rclass is RegClass.FLOAT else 0)
            if type(value.value) is int:
                out.append(0)
                _zigzag(out, value.value)
            elif type(value.value) is float:
                out.append(1)
                out.extend(_F64.pack(value.value))
            else:
                raise CodecError(f"unencodable immediate "
                                 f"{value.value!r} "
                                 f"({type(value.value).__name__})")

    def payload(self) -> bytes:
        head = bytearray()
        _uvarint(head, len(self._str_table))
        for text in self._str_table:
            raw = text.encode("utf-8")
            _uvarint(head, len(raw))
            head.extend(raw)
        _uvarint(head, self._n_values)
        head.extend(self._val_table)
        return bytes(head + self.body)


def _encode_instr(enc: _Encoder, instr) -> None:
    body = enc.body
    if isinstance(instr, ConstInst):
        if type(instr.value) is int:
            body.append(_OP_CONST_INT)
            enc.regref(instr.dst)
            _zigzag(body, instr.value)
        elif type(instr.value) is float:
            body.append(_OP_CONST_FLOAT)
            enc.regref(instr.dst)
            body.extend(_F64.pack(instr.value))
        else:
            raise CodecError(f"unencodable constant {instr.value!r} "
                             f"({type(instr.value).__name__})")
    elif isinstance(instr, Move):
        body.append(_OP_MOVE)
        enc.regref(instr.dst)
        enc.valref(instr.src)
    elif isinstance(instr, UnaryOp):
        body.append(_OP_UNARY)
        enc.strref(instr.op)
        enc.regref(instr.dst)
        enc.valref(instr.src)
    elif isinstance(instr, BinOp):
        body.append(_OP_BIN)
        enc.strref(instr.op)
        enc.regref(instr.dst)
        enc.valref(instr.lhs)
        enc.valref(instr.rhs)
    elif isinstance(instr, Load):
        body.append(_OP_LOAD)
        enc.regref(instr.dst)
        enc.valref(instr.base)
        _zigzag(body, instr.offset)
        enc.strref(instr.width)
    elif isinstance(instr, Store):
        body.append(_OP_STORE)
        enc.valref(instr.base)
        _zigzag(body, instr.offset)
        enc.valref(instr.src)
    elif isinstance(instr, Call):
        body.append(_OP_CALL)
        enc.strref(instr.callee)
        _uvarint(body, len(instr.args))
        for arg in instr.args:
            enc.valref(arg)
        if instr.dst is not None:
            body.append(1)
            enc.regref(instr.dst)
        else:
            body.append(0)
        for regs in (instr.reg_uses, instr.reg_defs):
            _uvarint(body, len(regs))
            for reg in regs:
                if not isinstance(reg, PReg):
                    raise CodecError(f"convention register must be a "
                                     f"PReg, got {reg!r}")
                enc.valref(reg)
    elif isinstance(instr, Phi):
        body.append(_OP_PHI)
        enc.regref(instr.dst)
        _uvarint(body, len(instr.incoming))
        for label, value in instr.incoming.items():
            enc.strref(label)
            enc.valref(value)
    elif isinstance(instr, Jump):
        body.append(_OP_JUMP)
        enc.strref(instr.target)
    elif isinstance(instr, Branch):
        body.append(_OP_BRANCH)
        enc.valref(instr.cond)
        enc.strref(instr.iftrue)
        enc.strref(instr.iffalse)
    elif isinstance(instr, Ret):
        body.append(_OP_RET)
        if instr.src is not None:
            body.append(1)
            enc.valref(instr.src)
        else:
            body.append(0)
        _uvarint(body, len(instr.reg_uses))
        for reg in instr.reg_uses:
            if not isinstance(reg, PReg):
                raise CodecError(f"convention register must be a PReg, "
                                 f"got {reg!r}")
            enc.valref(reg)
    elif isinstance(instr, SpillLoad):
        body.append(_OP_SPILL_LOAD)
        enc.regref(instr.dst)
        _uvarint(body, instr.slot)
    elif isinstance(instr, SpillStore):
        body.append(_OP_SPILL_STORE)
        _uvarint(body, instr.slot)
        enc.valref(instr.src)
    else:
        raise CodecError(f"unencodable instruction "
                         f"{type(instr).__name__}")


def encode_function(func: Function) -> bytes:
    """``func`` as a self-contained, digest-stable binary blob."""
    enc = _Encoder()
    body = enc.body
    enc.strref(func.name)
    body.append(1 if func.returns_value else 0)
    _uvarint(body, func.next_vreg_id)
    _uvarint(body, func.next_slot)
    _uvarint(body, len(func.params))
    for param in func.params:
        if not isinstance(param, VReg):
            raise CodecError(f"parameter must be a VReg, got {param!r}")
        enc.valref(param)
    _uvarint(body, len(func.blocks))
    for block in func.blocks:
        enc.strref(block.label)
        _uvarint(body, len(block.instrs))
        for instr in block.instrs:
            _encode_instr(enc, instr)
    payload = enc.payload()
    return _HEADER.pack(MAGIC, CODEC_VERSION, len(payload),
                        zlib.crc32(payload)) + payload


class _Reader:
    """Bounds-checked cursor over the payload."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, pos: int, end: int) -> None:
        self.data = data
        self.pos = pos
        self.end = end

    def u8(self) -> int:
        if self.pos >= self.end:
            raise CodecError("truncated blob: expected a byte")
        byte = self.data[self.pos]
        self.pos += 1
        return byte

    def take(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise CodecError(f"truncated blob: expected {n} bytes")
        raw = self.data[self.pos:self.pos + n]
        self.pos += n
        return raw

    def uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def zigzag(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]


class _Decoder:
    def __init__(self, reader: _Reader) -> None:
        self.r = reader
        self.strings: list[str] = []
        self.values: list = []

    def load_tables(self) -> None:
        r = self.r
        for _ in range(r.uvarint()):
            raw = r.take(r.uvarint())
            try:
                self.strings.append(raw.decode("utf-8"))
            except UnicodeDecodeError as err:
                raise CodecError(f"corrupt string table: {err}") from err
        for _ in range(r.uvarint()):
            self.values.append(self._decode_value())

    def _decode_value(self):
        r = self.r
        tag = r.u8()
        if tag == _VAL_VREG:
            flags = r.u8()
            vid = r.uvarint()
            name = self.string() if flags & 4 else None
            return VReg(vid,
                        RegClass.FLOAT if flags & 1 else RegClass.INT,
                        name, bool(flags & 2))
        if tag == _VAL_PREG:
            flags = r.u8()
            index = r.uvarint()
            name = self.string() if flags & 4 else None
            return PReg(index,
                        RegClass.FLOAT if flags & 1 else RegClass.INT,
                        name)
        if tag == _VAL_CONST:
            rclass = RegClass.FLOAT if r.u8() & 1 else RegClass.INT
            kind = r.u8()
            if kind == 0:
                return Const(r.zigzag(), rclass)
            if kind == 1:
                return Const(r.f64(), rclass)
            raise CodecError(f"unknown immediate kind {kind}")
        raise CodecError(f"unknown value tag {tag}")

    def string(self) -> str:
        index = self.r.uvarint()
        if index >= len(self.strings):
            raise CodecError(f"string index {index} out of range")
        return self.strings[index]

    def value(self):
        index = self.r.uvarint()
        if index >= len(self.values):
            raise CodecError(f"value index {index} out of range")
        return self.values[index]

    def register(self):
        value = self.value()
        if not isinstance(value, (VReg, PReg)):
            raise CodecError(f"expected a register operand, "
                             f"got {value!r}")
        return value

    def preg(self) -> PReg:
        value = self.value()
        if not isinstance(value, PReg):
            raise CodecError(f"expected a physical register, "
                             f"got {value!r}")
        return value

    def instr(self):
        r = self.r
        op = r.u8()
        if op == _OP_CONST_INT:
            return ConstInst(self.register(), r.zigzag())
        if op == _OP_CONST_FLOAT:
            return ConstInst(self.register(), r.f64())
        if op == _OP_MOVE:
            return Move(self.register(), self.value())
        if op == _OP_UNARY:
            return UnaryOp(self.string(), self.register(), self.value())
        if op == _OP_BIN:
            return BinOp(self.string(), self.register(), self.value(),
                         self.value())
        if op == _OP_LOAD:
            dst, base = self.register(), self.value()
            return Load(dst, base, r.zigzag(), self.string())
        if op == _OP_STORE:
            base = self.value()
            offset = r.zigzag()
            return Store(base, offset, self.value())
        if op == _OP_CALL:
            callee = self.string()
            args = [self.value() for _ in range(r.uvarint())]
            dst = self.register() if r.u8() & 1 else None
            reg_uses = [self.preg() for _ in range(r.uvarint())]
            reg_defs = [self.preg() for _ in range(r.uvarint())]
            return Call(callee, args, dst, reg_uses, reg_defs)
        if op == _OP_PHI:
            dst = self.register()
            incoming = {}
            for _ in range(r.uvarint()):
                incoming[self.string()] = self.value()
            return Phi(dst, incoming)
        if op == _OP_JUMP:
            return Jump(self.string())
        if op == _OP_BRANCH:
            return Branch(self.value(), self.string(), self.string())
        if op == _OP_RET:
            src = self.value() if r.u8() & 1 else None
            return Ret(src, [self.preg() for _ in range(r.uvarint())])
        if op == _OP_SPILL_LOAD:
            return SpillLoad(self.register(), r.uvarint())
        if op == _OP_SPILL_STORE:
            slot = r.uvarint()
            return SpillStore(slot, self.value())
        raise CodecError(f"unknown opcode {op}")


def decode_function(blob: bytes) -> Function:
    """The :class:`Function` a blob encodes; :class:`CodecError` on any
    truncation, corruption, or version mismatch."""
    if len(blob) < _HEADER.size:
        raise CodecError(f"blob of {len(blob)} bytes is shorter than "
                         f"the {_HEADER.size}-byte header")
    magic, version, length, crc = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (want {MAGIC!r})")
    if version != CODEC_VERSION:
        raise CodecError(f"unsupported codec version {version} "
                         f"(this reader speaks {CODEC_VERSION})")
    if len(blob) != _HEADER.size + length:
        raise CodecError(f"declared payload of {length} bytes, "
                         f"found {len(blob) - _HEADER.size}")
    payload = blob[_HEADER.size:]
    if zlib.crc32(payload) != crc:
        raise CodecError("payload checksum mismatch (corrupted blob)")
    try:
        dec = _Decoder(_Reader(blob, _HEADER.size, len(blob)))
        dec.load_tables()
        r = dec.r
        name = dec.string()
        flags = r.u8()
        next_vreg_id = r.uvarint()
        next_slot = r.uvarint()
        params = []
        for _ in range(r.uvarint()):
            param = dec.value()
            if not isinstance(param, VReg):
                raise CodecError(f"parameter must be a VReg, "
                                 f"got {param!r}")
            params.append(param)
        blocks = []
        for _ in range(r.uvarint()):
            label = dec.string()
            instrs = [dec.instr() for _ in range(r.uvarint())]
            blocks.append(BasicBlock(label, instrs))
        if r.pos != r.end:
            raise CodecError(f"{r.end - r.pos} trailing bytes after "
                             f"the function body")
        return Function(name, params, blocks, next_vreg_id, next_slot,
                        bool(flags & 1))
    except CodecError:
        raise
    except Exception as err:  # defensive: never let garbage escape
        raise CodecError(f"undecodable blob: {type(err).__name__}: "
                         f"{err}") from err


def function_digest(func: Function) -> str:
    """``sha256`` hex digest of :func:`encode_function` — the content
    key two value-identical functions share."""
    return hashlib.sha256(encode_function(func)).hexdigest()


def module_digest(module) -> str:
    """Content digest of a whole module (name + each function blob,
    length-framed so concatenations cannot collide)."""
    h = hashlib.sha256()
    raw_name = module.name.encode("utf-8")
    h.update(len(raw_name).to_bytes(4, "big"))
    h.update(raw_name)
    for func in module.functions:
        blob = encode_function(func)
        h.update(len(blob).to_bytes(4, "big"))
        h.update(blob)
    return h.hexdigest()
