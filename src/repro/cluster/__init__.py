"""Multi-node topology: digest-sharded router over N service backends.

``repro.cluster`` scales :mod:`repro.service` past one host: a router
front end speaks the unchanged v2 LDJSON protocol, content-addresses
every request with the cache's own fingerprint, and shards it across N
backend servers — locally spawned subprocesses (supervised, respawned)
or remote ``host:port`` backends.  A TCP cache-peer tier shares
non-degraded results across shards, hedged retries cut tail latency by
racing a quiet home shard against a fallback, and per-shard admission
feeds global backpressure.  Clients cannot tell a cluster from a single
server; non-degraded responses stay byte-identical to a direct
:func:`repro.pipeline.allocate_module` run.
"""

from repro.cluster.cachepeer import (
    CachePeerServer,
    PeerCacheBackend,
    parse_hostport,
)
from repro.cluster.health import ShardHandle, ShardHealth
from repro.cluster.router import (
    ClusterMetrics,
    ClusterRouter,
    ClusterServer,
    ClusterServerThread,
)
from repro.cluster.shards import ClusterSupervisor, ShardProcess

__all__ = [
    "CachePeerServer",
    "PeerCacheBackend",
    "parse_hostport",
    "ShardHandle",
    "ShardHealth",
    "ClusterMetrics",
    "ClusterRouter",
    "ClusterServer",
    "ClusterServerThread",
    "ClusterSupervisor",
    "ShardProcess",
]
