"""Shard supervisor: spawn, watch, and respawn backend server processes.

A :class:`ShardProcess` is one ``python -m repro serve`` subprocess
bound to an ephemeral port (the bound address is scraped from its
startup line).  :class:`ClusterSupervisor` owns the full local topology:
the shared :class:`~repro.cluster.cachepeer.CachePeerServer` (hosted on
a thread in the router process — shards reach it over TCP, so the
sharing is real cross-process traffic) plus N shard processes wired to
it via ``serve --cache-peer``.

Supervision follows the worker-pool idiom: a dead shard's seat is
refilled (bounded by ``max_respawns`` across the cluster's lifetime)
with a *new* process on a *new* port, and its :class:`ShardHandle` is
re-pointed in place so the router picks up the new address on the next
route.  Between death and respawn the router's health layer routes
around the hole; a respawned shard starts with a cold local cache but a
warm shared tier, so re-routed repeats still hit.

``addresses=`` skips spawning entirely and supervises nothing — the
handles just name remote ``host:port`` backends (multi-host topology).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
from pathlib import Path

from repro.cluster.cachepeer import CachePeerServer, parse_hostport
from repro.cluster.health import ShardHandle
from repro.errors import ServiceError
from repro.service.cache import DiskCacheBackend, ResultCache

__all__ = ["ShardProcess", "ClusterSupervisor"]

_LISTENING = re.compile(r"listening on ([\w\.\-]+):(\d+)")


def _repro_pythonpath() -> str:
    """A PYTHONPATH that lets a child ``python -m repro`` import us."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    if existing and src not in existing.split(os.pathsep):
        return src + os.pathsep + existing
    return existing or src


class ShardProcess:
    """One backend server subprocess and its scraped bound address."""

    def __init__(self, index: int, jobs: int = 1, cache_size: int = 64,
                 max_queue: int = 64, cache_peer: str | None = None,
                 start_timeout_s: float = 20.0,
                 extra_args: tuple = ()):
        self.index = index
        self.jobs = jobs
        self.cache_size = cache_size
        self.max_queue = max_queue
        self.cache_peer = cache_peer
        self.start_timeout_s = start_timeout_s
        self.extra_args = tuple(extra_args)
        self.process: subprocess.Popen | None = None
        self.host = ""
        self.port = 0

    def start(self) -> tuple:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--jobs", str(self.jobs),
            "--cache-size", str(self.cache_size),
            "--max-queue", str(self.max_queue),
            "--no-disk-cache",
        ]
        if self.cache_peer:
            argv += ["--cache-peer", self.cache_peer]
        argv += list(self.extra_args)
        env = os.environ.copy()
        env["PYTHONPATH"] = _repro_pythonpath()
        self.process = subprocess.Popen(
            argv, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        line = self._read_startup_line()
        match = _LISTENING.search(line or "")
        if match is None:
            self.kill()
            raise ServiceError(
                f"shard {self.index} did not report a listening address "
                f"within {self.start_timeout_s}s (got {line!r})"
            )
        self.host, self.port = match.group(1), int(match.group(2))
        return self.host, self.port

    def _read_startup_line(self) -> str | None:
        holder: list = []

        def read() -> None:
            holder.append(self.process.stdout.readline())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=self.start_timeout_s)
        return holder[0] if holder else None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process else None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the process (the fault path; shutdown uses the wire)."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=5.0)

    def terminate(self, grace_s: float = 3.0) -> None:
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self.kill()
        if self.process.stdout is not None:
            self.process.stdout.close()


class ClusterSupervisor:
    """The local cluster topology: cache peer + N supervised shards."""

    def __init__(self, shards: int = 3, jobs: int = 1,
                 cache_size: int = 64, max_queue: int = 64,
                 disk_dir: Path | str | None = None,
                 peer_store_entries: int = 4096,
                 max_respawns: int = 8,
                 addresses: list | None = None,
                 start_timeout_s: float = 20.0):
        if addresses is None and shards < 1:
            raise ValueError("shards must be >= 1")
        self.jobs = jobs
        self.cache_size = cache_size
        self.max_queue = max_queue
        self.max_respawns = max_respawns
        self.start_timeout_s = start_timeout_s
        self.respawns = 0
        self._addresses = addresses
        self._want = len(addresses) if addresses is not None else shards
        backend = DiskCacheBackend(disk_dir) if disk_dir else None
        self.peer = CachePeerServer(
            store=ResultCache(max_entries=peer_store_entries,
                              backend=backend))
        self.processes: list[ShardProcess | None] = [None] * self._want
        self.handles: list[ShardHandle] = []
        self._started = False

    @property
    def local(self) -> bool:
        return self._addresses is None

    def start(self) -> list[ShardHandle]:
        """Start the peer tier and every shard; returns the handles."""
        if self._started:
            return self.handles
        peer_host, peer_port = self.peer.start()
        peer_spec = f"{peer_host}:{peer_port}"
        self.handles = []
        try:
            if self._addresses is not None:
                for i, spec in enumerate(self._addresses):
                    host, port = parse_hostport(spec)
                    self.handles.append(ShardHandle(i, host, port))
            else:
                for i in range(self._want):
                    shard = ShardProcess(
                        i, jobs=self.jobs, cache_size=self.cache_size,
                        max_queue=self.max_queue, cache_peer=peer_spec,
                        start_timeout_s=self.start_timeout_s,
                    )
                    host, port = shard.start()
                    self.processes[i] = shard
                    self.handles.append(ShardHandle(i, host, port))
        except Exception:
            self.stop()
            raise
        self._started = True
        return self.handles

    # -- supervision ---------------------------------------------------

    def reap_and_respawn(self) -> list:
        """One supervision tick: find dead shards, refill their seats.

        Returns ``(index, ok)`` pairs for every seat acted on, so the
        router can flip the matching health entries (down on death, up
        on successful respawn).
        """
        if not self.local or not self._started:
            return []
        acted = []
        for i, shard in enumerate(self.processes):
            if shard is None or shard.alive():
                continue
            if self.respawns >= self.max_respawns:
                acted.append((i, False))
                self.processes[i] = None
                continue
            self.respawns += 1
            try:
                replacement = ShardProcess(
                    i, jobs=self.jobs, cache_size=self.cache_size,
                    max_queue=self.max_queue,
                    cache_peer=f"{self.peer.host}:{self.peer.port}",
                    start_timeout_s=self.start_timeout_s,
                )
                host, port = replacement.start()
            except Exception:
                acted.append((i, False))
                self.processes[i] = None
                continue
            self.processes[i] = replacement
            self.handles[i].host = host
            self.handles[i].port = port
            acted.append((i, True))
        return acted

    def kill_shard(self, index: int) -> None:
        """SIGKILL one shard (tests and the resilience drills)."""
        shard = self.processes[index]
        if shard is not None:
            shard.kill()

    def stop(self) -> None:
        for shard in self.processes:
            if shard is not None:
                shard.terminate()
        self.processes = [None] * self._want
        self.peer.stop()
        self._started = False

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def snapshot(self) -> dict:
        shards = []
        for i, handle in enumerate(self.handles):
            shard = self.processes[i] if i < len(self.processes) else None
            shards.append({
                "shard": i,
                "address": handle.address(),
                "pid": shard.pid if shard is not None else None,
                "alive": shard.alive() if shard is not None else None,
            })
        return {
            "local": self.local,
            "shards": shards,
            "respawns": self.respawns,
            "max_respawns": self.max_respawns,
            "cache_peer": self.peer.snapshot(),
        }
