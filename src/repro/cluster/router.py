"""Digest-sharded routing tier: LDJSON front end over N backend shards.

The router speaks exactly the v2 service protocol — clients are
oblivious that a cluster, not a single server, is answering.  Each
``allocate`` line is content-addressed with the *same*
:func:`~repro.service.cache.request_fingerprint` the shards key their
caches on, and the digest picks the home shard (``digest % N``), so one
request's repeats always land on one shard and its local L1 cache does
the work; the shared cache-peer tier catches cross-shard lookups after
re-routes and hedges.  ``allocate_delta`` lines route by their *session
token* (``base``) instead — the token stays constant along an edit
chain, so a keystroke stream stays pinned to the shard holding its
retained sessions without the router ever parsing the edited body.  The
raw request line is forwarded byte-for-byte
(no re-encode) and the shard's response line is returned unchanged.

Three resilience mechanisms compose around that straight path:

* **re-route** — a forward that fails at the transport level (dead
  shard, reset, timeout) marks the shard in :class:`ShardHealth` and
  retries on the next shard of the ring; with the shared cache tier a
  re-routed repeat is still a cache hit;
* **hedged retries** — if the home shard has not answered within
  ``hedge_s``, the same line is issued to the next shard and the first
  *non-degraded* answer wins (a degraded answer is stashed and only
  used when nothing better arrives).  The loser is cancelled; if it
  completes anyway its shard may cache the result — which is safe and
  even useful, because shards never cache degraded results, so a
  degraded hedge loser can never poison any cache tier;
* **backpressure** — per-shard in-flight counts feed admission: when
  every available shard is past the soft watermark the router degrades
  the request one rung of the service ladder before forwarding (the
  response is patched to carry ``degraded: true`` and the original
  ``allocator``); past the hard limit it rejects outright, mirroring
  the scheduler's bounded-queue rejection.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from collections import OrderedDict

from repro.cluster.health import ShardHandle, ShardHealth
from repro.cluster.shards import ClusterSupervisor
from repro.errors import ServiceError
from repro.ir.printer import print_module
from repro.reporting import canonical_json
from repro.service.cache import request_fingerprint
from repro.service.metrics import LatencyHistogram
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AllocationRequest,
    AllocationResponse,
)
from repro.service.scheduler import degrade_for, resolve_module
from repro.service.schema import allocation_payload, cluster_stats_payload

__all__ = ["ClusterMetrics", "ClusterRouter", "ClusterServer",
           "ClusterServerThread"]


class ClusterMetrics:
    """Router-side counters and latency; same shape discipline as
    :class:`~repro.service.metrics.ServiceMetrics`."""

    PHASES = ("total", "forward", "digest")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latency = {phase: LatencyHistogram() for phase in self.PHASES}
        self.counters = {
            "requests_total": 0,
            "responses_ok": 0,
            "responses_error": 0,
            "rejected_total": 0,
            "degraded_total": 0,
            "routed_total": 0,
            "reroutes_total": 0,
            "hedges_started": 0,
            "hedge_wins_primary": 0,
            "hedge_wins_fallback": 0,
            "digest_cache_hits": 0,
            "digest_cache_misses": 0,
        }

    def inc(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self.counters[counter] += by

    def observe(self, phase: str, seconds: float) -> None:
        with self._lock:
            self.latency[phase].observe(seconds)

    @property
    def hedge_win_rate(self) -> float:
        with self._lock:
            started = self.counters["hedges_started"]
            wins = self.counters["hedge_wins_fallback"]
        return wins / started if started else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self.counters),
                "hedge_win_rate": round(
                    (self.counters["hedge_wins_fallback"]
                     / self.counters["hedges_started"])
                    if self.counters["hedges_started"] else 0.0, 4),
                "latency": {
                    phase: hist.snapshot()
                    for phase, hist in self.latency.items()
                },
            }


def _error_payload(request_id: str, message: str,
                   allocator: str = "") -> dict:
    return allocation_payload(
        AllocationResponse.error_response(request_id, message, allocator))


class ClusterRouter:
    """Routes allocate lines to shards; owns health and hedging policy.

    All mutation happens on one event loop; only the metrics and the
    digest memo (shared with executor threads) carry locks.
    """

    def __init__(
        self,
        shards: list[ShardHandle],
        supervisor: ClusterSupervisor | None = None,
        metrics: ClusterMetrics | None = None,
        hedge_s: float | None = 0.25,
        saturation: int = 8,
        forward_timeout_s: float = 120.0,
        connect_timeout_s: float = 5.0,
        supervise_interval_s: float = 0.5,
        digest_memo_size: int = 256,
    ):
        self.supervisor = supervisor
        self.metrics = metrics or ClusterMetrics()
        self.health = ShardHealth(shards, saturation=saturation)
        self.hedge_s = hedge_s
        self.forward_timeout_s = forward_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.supervise_interval_s = supervise_interval_s
        self._digest_memo: "OrderedDict[tuple, str]" = OrderedDict()
        self._digest_memo_size = max(1, digest_memo_size)
        self._digest_lock = threading.Lock()
        self._supervise_task: asyncio.Task | None = None

    # -- content addressing --------------------------------------------

    def _digest_for(self, request: AllocationRequest) -> str:
        """The request's cache key — identical to the shard's own.

        The memo key compacts the IR component to a sha256 of the raw
        request text (the memo used to hold the full text per entry, so
        a 256-entry memo over large modules pinned megabytes); the memo
        *value* remains the shard-identical ``request_fingerprint``, so
        forwarded hints are byte-for-byte unchanged.
        """
        options = request.options
        key = (
            hashlib.sha256(request.ir.encode()).hexdigest()
            if request.ir is not None
            else ("bench", request.bench),
            request.machine.regs,
            request.machine.has_paired_loads,
            request.allocator,
            options.verify,
            options.max_rounds,
            options.rematerialize,
            # None for the default policy — every pre-policy memo key
            # stays byte-for-byte the same tuple.
            None if options.policy.is_default() else options.policy.digest(),
        )
        with self._digest_lock:
            hit = self._digest_memo.get(key)
            if hit is not None:
                self._digest_memo.move_to_end(key)
                self.metrics.inc("digest_cache_hits")
                return hit
        self.metrics.inc("digest_cache_misses")
        normalized = print_module(resolve_module(request))
        machine = request.machine.build()
        digest = request_fingerprint(normalized, machine,
                                     request.allocator, options=options)
        with self._digest_lock:
            self._digest_memo[key] = digest
            self._digest_memo.move_to_end(key)
            while len(self._digest_memo) > self._digest_memo_size:
                self._digest_memo.popitem(last=False)
        return digest

    # -- forwarding ----------------------------------------------------

    async def _forward_line(self, shard: ShardHandle, line: bytes,
                            count: bool = True) -> dict:
        """One request line to one shard; transport failures raise."""
        self.health.begin(shard.index)
        writer = None
        started = time.perf_counter()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                timeout=self.connect_timeout_s,
            )
            writer.write(line)
            await writer.drain()
            reply = await asyncio.wait_for(
                reader.readline(), timeout=self.forward_timeout_s)
            if not reply:
                raise ConnectionError("shard closed the connection "
                                      "mid-request")
            response = json.loads(reply)
            if not isinstance(response, dict):
                raise ValueError("shard reply is not a JSON object")
        except (OSError, ValueError, asyncio.TimeoutError) as err:
            self.health.record_failure(shard.index,
                                       f"{type(err).__name__}: {err}")
            raise
        finally:
            self.health.end(shard.index)
            if writer is not None:
                writer.close()
        self.health.record_success(shard.index)
        if count:
            self.metrics.inc("routed_total")
            self.metrics.observe("forward", time.perf_counter() - started)
        return response

    async def _hedged_forward(self, order: list, line: bytes) -> dict:
        """Forward with hedging + re-route; returns the winning reply.

        ``order`` is the availability-filtered shard ring, home first.
        The first transport failure with nothing else in flight starts
        the next shard immediately (re-route); a quiet home shard past
        ``hedge_s`` starts the next shard *speculatively* (hedge).  The
        first non-degraded ``ok`` reply wins; degraded or error replies
        are stashed and returned only when every attempt has finished.
        """
        remaining = list(order)
        tasks: dict[asyncio.Task, str] = {}
        stash: dict | None = None
        stash_role = ""
        last_error: BaseException | None = None
        hedged = False

        def launch(role: str) -> bool:
            if not remaining:
                return False
            shard = remaining.pop(0)
            task = asyncio.ensure_future(self._forward_line(shard, line))
            tasks[task] = role
            return True

        launch("primary")
        try:
            while tasks:
                timeout = (self.hedge_s
                           if not hedged and self.hedge_s is not None
                           and remaining else None)
                done, _ = await asyncio.wait(
                    tasks.keys(), timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED)
                if not done:
                    hedged = True
                    self.metrics.inc("hedges_started")
                    launch("fallback")
                    continue
                for task in done:
                    role = tasks.pop(task)
                    try:
                        reply = task.result()
                    except Exception as err:
                        last_error = err
                        # Re-route only when nothing else is in flight —
                        # an in-flight hedge may still win.
                        if not tasks and stash is None and remaining:
                            self.metrics.inc("reroutes_total")
                            launch(role)
                        continue
                    if reply.get("ok") and not reply.get("degraded"):
                        if hedged:
                            self.metrics.inc(
                                "hedge_wins_primary" if role == "primary"
                                else "hedge_wins_fallback")
                        return reply
                    # Degraded (or shard-level error) reply: keep the
                    # best seen, prefer ok over error, primary over
                    # fallback, but wait for anything still running.
                    if stash is None or (reply.get("ok")
                                         and not stash.get("ok")):
                        stash, stash_role = reply, role
        finally:
            for task in tasks:
                task.cancel()

        if stash is not None:
            if hedged:
                self.metrics.inc(
                    "hedge_wins_primary" if stash_role == "primary"
                    else "hedge_wins_fallback")
            return stash
        raise last_error if last_error is not None else ServiceError(
            "no shard accepted the request")

    # -- the allocate path ---------------------------------------------

    async def route(self, message: dict, raw_line: bytes) -> dict:
        """One ``allocate`` message -> one response payload."""
        started = time.perf_counter()
        self.metrics.inc("requests_total")
        request_id = str(message.get("id", ""))
        try:
            request = AllocationRequest.from_wire(message)
        except Exception as err:
            self.metrics.inc("responses_error")
            return _error_payload(request_id, str(err),
                                  str(message.get("allocator", "")))

        if self.health.rejecting():
            self.metrics.inc("rejected_total")
            self.metrics.inc("responses_error")
            return _error_payload(
                request_id,
                "cluster saturated: admission control rejected the request",
                request.allocator,
            )

        if request.base_digest:
            # Edit-chain affinity: the session token itself is the
            # routing key, so every keystroke of one stream keeps
            # landing on the shard holding its sessions (the shard
            # stores the advanced session back under the client's
            # token).  No parse, no digest memo, no cache hint — the
            # delta path is served from the session store.
            digest = request.base_digest
            rewired = dict(message)
        else:
            loop = asyncio.get_event_loop()
            t0 = time.perf_counter()
            try:
                digest = await loop.run_in_executor(
                    None, self._digest_for, request)
            except Exception as err:
                self.metrics.inc("responses_error")
                return _error_payload(request_id, str(err),
                                      request.allocator)
            self.metrics.observe("digest", time.perf_counter() - t0)

            # The digest IS the shard's cache key; forwarding it lets
            # the shard skip re-normalizing the module on its hit path
            # (router and shards are one trust domain — the digest was
            # computed with the shard's own fingerprint function).
            rewired = dict(message)
            rewired["fingerprint_hint"] = digest
        # Overload (all shards past the soft watermark): degrade one
        # rung at the router, exactly the scheduler's ladder.
        router_degraded = False
        if self.health.overloaded():
            effective = degrade_for(request.allocator,
                                    request.options.policy)
            if effective != request.allocator:
                router_degraded = True
                rewired["allocator"] = effective
        line = (canonical_json(rewired) + "\n").encode()

        order = self.health.route_order(digest)
        if not order:
            self.metrics.inc("responses_error")
            return _error_payload(request_id, "no shards available",
                                  request.allocator)
        try:
            reply = await self._hedged_forward(order, line)
        except Exception as err:
            self.metrics.inc("responses_error")
            return _error_payload(
                request_id,
                f"all shards failed: {type(err).__name__}: {err}",
                request.allocator,
            )

        if router_degraded:
            reply = dict(reply)
            if reply.get("cached") and (
                reply.get("allocator") == request.allocator
            ):
                # The hint still pointed at the *original* allocator's
                # entry and the shard had it — the cache absorbed the
                # overload, so the client gets the real answer.
                pass
            else:
                # The shard honestly served the downgraded allocator;
                # the client asked for the original, so the reply must
                # say both.
                reply["allocator"] = request.allocator
                reply["degraded"] = True
        if reply.get("degraded"):
            self.metrics.inc("degraded_total")
        self.metrics.inc("responses_ok" if reply.get("ok")
                         else "responses_error")
        self.metrics.observe("total", time.perf_counter() - started)
        return reply

    # -- control plane -------------------------------------------------

    async def _shard_stats(self, shard: ShardHandle) -> dict | None:
        """Best-effort stats probe of one shard."""
        line = (canonical_json({"type": "stats"}) + "\n").encode()
        try:
            return await self._forward_line(shard, line, count=False)
        except Exception:
            return None

    async def stats(self) -> dict:
        usable = [s for s in self.health.shards
                  if self.health.available(s.index)]
        probes = await asyncio.gather(
            *(self._shard_stats(s) for s in usable))
        per_shard = {str(s.index): probe
                     for s, probe in zip(usable, probes)}
        return cluster_stats_payload(
            router=self.metrics.snapshot(),
            shards=self.health.snapshot(),
            supervisor=(self.supervisor.snapshot()
                        if self.supervisor is not None else None),
            shard_stats=per_shard,
        )

    # -- supervision ---------------------------------------------------

    def start_supervision(self) -> None:
        """Start the periodic reap-and-respawn tick (needs a loop)."""
        if self.supervisor is None or self._supervise_task is not None:
            return
        self._supervise_task = asyncio.ensure_future(self._supervise())

    async def _supervise(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.supervise_interval_s)
            try:
                acted = await loop.run_in_executor(
                    None, self.supervisor.reap_and_respawn)
            except Exception:
                continue
            for index, ok in acted:
                if ok:
                    self.health.mark_up(index)
                else:
                    self.health.mark_down(index, "shard process died")

    def stop_supervision(self) -> None:
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            self._supervise_task = None


class ClusterServer:
    """Asyncio LDJSON front end over one router (the service protocol)."""

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1",
                 port: int = 0):
        self.router = router
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()

    async def start(self) -> tuple:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.router.start_supervision()
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()
        self.router.stop_supervision()
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._handle_line(line)
                writer.write((canonical_json(reply) + "\n").encode())
                await writer.drain()
                if reply.get("type") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        try:
            message = json.loads(line)
        except ValueError as err:
            return _error_payload("", f"malformed JSON: {err}")
        if not isinstance(message, dict):
            return _error_payload("", "request must be a JSON object")
        kind = message.get("type", "allocate")
        if kind == "ping":
            return {"type": "pong", "protocol": PROTOCOL_VERSION}
        if kind == "stats":
            return await self.router.stats()
        if kind == "shutdown":
            self.request_shutdown()
            return {"type": "shutdown", "protocol": PROTOCOL_VERSION,
                    "ok": True}
        if kind not in ("allocate", "allocate_delta"):
            return {"type": "error", "protocol": PROTOCOL_VERSION,
                    "error": f"unknown message type {kind!r}"}
        return await self.router.route(message, line)


class ClusterServerThread:
    """The router's TCP front end on a background thread (tests, CLI,
    benches) — the cluster twin of
    :class:`~repro.service.server.ServerThread`."""

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1",
                 port: int = 0):
        self.router = router
        self.server = ClusterServer(router, host, port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def start(self) -> tuple:
        self._thread = threading.Thread(target=self._run,
                                        name="repro-cluster", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("cluster server failed to start within 10s")
        return self.server.host, self.server.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_until_shutdown()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
