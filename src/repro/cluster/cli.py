"""CLI glue for ``python -m repro cluster {serve,submit,stats}``.

``cluster serve`` brings up the whole local topology in one command:
the shared cache-peer tier, N supervised ``repro serve`` shard
subprocesses wired to it, and the router front end.  ``cluster submit``
and ``cluster stats`` are the plain ``submit``/``stats`` commands
pointed at the router's default port — the router speaks the identical
protocol, so :mod:`repro.cli` reuses its own implementations for them.
"""

from __future__ import annotations

import signal
import sys

from repro.reporting import canonical_json
from repro.service.cache import default_cache_dir
from repro.service.schema import cluster_stats_payload

__all__ = ["DEFAULT_CLUSTER_PORT", "add_cluster_parser",
           "cmd_cluster_serve"]

#: The router's default TCP port (the single-server default is 7421).
DEFAULT_CLUSTER_PORT = 7480


def add_cluster_parser(sub, allocator_choices, benchmark_names) -> None:
    """Attach the ``cluster`` subcommand tree to the main parser."""
    cluster = sub.add_parser(
        "cluster", help="run or talk to the sharded multi-node service")
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    serve = csub.add_parser(
        "serve", help="run the router + N local shard servers")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_CLUSTER_PORT,
                       help="router TCP port (0 picks a free one; "
                            f"default {DEFAULT_CLUSTER_PORT})")
    serve.add_argument("--shards", type=int, default=3,
                       help="local shard server processes (default 3)")
    serve.add_argument("--backends", nargs="*", default=None,
                       metavar="HOST:PORT",
                       help="address existing shard servers instead of "
                            "spawning local ones")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker-pool width inside each shard")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="per-shard admission-control queue bound")
    serve.add_argument("--cache-size", type=int, default=64,
                       help="per-shard in-memory L1 cache entries "
                            "(the shared peer tier is the big one)")
    serve.add_argument("--peer-cache-size", type=int, default=4096,
                       help="shared cache-peer tier entries")
    serve.add_argument("--cache-dir", default=None,
                       help="disk layer behind the shared peer tier "
                            "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    serve.add_argument("--no-disk-cache", action="store_true",
                       help="keep the shared tier in memory only")
    serve.add_argument("--hedge-ms", type=float, default=250.0,
                       help="hedge deadline per request in ms; 0 hedges "
                            "immediately, negative disables hedging")
    serve.add_argument("--saturation", type=int, default=8,
                       help="per-shard in-flight soft watermark feeding "
                            "backpressure")

    submit = csub.add_parser(
        "submit", help="send one request to a running cluster router")
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="textual IR file ('-' for stdin)")
    source.add_argument("--bench", choices=benchmark_names,
                        help="a built-in benchmark name")
    submit.add_argument("--allocator", choices=sorted(allocator_choices),
                        default="full")
    submit.add_argument("--regs", type=int, default=24)
    submit.add_argument("--base", default=None, metavar="TOKEN",
                        help="send an allocate_delta request: TOKEN is "
                             "the session_digest of the previous "
                             "response ('new' starts a fresh edit "
                             "chain); requires --file")
    submit.add_argument("--policy", default=None, metavar="FILE|PRESET",
                        help="heuristic policy: a preset name (e.g. "
                             "tuned_v1) or a Policy JSON file")
    submit.add_argument("--deadline", type=float, default=None,
                        help="seconds before the cluster may degrade "
                             "the allocator")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=DEFAULT_CLUSTER_PORT)
    submit.add_argument("--json", action="store_true",
                        help="print the full response JSON")

    stats = csub.add_parser(
        "stats", help="fetch a running cluster's stats snapshot")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=DEFAULT_CLUSTER_PORT)


def cmd_cluster_serve(args, out) -> int:
    from repro.cluster.router import ClusterRouter, ClusterServerThread
    from repro.cluster.shards import ClusterSupervisor
    from repro.regalloc import AllocationOptions

    disk_dir = None
    if not args.no_disk_cache:
        overrides = {"cache_dir": args.cache_dir} if args.cache_dir else {}
        disk_dir = default_cache_dir(AllocationOptions.from_env(**overrides))
    supervisor = ClusterSupervisor(
        shards=args.shards,
        jobs=args.jobs,
        cache_size=args.cache_size,
        max_queue=args.max_queue,
        disk_dir=disk_dir,
        peer_store_entries=args.peer_cache_size,
        addresses=args.backends,
    )
    handles = supervisor.start()
    hedge_s = None if args.hedge_ms < 0 else args.hedge_ms / 1000.0
    router = ClusterRouter(handles, supervisor=supervisor,
                           hedge_s=hedge_s, saturation=args.saturation)
    thread = ClusterServerThread(router, args.host, args.port)
    # Graceful shutdown on SIGTERM too: a backgrounded shell job has
    # SIGINT set to SIG_IGN (POSIX), so supervisors and CI scripts stop
    # the cluster with plain ``kill`` and still get the drain + final
    # stats snapshot instead of an abrupt exit.
    def _graceful(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # not the main thread (embedded use): skip
        pass
    try:
        host, port = thread.start()
        print(f"repro cluster listening on {host}:{port} "
              f"({len(handles)} shards)", file=out, flush=True)
        try:
            thread.join()
        except KeyboardInterrupt:
            pass
    finally:
        thread.stop()
        final = cluster_stats_payload(
            router=router.metrics.snapshot(),
            shards=router.health.snapshot(),
            supervisor=supervisor.snapshot(),
        )
        supervisor.stop()
        print(canonical_json(final),
              file=out if out is not sys.stdout else sys.stdout,
              flush=True)
    return 0
