"""Shard health, admission control, and digest routing order.

One :class:`ShardHealth` instance lives inside the router's event loop
(single-threaded mutation; snapshots may be read cross-thread — every
field is a plain scalar swap).  It tracks three things per shard:

* **liveness** — consecutive connection failures past ``max_failures``
  mark a shard *down*; a down shard is skipped by the router until its
  probe time arrives (exponential backoff, the worker-pool retry idiom),
  after which exactly the next request is allowed through as a half-open
  probe — success resets the shard to *up*, failure doubles the backoff;
* **saturation** — an in-flight counter against ``saturation`` feeds
  per-shard admission; when *every* available shard is saturated the
  router degrades, and past ``hard_factor``x it rejects outright
  (global backpressure — the cluster twin of the scheduler's bounded
  queue);
* **routing order** — ``route_order(digest)`` maps a request's content
  digest to its home shard (``digest % n``) and then the ring of
  fallbacks, filtered to shards worth trying.  Content addressing keeps
  one request's repeats on one shard, which is what makes the shard's
  local L1 cache effective.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["ShardHandle", "ShardHealth"]


@dataclass
class ShardHandle:
    """Where one backend server lives; mutable so a supervisor can
    re-point it at a respawned process."""

    index: int
    host: str
    port: int

    def address(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class _ShardState:
    up: bool = True
    consecutive_failures: int = 0
    downs: int = 0
    probe_at: float = 0.0
    backoff_s: float = 0.0
    inflight: int = 0
    forwarded: int = 0
    failures: int = 0
    last_error: str = ""
    probing: bool = False


class ShardHealth:
    def __init__(self, shards: list[ShardHandle], saturation: int = 8,
                 max_failures: int = 2, probe_backoff_s: float = 0.5,
                 max_backoff_s: float = 10.0, hard_factor: int = 2):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if saturation < 1:
            raise ValueError("saturation must be >= 1")
        self.shards = shards
        self.saturation = saturation
        self.max_failures = max_failures
        self.probe_backoff_s = probe_backoff_s
        self.max_backoff_s = max_backoff_s
        self.hard_limit = hard_factor * saturation
        self._states = [_ShardState() for _ in shards]

    # -- liveness ------------------------------------------------------

    def record_success(self, index: int) -> None:
        state = self._states[index]
        state.forwarded += 1
        state.consecutive_failures = 0
        state.backoff_s = 0.0
        state.probing = False
        if not state.up:
            state.up = True

    def record_failure(self, index: int, error: str = "") -> None:
        state = self._states[index]
        state.failures += 1
        state.consecutive_failures += 1
        state.last_error = error
        state.probing = False
        if state.up and state.consecutive_failures >= self.max_failures:
            state.up = False
            state.downs += 1
        if not state.up:
            state.backoff_s = min(
                self.probe_backoff_s * (2 ** (state.consecutive_failures
                                              - self.max_failures)),
                self.max_backoff_s,
            )
            state.probe_at = time.monotonic() + state.backoff_s

    def mark_down(self, index: int, error: str = "") -> None:
        """Force a shard down (supervisor saw its process die)."""
        state = self._states[index]
        if state.up:
            state.downs += 1
        state.up = False
        state.last_error = error or state.last_error
        state.consecutive_failures = max(state.consecutive_failures,
                                         self.max_failures)
        state.probe_at = time.monotonic() + self.probe_backoff_s

    def mark_up(self, index: int) -> None:
        """Force a shard up (supervisor just respawned its process)."""
        state = self._states[index]
        state.up = True
        state.consecutive_failures = 0
        state.backoff_s = 0.0
        state.probing = False

    def available(self, index: int) -> bool:
        """Worth sending a request to: up, or down but due a probe."""
        state = self._states[index]
        if state.up:
            return True
        if state.probing:
            return False  # one half-open probe at a time
        return time.monotonic() >= state.probe_at

    # -- admission -----------------------------------------------------

    def begin(self, index: int) -> None:
        state = self._states[index]
        if not state.up:
            state.probing = True
        state.inflight += 1

    def end(self, index: int) -> None:
        self._states[index].inflight = max(
            0, self._states[index].inflight - 1)

    def saturated(self, index: int) -> bool:
        return self._states[index].inflight >= self.saturation

    def overloaded(self) -> bool:
        """Every available shard is at or past the soft watermark."""
        usable = [i for i in range(len(self.shards)) if self.available(i)]
        return bool(usable) and all(self.saturated(i) for i in usable)

    def rejecting(self) -> bool:
        """Every available shard is past the hard limit (or none left)."""
        usable = [i for i in range(len(self.shards)) if self.available(i)]
        if not usable:
            return True
        return all(self._states[i].inflight >= self.hard_limit
                   for i in usable)

    # -- routing -------------------------------------------------------

    def home_shard(self, digest: str) -> int:
        return int(digest[:16], 16) % len(self.shards)

    def route_order(self, digest: str) -> list[ShardHandle]:
        """Home shard first, then the fallback ring, availability-filtered.

        Saturated-but-up shards stay in the order (they answer, just
        slowly — the router's overload handling decides what to do);
        down shards appear only when due a half-open probe.
        """
        n = len(self.shards)
        home = self.home_shard(digest)
        order = []
        for step in range(n):
            index = (home + step) % n
            if self.available(index):
                order.append(self.shards[index])
        return order

    # -- introspection -------------------------------------------------

    def snapshot(self) -> list[dict]:
        now = time.monotonic()
        out = []
        for handle, state in zip(self.shards, self._states):
            out.append({
                "shard": handle.index,
                "address": handle.address(),
                "up": state.up,
                "inflight": state.inflight,
                "saturated": state.inflight >= self.saturation,
                "forwarded": state.forwarded,
                "failures": state.failures,
                "consecutive_failures": state.consecutive_failures,
                "downs": state.downs,
                "probe_in_s": (round(max(0.0, state.probe_at - now), 3)
                               if not state.up else None),
                "last_error": state.last_error,
            })
        return out
