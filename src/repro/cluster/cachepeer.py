"""TCP cache-peer protocol: the shared result-cache tier of a cluster.

One :class:`CachePeerServer` holds the authoritative shared store (an
ordinary :class:`~repro.service.cache.ResultCache`, so it gets the LRU
bound and may itself sit on the disk backend for persistence).  Every
shard's scheduler talks to it through a :class:`PeerCacheBackend`
plugged into its local ``ResultCache`` — local memory is the hot L1,
the peer is the shared L2, so an entry computed by any shard is a hit
for every other shard.

Wire format: LDJSON, one op per line, one reply line per op::

    {"op": "get",  "key": "<sha256>"}
    -> {"ok": true, "found": true, "entry": {<response wire form>}}
    -> {"ok": true, "found": false}
    {"op": "put",  "key": "<sha256>", "entry": {...}}
    -> {"ok": true}
    {"op": "ping"}   -> {"ok": true, "op": "pong"}
    {"op": "stats"}  -> {"ok": true, "stats": {...}}

Entries cross the wire in the response's canonical wire form and are
validated on the way in (protocol version, ``ok``) just like the disk
layer, so a stale or torn entry is a miss, never a crash.  The client
side degrades the same way: any socket or decode error is a miss, and a
short breaker (bounded consecutive failures -> cooldown with
exponential backoff, the same idiom as the worker pool's retry policy)
keeps a dead peer from adding a connect timeout to every request.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time

from repro.reporting import canonical_json
from repro.service.cache import CacheBackend, ResultCache
from repro.service.protocol import PROTOCOL_VERSION, AllocationResponse

__all__ = ["CachePeerServer", "PeerCacheBackend", "parse_hostport"]


def parse_hostport(spec: str, default_host: str = "127.0.0.1") -> tuple:
    """``"host:port"`` (or bare ``"port"``) -> ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        host = default_host
    try:
        return (host or default_host), int(port)
    except ValueError:
        raise ValueError(f"bad host:port spec {spec!r}") from None


class _PeerHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        while True:
            try:
                line = self.rfile.readline()
            except OSError:
                return
            if not line:
                return
            reply = self.server.owner.handle_line(line)
            try:
                self.wfile.write((canonical_json(reply) + "\n").encode())
            except OSError:
                return


class _PeerTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class CachePeerServer:
    """The shared cache tier: a threaded LDJSON TCP server over one store."""

    def __init__(self, store: ResultCache | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.store = store if store is not None else ResultCache(
            max_entries=4096)
        self.host = host
        self.port = port
        self._lock = threading.Lock()  # ResultCache is not thread-safe
        self._server: _PeerTCPServer | None = None
        self._thread: threading.Thread | None = None
        self.counters = {
            "gets": 0,
            "get_hits": 0,
            "puts": 0,
            "bad_ops": 0,
        }

    # -- protocol ------------------------------------------------------

    def handle_line(self, line: bytes) -> dict:
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError("op must be a JSON object")
        except ValueError as err:
            with self._lock:
                self.counters["bad_ops"] += 1
            return {"ok": False, "error": f"malformed op: {err}"}
        op = message.get("op")
        if op == "get":
            return self._op_get(message)
        if op == "put":
            return self._op_put(message)
        if op == "ping":
            return {"ok": True, "op": "pong", "protocol": PROTOCOL_VERSION}
        if op == "stats":
            return {"ok": True, "stats": self.snapshot()}
        with self._lock:
            self.counters["bad_ops"] += 1
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_get(self, message: dict) -> dict:
        key = message.get("key")
        if not isinstance(key, str) or not key:
            return {"ok": False, "error": "get needs a string 'key'"}
        with self._lock:
            self.counters["gets"] += 1
            entry = self.store.get(key)
            if entry is None:
                return {"ok": True, "found": False}
            self.counters["get_hits"] += 1
            return {"ok": True, "found": True, "entry": entry.to_wire()}

    def _op_put(self, message: dict) -> dict:
        key = message.get("key")
        if not isinstance(key, str) or not key:
            return {"ok": False, "error": "put needs a string 'key'"}
        try:
            entry = AllocationResponse.from_wire(message.get("entry"))
        except Exception as err:
            return {"ok": False, "error": f"bad entry: {err}"}
        if entry.protocol != PROTOCOL_VERSION or not entry.ok:
            return {"ok": False, "error": "entry failed validation"}
        if entry.degraded:
            # Degraded results never enter any cache tier (the scheduler
            # enforces the same rule locally); refusing here keeps a
            # misbehaving peer from poisoning every shard.
            return {"ok": False, "error": "degraded entries are not cached"}
        with self._lock:
            self.counters["puts"] += 1
            self.store.put(key, entry)
        return {"ok": True}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> tuple:
        """Bind + serve on a daemon thread; returns the bound address."""
        self._server = _PeerTCPServer((self.host, self.port), _PeerHandler)
        self._server.owner = self
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-cache-peer", daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "host": self.host,
                "port": self.port,
                "counters": dict(self.counters),
                "store": self.store.snapshot(),
            }


class PeerCacheBackend(CacheBackend):
    """Cache backend that proxies get/put to a :class:`CachePeerServer`.

    One short-lived connection per op keeps it trivially thread-safe,
    mirroring :class:`~repro.service.client.ServiceClient`.  After
    ``max_failures`` consecutive errors the backend trips open and every
    op is an instant miss until the cooldown (doubling per trip, capped)
    elapses — a dead peer must not tax the shards that outlived it.
    """

    name = "peer"

    def __init__(self, host: str, port: int, timeout: float = 2.0,
                 max_failures: int = 3, cooldown_s: float = 1.0,
                 max_cooldown_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_failures = max_failures
        self.cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.errors = 0
        self.trips = 0
        self._consecutive = 0
        self._open_until = 0.0
        self._lock = threading.Lock()

    # -- breaker -------------------------------------------------------

    def _tripped(self) -> bool:
        with self._lock:
            return time.monotonic() < self._open_until

    def _record(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self._consecutive = 0
                return
            self.errors += 1
            self._consecutive += 1
            if self._consecutive >= self.max_failures:
                backoff = min(
                    self.cooldown_s * (2 ** self.trips),
                    self.max_cooldown_s,
                )
                self._open_until = time.monotonic() + backoff
                self.trips += 1
                self._consecutive = 0

    def _call(self, message: dict) -> dict | None:
        if self._tripped():
            return None
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall((canonical_json(message) + "\n").encode())
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
            reply = json.loads(b"".join(chunks))
            if not isinstance(reply, dict):
                raise ValueError("reply must be a JSON object")
        except (OSError, ValueError):
            self._record(ok=False)
            return None
        self._record(ok=True)
        return reply

    # -- CacheBackend --------------------------------------------------

    def get(self, key: str) -> AllocationResponse | None:
        self.gets += 1
        reply = self._call({"op": "get", "key": key})
        if not reply or not reply.get("ok") or not reply.get("found"):
            return None
        try:
            entry = AllocationResponse.from_wire(reply.get("entry"))
        except Exception:
            self._record(ok=False)
            return None
        if entry.protocol != PROTOCOL_VERSION or not entry.ok:
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: AllocationResponse) -> None:
        self.puts += 1
        self._call({"op": "put", "key": key, "entry": entry.to_wire()})

    def snapshot(self) -> dict:
        with self._lock:
            tripped = time.monotonic() < self._open_until
        return {
            "backend": self.name,
            "host": self.host,
            "port": self.port,
            "gets": self.gets,
            "hits": self.hits,
            "puts": self.puts,
            "errors": self.errors,
            "trips": self.trips,
            "tripped": tripped,
        }
