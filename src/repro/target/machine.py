"""Target machine descriptions.

A :class:`TargetMachine` is one register file per
:class:`~repro.ir.values.RegClass` plus the capability flags the
preference types depend on (paired loads, byte-capable subsets).  The
files carry the calling convention — which registers are volatile
(caller-saved), which receive parameters, which returns the result —
because that convention is what creates the *dedicated* (type 1) and
*preferred* (type 3) register preferences of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TargetError
from repro.ir.values import PReg, RegClass

__all__ = ["RegisterFile", "TargetMachine"]


@dataclass(frozen=True)
class RegisterFile:
    """One architectural register class and its conventions."""

    rclass: RegClass
    #: all registers of the class, in index order (the color set is total)
    regs: tuple[PReg, ...]
    #: caller-saved registers (must be ⊆ regs)
    volatile: frozenset[PReg]
    #: registers receiving the first arguments (must be volatile)
    param_regs: tuple[PReg, ...]
    #: register carrying the return value
    return_reg: PReg
    #: subset that can receive a byte load without zero-extension
    #: (empty = no restriction, i.e. no type-2 preference on this file)
    byte_load_regs: frozenset[PReg] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        members = set(self.regs)
        if len(members) != len(self.regs):
            raise TargetError(f"{self.rclass.value} file repeats registers")
        for name, group in (
            ("volatile", self.volatile),
            ("param", self.param_regs),
            ("byte-load", self.byte_load_regs),
        ):
            stray = [r for r in group if r not in members]
            if stray:
                raise TargetError(
                    f"{self.rclass.value} file: {name} registers {stray} "
                    f"not in the file"
                )
        if self.return_reg not in members:
            raise TargetError(
                f"{self.rclass.value} file: return register "
                f"{self.return_reg} not in the file"
            )
        nonvol = [r for r in self.param_regs if r not in self.volatile]
        if nonvol:
            raise TargetError(
                f"{self.rclass.value} file: parameter registers {nonvol} "
                f"must be volatile (caller-saved)"
            )
        for reg in self.regs:
            if reg.rclass is not self.rclass:
                raise TargetError(
                    f"{self.rclass.value} file contains {reg} of class "
                    f"{reg.rclass.value}"
                )

    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of colors (K in the coloring literature)."""
        return len(self.regs)

    @property
    def nonvolatile(self) -> frozenset[PReg]:
        """Callee-saved registers (the file minus the volatile subset)."""
        return frozenset(r for r in self.regs if r not in self.volatile)

    def is_volatile(self, reg: PReg) -> bool:
        return reg in self.volatile

    def by_index(self, index: int) -> PReg | None:
        """The file's register with architectural index ``index``."""
        for reg in self.regs:
            if reg.index == index:
                return reg
        return None

    def next_reg(self, reg: PReg) -> PReg | None:
        """The register with index+1 (for sequential/paired preferences)."""
        return self.by_index(reg.index + 1)

    def prev_reg(self, reg: PReg) -> PReg | None:
        """The register with index-1."""
        return self.by_index(reg.index - 1)

    def describe(self) -> str:
        vol = ",".join(str(r) for r in sorted(self.volatile,
                                              key=lambda r: r.index))
        nonvol = ",".join(str(r) for r in sorted(self.nonvolatile,
                                                 key=lambda r: r.index))
        params = ",".join(str(r) for r in self.param_regs)
        parts = [
            f"{self.rclass.value}: K={self.k}",
            f"volatile [{vol}]",
            f"non-volatile [{nonvol}]",
            f"params [{params}]",
            f"return {self.return_reg}",
        ]
        if self.byte_load_regs:
            byte = ",".join(str(r) for r in sorted(self.byte_load_regs,
                                                   key=lambda r: r.index))
            parts.append(f"byte-capable [{byte}]")
        return "  ".join(parts)


@dataclass(frozen=True, eq=False)
class TargetMachine:
    """A machine: one register file per class, plus capability flags."""

    name: str
    files: dict[RegClass, RegisterFile]
    #: does the target fuse adjacent-destination load pairs (type 4)?
    has_paired_loads: bool = True

    def __post_init__(self) -> None:
        for rclass, regfile in self.files.items():
            if regfile.rclass is not rclass:
                raise TargetError(
                    f"machine {self.name}: file registered under "
                    f"{rclass.value} describes {regfile.rclass.value}"
                )

    def file(self, rclass: RegClass) -> RegisterFile:
        try:
            return self.files[rclass]
        except KeyError:
            raise TargetError(
                f"machine {self.name} has no {rclass.value} register file"
            ) from None

    def k(self, rclass: RegClass) -> int:
        return self.file(rclass).k

    def is_volatile(self, reg: PReg) -> bool:
        return self.file(reg.rclass).is_volatile(reg)

    def param_reg(self, index: int, rclass: RegClass) -> PReg:
        """The physical register carrying argument ``index`` of ``rclass``."""
        regs = self.file(rclass).param_regs
        if index >= len(regs):
            raise TargetError(
                f"machine {self.name}: no {rclass.value} register for "
                f"argument {index} (only {len(regs)} parameter registers)"
            )
        return regs[index]

    def describe(self) -> str:
        lines = [f"machine {self.name} "
                 f"(paired loads: {'yes' if self.has_paired_loads else 'no'})"]
        for rclass in sorted(self.files, key=lambda rc: rc.value):
            lines.append("  " + self.files[rclass].describe())
        return "\n".join(lines)
