"""Target machine descriptions and calling-convention lowering.

The paper evaluates three "register usage models" (16/24/32 registers per
class, Section 6.2) plus the tiny three-register machine of Figure 7.
:mod:`repro.target.machine` defines the data model, :mod:`~repro.target.presets`
the concrete machines, and :mod:`~repro.target.lowering` the pass that
pins parameters, call arguments, and return values to the convention's
physical registers — the source of every *dedicated register* preference.
"""

from repro.target.lowering import lower_function
from repro.target.machine import RegisterFile, TargetMachine
from repro.target.presets import (
    PRESSURE_MODELS,
    figure7_machine,
    high_pressure,
    low_pressure,
    make_machine,
    middle_pressure,
)

__all__ = [
    "RegisterFile",
    "TargetMachine",
    "lower_function",
    "make_machine",
    "figure7_machine",
    "high_pressure",
    "middle_pressure",
    "low_pressure",
    "PRESSURE_MODELS",
]
