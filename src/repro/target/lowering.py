"""Calling-convention lowering.

Rewrites a phi-free function so the convention's physical registers are
explicit — the pass that *creates* the dedicated-register preferences:

* each used parameter arrives as ``Move(param_vreg, param_preg)`` at the
  top of the entry block;
* each call's arguments move into the parameter registers (constants are
  materialized first); the call records them in ``reg_uses``.  A call
  clobbers the return register of its result class (the int return
  register when it returns nothing), recorded in ``reg_defs``; a result
  is copied out of that register right after the call;
* ``ret v`` becomes a move of ``v`` into the return register plus a bare
  ``ret`` keeping that register live to the exit (``reg_uses``).

Lowering is idempotent per call/ret (already-lowered instructions are
left alone), runs in place, and raises :class:`TargetError` on phis or
on calls whose argument count exceeds the convention's parameter
registers.
"""

from __future__ import annotations

from repro.errors import TargetError
from repro.ir.function import Function
from repro.ir.instructions import Call, ConstInst, Instruction, Move, Phi, Ret
from repro.ir.values import Const, PReg, RegClass, Register, VReg
from repro.target.machine import TargetMachine

__all__ = ["lower_function", "lower_module"]


def lower_function(func: Function, machine: TargetMachine) -> Function:
    """Apply ``machine``'s calling convention to ``func`` in place."""
    for blk in func.blocks:
        if blk.phis():
            raise TargetError(
                f"{func.name}/{blk.label}: cannot lower a function with "
                f"phis; run out-of-SSA first"
            )
    _lower_params(func, machine)
    for blk in func.blocks:
        out: list[Instruction] = []
        for instr in blk.instrs:
            if isinstance(instr, Call) and not instr.lowered:
                _lower_call(func, machine, instr, out)
            elif isinstance(instr, Ret) and instr.src is not None:
                _lower_ret(machine, instr, out)
            else:
                out.append(instr)
        blk.instrs = out
    return func


def lower_module(module, machine: TargetMachine):
    """Lower every function of a module in place."""
    for func in module.functions:
        lower_function(func, machine)
    return module


# ----------------------------------------------------------------------


def _used_registers(func: Function) -> set[Register]:
    used: set[Register] = set()
    for _, instr in func.instructions():
        used.update(instr.used_regs())
    return used


def _lower_params(func: Function, machine: TargetMachine) -> None:
    """Entry moves from the parameter registers into the param vregs."""
    used = _used_registers(func)
    counters: dict[RegClass, int] = {}
    moves: list[Instruction] = []
    for param in func.params:
        index = counters.get(param.rclass, 0)
        counters[param.rclass] = index + 1
        if param not in used:
            continue  # dead parameter: no move, but the slot is consumed
        preg = machine.param_reg(index, param.rclass)
        moves.append(Move(param, preg))
    func.entry.instrs[0:0] = moves


def _lower_call(func: Function, machine: TargetMachine, call: Call,
                out: list[Instruction]) -> None:
    """Marshal arguments / result through the convention registers."""
    counters: dict[RegClass, int] = {}
    reg_uses: list[PReg] = []
    for arg in call.args:
        if isinstance(arg, Const):
            temp = func.new_vreg(arg.rclass)
            out.append(ConstInst(temp, arg.value))
            arg = temp
        index = counters.get(arg.rclass, 0)
        counters[arg.rclass] = index + 1
        preg = machine.param_reg(index, arg.rclass)
        out.append(Move(preg, arg))
        reg_uses.append(preg)

    dst = call.dst
    ret_class = dst.rclass if dst is not None else RegClass.INT
    return_reg = machine.file(ret_class).return_reg
    call.args = []
    call.dst = None
    call.reg_uses = reg_uses
    call.reg_defs = [return_reg]
    out.append(call)
    if dst is not None:
        out.append(Move(dst, return_reg))


def _lower_ret(machine: TargetMachine, ret: Ret,
               out: list[Instruction]) -> None:
    """Route the return value through the return register."""
    src = ret.src
    return_reg = machine.file(src.rclass).return_reg
    if isinstance(src, Const):
        out.append(ConstInst(return_reg, src.value))
    else:
        out.append(Move(return_reg, src))
    ret.src = None
    ret.reg_uses = [return_reg]
    out.append(ret)
