"""The built-in machines.

The paper's evaluation sweeps three *register usage models* — 16, 24 and
32 registers per class (Section 6.2) — modeling high, middle and low
register pressure on the same workload.  All three follow the same
conventions, scaled to the file size:

* the lower half of each file is volatile (caller-saved), the upper half
  non-volatile (callee-saved) — "half volatile" like the paper's testbed;
* up to eight volatile registers receive parameters;
* the first register returns the result;
* the first four *integer* registers can take a byte load without a
  zero-extension (the x86-like irregularity behind type-2 preferences).

``figure7_machine`` is the three-register machine the paper's worked
example (Figure 7) assumes: r1..r3, r1/r2 volatile, r1 the argument and
return register.
"""

from __future__ import annotations

from repro.errors import TargetError
from repro.ir.values import PReg, RegClass
from repro.target.machine import RegisterFile, TargetMachine

__all__ = [
    "make_machine",
    "figure7_machine",
    "high_pressure",
    "middle_pressure",
    "low_pressure",
    "PRESSURE_MODELS",
]

#: At most this many arguments travel in registers (per class).
MAX_PARAM_REGS = 8
#: Size of the byte-capable subset of the integer file.
BYTE_CAPABLE_REGS = 4


def _make_file(rclass: RegClass, size: int) -> RegisterFile:
    regs = tuple(PReg(i, rclass) for i in range(size))
    half = size // 2
    volatile = frozenset(regs[:half])
    param_regs = regs[:min(MAX_PARAM_REGS, half)]
    byte_regs = (
        frozenset(regs[:min(BYTE_CAPABLE_REGS, half)])
        if rclass is RegClass.INT else frozenset()
    )
    return RegisterFile(
        rclass=rclass,
        regs=regs,
        volatile=volatile,
        param_regs=param_regs,
        return_reg=regs[0],
        byte_load_regs=byte_regs,
    )


def make_machine(size: int, has_paired_loads: bool = True,
                 name: str | None = None) -> TargetMachine:
    """A machine with ``size`` registers per class, half of them volatile."""
    if size < 2 or size % 2 != 0:
        raise TargetError(
            f"register file size must be even and >= 2, got {size}"
        )
    return TargetMachine(
        name=name or f"model-{size}",
        files={
            RegClass.INT: _make_file(RegClass.INT, size),
            RegClass.FLOAT: _make_file(RegClass.FLOAT, size),
        },
        has_paired_loads=has_paired_loads,
    )


def figure7_machine() -> TargetMachine:
    """The paper's worked example: three registers r1..r3, r1/r2 volatile."""
    r1, r2, r3 = (PReg(i, RegClass.INT) for i in (1, 2, 3))
    intfile = RegisterFile(
        rclass=RegClass.INT,
        regs=(r1, r2, r3),
        volatile=frozenset({r1, r2}),
        param_regs=(r1, r2),
        return_reg=r1,
    )
    return TargetMachine(name="figure7", files={RegClass.INT: intfile},
                         has_paired_loads=True)


def high_pressure() -> TargetMachine:
    """16 registers per class — the paper's high-pressure model."""
    return make_machine(16, name="high-pressure-16")


def middle_pressure() -> TargetMachine:
    """24 registers per class — the middle-pressure model."""
    return make_machine(24, name="middle-pressure-24")


def low_pressure() -> TargetMachine:
    """32 registers per class — the low-pressure model."""
    return make_machine(32, name="low-pressure-32")


#: The evaluation's register-usage sweep, keyed as the figures label it.
PRESSURE_MODELS = {
    "16 regs/class (high pressure)": high_pressure,
    "24 regs/class (middle pressure)": middle_pressure,
    "32 regs/class (low pressure)": low_pressure,
}
