"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``alloc FILE``      — parse textual IR, run the pipeline + an allocator,
  print the allocated code and stats.
* ``compare FILE``    — run every allocator over one IR file and print a
  comparison table.
* ``bench NAME``      — allocate one synthetic benchmark under all
  allocators and print the comparison (a CLI twin of
  ``examples/benchmark_tour.py``).
* ``example``         — replay the paper's Figure 7 with full tracing.
* ``targets``         — describe the built-in register-usage models.

The textual IR syntax is whatever ``repro.ir.printer`` emits; see
``README.md`` or run ``python -m repro example`` for a sample.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.errors import ReproError
from repro.ir.parser import parse_module
from repro.ir.printer import print_function
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import (
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    PriorityAllocator,
    allocate_function,
)
from repro.sim.cycles import estimate_cycles
from repro.target.presets import PRESSURE_MODELS, figure7_machine, make_machine
from repro.workloads import BENCHMARK_NAMES, make_benchmark

__all__ = ["main", "build_parser"]

ALLOCATOR_CHOICES = {
    "chaitin": ChaitinAllocator,
    "briggs": BriggsAllocator,
    "iterated": IteratedCoalescingAllocator,
    "optimistic": OptimisticCoalescingAllocator,
    "callcost": CallCostAllocator,
    "priority": PriorityAllocator,
    "only-coalescing": lambda: PreferenceDirectedAllocator(
        PreferenceConfig.only_coalescing()
    ),
    "full": PreferenceDirectedAllocator,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Preference-Directed Graph Coloring (PLDI 2002) "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    alloc = sub.add_parser("alloc", help="allocate an IR file")
    alloc.add_argument("file", help="textual IR file ('-' for stdin)")
    alloc.add_argument("--allocator", choices=sorted(ALLOCATOR_CHOICES),
                       default="full")
    alloc.add_argument("--regs", type=int, default=24,
                       help="registers per class (default 24)")

    compare = sub.add_parser("compare",
                             help="run every allocator over an IR file")
    compare.add_argument("file", help="textual IR file ('-' for stdin)")
    compare.add_argument("--regs", type=int, default=24)

    bench = sub.add_parser("bench", help="allocate a synthetic benchmark")
    bench.add_argument("name", choices=BENCHMARK_NAMES)
    bench.add_argument("--regs", type=int, default=16)

    sub.add_parser("example", help="replay the paper's Figure 7")
    sub.add_parser("targets", help="describe the register-usage models")
    return parser


def main(argv: list[str] | None = None,
         out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "alloc":
            _cmd_alloc(args, out)
        elif args.command == "compare":
            _cmd_compare(args, out)
        elif args.command == "bench":
            _cmd_bench(args, out)
        elif args.command == "example":
            _cmd_example(out)
        elif args.command == "targets":
            _cmd_targets(out)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `python -m repro targets | head`
        return 0
    return 0


def _read_module(path: str):
    text = sys.stdin.read() if path == "-" else open(path).read()
    return parse_module(text)


def _cmd_alloc(args, out) -> None:
    machine = make_machine(args.regs)
    module = _read_module(args.file)
    prepared = prepare_module(module, machine)
    run = allocate_module(prepared, machine,
                          ALLOCATOR_CHOICES[args.allocator]())
    for result in run.results:
        print(print_function(result.func), file=out)
        print(file=out)
    stats, cycles = run.stats, run.cycles
    print(f"; allocator        : {stats.allocator}", file=out)
    print(f"; moves eliminated : {stats.moves_eliminated}"
          f"/{stats.moves_before}", file=out)
    print(f"; spill instrs     : {stats.spill_instructions}", file=out)
    print(f"; estimated cycles : {cycles.total:.0f} "
          f"({cycles.describe()})", file=out)


def _cmd_compare(args, out) -> None:
    machine = make_machine(args.regs)
    module = _read_module(args.file)
    prepared = prepare_module(module, machine)
    _comparison_table(prepared, machine, out)


def _cmd_bench(args, out) -> None:
    machine = make_machine(args.regs)
    module = make_benchmark(args.name)
    prepared = prepare_module(module, machine)
    print(f"benchmark {args.name}: {len(prepared.functions)} functions, "
          f"{prepared.instruction_count()} instructions, "
          f"{args.regs} regs/class", file=out)
    _comparison_table(prepared, machine, out)


def _comparison_table(prepared, machine, out) -> None:
    header = (f"{'allocator':20s} {'moves elim.':>12s} {'spills':>7s} "
              f"{'caller-save':>12s} {'paired':>7s} {'cycles':>9s}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for name, factory in ALLOCATOR_CHOICES.items():
        run = allocate_module(prepared, machine, factory())
        stats, cycles = run.stats, run.cycles
        print(f"{name:20s} "
              f"{stats.moves_eliminated:5d}/{stats.moves_before:<6d} "
              f"{stats.spill_instructions:7d} "
              f"{cycles.caller_save_cycles:12.0f} "
              f"{cycles.paired_loads_fused:7d} "
              f"{cycles.total:9.0f}", file=out)


def _cmd_example(out) -> None:
    from repro.target.lowering import lower_function
    from repro.workloads.figures import figure7_function

    machine = figure7_machine()
    func = figure7_function()
    print("Figure 7(a):", file=out)
    print(print_function(func), file=out)
    lower_function(func, machine)
    allocator = PreferenceDirectedAllocator(keep_trace=True)
    result = allocate_function(func, machine, allocator)
    print("\nselection trace:", file=out)
    print(allocator.last_trace, file=out)
    print("\nFigure 7(h):", file=out)
    print(print_function(func), file=out)
    report = estimate_cycles(func, machine)
    print(f"\nmoves eliminated {result.stats.moves_eliminated}"
          f"/{result.stats.moves_before}; paired loads fused "
          f"{report.paired_loads_fused}", file=out)


def _cmd_targets(out) -> None:
    for label, factory in PRESSURE_MODELS.items():
        print(f"--- {label} ---", file=out)
        print(factory().describe(), file=out)
        print(file=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
