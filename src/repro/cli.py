"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``alloc FILE``      — parse textual IR, run the pipeline + an allocator,
  print the allocated code and stats (``--json`` for the service schema).
* ``compare FILE``    — run every allocator over one IR file and print a
  comparison table.
* ``bench NAME``      — allocate one synthetic benchmark under all
  allocators and print the comparison (a CLI twin of
  ``examples/benchmark_tour.py``).
* ``serve``           — run the long-lived allocation service (LDJSON
  over TCP, or stdio with ``--stdio``).
* ``submit``          — send one allocation request to a running server.
* ``stats``           — fetch a running server's metrics snapshot.
* ``example``         — replay the paper's Figure 7 with full tracing.
* ``targets``         — describe the built-in register-usage models.

``alloc``/``compare``/``bench`` accept ``--json`` and emit the same
response schema the service speaks (``repro.service.protocol``), so
piping the CLI and querying the server are interchangeable.

The textual IR syntax is whatever ``repro.ir.printer`` emits; see
``README.md`` or run ``python -m repro example`` for a sample.
"""

from __future__ import annotations

import argparse
import sys
import uuid

from repro.cluster.cli import add_cluster_parser, cmd_cluster_serve
from repro.core import PreferenceDirectedAllocator
from repro.errors import ReproError, ServiceError
from repro.ir.parser import parse_module
from repro.ir.printer import print_function
from repro.pipeline import allocate_module, prepare_module
from repro.policy import load_policy
from repro.profiling import profiled
from repro.regalloc import AllocationOptions, allocate_function
from repro.reporting import canonical_json
from repro.service.cache import ResultCache, default_cache_dir
from repro.service.client import ServiceClient
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    AllocationRequest,
    MachineSpec,
    cycles_to_dict,
    stats_to_dict,
)
from repro.service.schema import (
    allocation_payload,
    comparison_payload,
    final_stats_payload,
)
from repro.service.scheduler import (
    ALLOCATOR_FACTORIES,
    Scheduler,
    execute_request,
    render_allocation,
)
from repro.service.server import ServerThread, serve_stdio
from repro.sim.cycles import estimate_cycles
from repro.target.presets import PRESSURE_MODELS, figure7_machine, make_machine
from repro.workloads import BENCHMARK_NAMES, make_benchmark

__all__ = ["main", "build_parser"]

#: One canonical allocator table, shared with the service layer.
ALLOCATOR_CHOICES = ALLOCATOR_FACTORIES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Preference-Directed Graph Coloring (PLDI 2002) "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    alloc = sub.add_parser("alloc", help="allocate an IR file")
    alloc.add_argument("file", help="textual IR file ('-' for stdin)")
    alloc.add_argument("--allocator", choices=sorted(ALLOCATOR_CHOICES),
                       default="full")
    alloc.add_argument("--regs", type=int, default=24,
                       help="registers per class (default 24)")
    alloc.add_argument("--policy", default=None, metavar="FILE|PRESET",
                       help="heuristic policy: a preset name (e.g. tuned_v1) or a Policy JSON file")
    alloc.add_argument("--profile", action="store_true",
                       help="print a per-phase wall-clock profile to stderr")
    alloc.add_argument("--json", action="store_true",
                       help="emit the service response schema")

    compare = sub.add_parser("compare",
                             help="run every allocator over an IR file")
    compare.add_argument("file", help="textual IR file ('-' for stdin)")
    compare.add_argument("--regs", type=int, default=24)
    compare.add_argument("--policy", default=None, metavar="FILE|PRESET",
                         help="heuristic policy: a preset name (e.g. tuned_v1) or a Policy JSON file")
    compare.add_argument("--profile", action="store_true",
                         help="print a per-phase wall-clock profile to stderr")
    compare.add_argument("--json", action="store_true",
                         help="emit one service response per allocator")

    bench = sub.add_parser("bench", help="allocate a synthetic benchmark")
    bench.add_argument("name", choices=BENCHMARK_NAMES)
    bench.add_argument("--regs", type=int, default=16)
    bench.add_argument("--policy", default=None, metavar="FILE|PRESET",
                       help="heuristic policy: a preset name (e.g. tuned_v1) or a Policy JSON file")
    bench.add_argument("--profile", action="store_true",
                       help="print a per-phase wall-clock profile to stderr")
    bench.add_argument("--json", action="store_true",
                       help="emit one service response per allocator")

    serve = sub.add_parser("serve", help="run the allocation service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 picks a free one; default 7421)")
    serve.add_argument("--stdio", action="store_true",
                       help="speak LDJSON on stdin/stdout instead of TCP")
    serve.add_argument("--jobs", type=int, default=1,
                       help="process-pool width per allocation")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission-control queue bound")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="in-memory result-cache entries")
    serve.add_argument("--cache-dir", default=None,
                       help="on-disk cache directory "
                            "(default ~/.cache/repro or $REPRO_CACHE_DIR)")
    serve.add_argument("--no-disk-cache", action="store_true",
                       help="keep the result cache in memory only")
    serve.add_argument("--cache-peer", default=None, metavar="HOST:PORT",
                       help="share results through a cluster cache-peer "
                            "tier instead of the local disk layer")

    submit = sub.add_parser("submit",
                            help="send one request to a running server")
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="textual IR file ('-' for stdin)")
    source.add_argument("--bench", choices=BENCHMARK_NAMES,
                        help="a built-in benchmark name")
    submit.add_argument("--allocator", choices=sorted(ALLOCATOR_CHOICES),
                        default="full")
    submit.add_argument("--regs", type=int, default=24)
    submit.add_argument("--deadline", type=float, default=None,
                        help="seconds before the server may degrade "
                             "the allocator")
    submit.add_argument("--policy", default=None, metavar="FILE|PRESET",
                        help="heuristic policy: a preset name (e.g. tuned_v1) or a Policy JSON file")
    submit.add_argument("--base", default=None, metavar="TOKEN",
                        help="send an allocate_delta request: TOKEN is "
                             "the session_digest of the previous "
                             "response ('new' starts a fresh edit "
                             "chain); requires --file")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7421)
    submit.add_argument("--json", action="store_true",
                        help="print the full response JSON")

    stats = sub.add_parser("stats",
                           help="fetch a running server's metrics")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=7421)
    stats.add_argument("--knobs", action="store_true",
                       help="print this process's strategy-knob settings "
                            "(no server contacted)")

    sub.add_parser("example", help="replay the paper's Figure 7")
    sub.add_parser("targets", help="describe the register-usage models")

    add_cluster_parser(sub, ALLOCATOR_CHOICES, BENCHMARK_NAMES)
    return parser


def main(argv: list[str] | None = None,
         out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "alloc":
            return _maybe_profiled(args, lambda: _cmd_alloc(args, out))
        elif args.command == "compare":
            _maybe_profiled(args, lambda: _cmd_compare(args, out))
        elif args.command == "bench":
            _maybe_profiled(args, lambda: _cmd_bench(args, out))
        elif args.command == "serve":
            _cmd_serve(args, out)
        elif args.command == "submit":
            return _cmd_submit(args, out) or 0
        elif args.command == "stats":
            _cmd_stats(args, out)
        elif args.command == "example":
            _cmd_example(out)
        elif args.command == "targets":
            _cmd_targets(out)
        elif args.command == "cluster":
            return _cmd_cluster(args, out) or 0
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:  # unreadable IR file, unbindable port, ...
        print(f"error: {err}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `python -m repro targets | head`
        return 0
    return 0


def _maybe_profiled(args, thunk) -> int:
    """Run ``thunk``, honoring ``--profile``.

    The phase table goes to stderr so ``--json`` output (whose response
    schema is sealed and digest-checked by the service cache) stays
    untouched.
    """
    if not getattr(args, "profile", False):
        return thunk() or 0
    with profiled() as prof:
        code = thunk() or 0
    _print_phase_table(prof.snapshot(), sys.stderr)
    return code


def _print_phase_table(snapshot: dict, out) -> None:
    if not snapshot:
        print("; no phases recorded", file=out)
        return
    print(f"; {'phase':36s} {'seconds':>10s} {'calls':>8s}", file=out)
    for path, entry in sorted(snapshot.items(),
                              key=lambda kv: -kv[1]["s"]):
        print(f"; {path:36s} {entry['s']:>10.4f} {entry['calls']:>8d}",
              file=out)


def _read_text(path: str) -> str:
    return sys.stdin.read() if path == "-" else open(path).read()


def _read_module(path: str):
    return parse_module(_read_text(path))


def _policy_options(args) -> AllocationOptions | None:
    """Options carrying ``--policy``, or None when it was not given.

    None keeps every call site on its historical default-options path —
    the flag's absence must not perturb anything.
    """
    spec = getattr(args, "policy", None)
    if spec is None:
        return None
    try:
        return AllocationOptions.from_env(policy=load_policy(spec))
    except (ValueError, OSError) as err:
        raise ReproError(f"--policy: {err}") from err


def _cmd_alloc(args, out) -> int:
    if args.json:
        # One-shot direct run: a fixed id keeps the output deterministic
        # (submit generates unique ids; a server queue needs them).
        request = AllocationRequest(
            id="cli",
            ir=_read_text(args.file),
            allocator=args.allocator,
            machine=MachineSpec(regs=args.regs),
            options=_policy_options(args),
        )
        response = execute_request(request)
        print(canonical_json(allocation_payload(response)), file=out)
        return 0
    machine = make_machine(args.regs)
    module = _read_module(args.file)
    prepared = prepare_module(module, machine)
    run = allocate_module(prepared, machine,
                          ALLOCATOR_CHOICES[args.allocator](),
                          _policy_options(args))
    for result in run.results:
        print(print_function(result.func), file=out)
        print(file=out)
    stats, cycles = run.stats, run.cycles
    print(f"; allocator        : {stats.allocator}", file=out)
    print(f"; moves eliminated : {stats.moves_eliminated}"
          f"/{stats.moves_before}", file=out)
    print(f"; spill instrs     : {stats.spill_instructions}", file=out)
    print(f"; estimated cycles : {cycles.total:.0f} "
          f"({cycles.describe()})", file=out)
    return 0


def _cmd_compare(args, out) -> None:
    machine = make_machine(args.regs)
    module = _read_module(args.file)
    prepared = prepare_module(module, machine)
    options = _policy_options(args)
    if args.json:
        print(_comparison_json(prepared, machine, options=options),
              file=out)
        return
    _comparison_table(prepared, machine, out, options)


def _cmd_bench(args, out) -> None:
    machine = make_machine(args.regs)
    module = make_benchmark(args.name)
    prepared = prepare_module(module, machine)
    options = _policy_options(args)
    if args.json:
        print(_comparison_json(prepared, machine, bench=args.name,
                               options=options), file=out)
        return
    print(f"benchmark {args.name}: {len(prepared.functions)} functions, "
          f"{prepared.instruction_count()} instructions, "
          f"{args.regs} regs/class", file=out)
    _comparison_table(prepared, machine, out, options)


def _comparison_table(prepared, machine, out, options=None) -> None:
    header = (f"{'allocator':20s} {'moves elim.':>12s} {'spills':>7s} "
              f"{'caller-save':>12s} {'paired':>7s} {'cycles':>9s}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for name, factory in ALLOCATOR_CHOICES.items():
        run = allocate_module(prepared, machine, factory(), options)
        stats, cycles = run.stats, run.cycles
        print(f"{name:20s} "
              f"{stats.moves_eliminated:5d}/{stats.moves_before:<6d} "
              f"{stats.spill_instructions:7d} "
              f"{cycles.caller_save_cycles:12.0f} "
              f"{cycles.paired_loads_fused:7d} "
              f"{cycles.total:9.0f}", file=out)


def _comparison_json(prepared, machine, bench: str | None = None,
                     options=None) -> str:
    """Every allocator's result in the service response schema."""
    from repro.service.protocol import AllocationResponse, machine_descriptor

    results = {}
    for name, factory in ALLOCATOR_CHOICES.items():
        run = allocate_module(prepared, machine, factory(), options)
        response = AllocationResponse(
            ok=True,
            allocator=name,
            effective_allocator=name,
            code=render_allocation(run),
            stats=stats_to_dict(run.stats),
            cycles=cycles_to_dict(run.cycles),
        ).seal()
        results[name] = allocation_payload(response)
    return canonical_json(
        comparison_payload(machine_descriptor(machine), results, bench)
    )


def _cmd_serve(args, out) -> None:
    overrides = {"jobs": args.jobs}
    if args.cache_dir:  # --cache-dir beats $REPRO_CACHE_DIR
        overrides["cache_dir"] = args.cache_dir
    options = AllocationOptions.from_env(**overrides)
    if args.cache_peer:
        from repro.cluster.cachepeer import PeerCacheBackend, parse_hostport

        peer_host, peer_port = parse_hostport(args.cache_peer)
        cache = ResultCache(max_entries=args.cache_size,
                            backend=PeerCacheBackend(peer_host, peer_port))
    else:
        disk_dir = None
        if not args.no_disk_cache:
            disk_dir = default_cache_dir(options)
        cache = ResultCache(max_entries=args.cache_size, disk_dir=disk_dir)
    metrics = ServiceMetrics()
    scheduler = Scheduler(cache=cache, metrics=metrics, options=options,
                          max_queue=args.max_queue)
    if args.stdio:
        scheduler.start()
        try:
            serve_stdio(scheduler, sys.stdin, out)
        finally:
            scheduler.stop()
            print(canonical_json(final_stats_payload(metrics.snapshot(),
                                                     cache.snapshot())),
                  file=sys.stderr)
        return
    server = ServerThread(scheduler, args.host, args.port)
    host, port = server.start()
    print(f"repro service listening on {host}:{port}", file=out, flush=True)
    try:
        server.join()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print(canonical_json(final_stats_payload(metrics.snapshot(),
                                                 cache.snapshot())),
              file=out, flush=True)


def _cmd_submit(args, out) -> int:
    base = getattr(args, "base", None)
    # An explicit options object silences the bare constructor knobs,
    # so --deadline must ride inside it whenever --policy forces one.
    options = _policy_options(args)
    if options is not None and args.deadline is not None:
        options = options.replace(deadline_ms=args.deadline * 1000.0)
    request = AllocationRequest(
        id=f"cli-{uuid.uuid4().hex[:12]}",
        ir=_read_text(args.file) if args.file else None,
        bench=args.bench,
        allocator=args.allocator,
        machine=MachineSpec(regs=args.regs),
        deadline_s=args.deadline,
        options=options,
        base_digest=(None if base is None
                     else ("" if base == "new" else base)),
    )
    client = ServiceClient(args.host, args.port)
    response = client.allocate(request)
    if args.json:
        print(canonical_json(allocation_payload(response)), file=out)
        return 0 if response.ok else 1
    if not response.ok:
        raise ServiceError(response.error)
    stats = response.stats
    flags = []
    if response.cached:
        flags.append("cached")
    if response.degraded:
        flags.append(f"degraded->{response.effective_allocator}")
    if response.session_digest:
        flags.append(f"session {response.session_digest}")
    print(f"{response.effective_allocator}: "
          f"moves {stats['moves_eliminated']}/{stats['moves_before']}, "
          f"spills {stats['spill_instructions']}, "
          f"cycles {response.cycles['total']:.0f}"
          f"{' [' + ', '.join(flags) + ']' if flags else ''}", file=out)
    return 0


def _cmd_stats(args, out) -> None:
    if getattr(args, "knobs", False):
        from repro.config import runtime_knobs

        print(canonical_json(runtime_knobs()), file=out)
        return
    client = ServiceClient(args.host, args.port)
    print(canonical_json(client.stats()), file=out)


def _cmd_cluster(args, out) -> int:
    """Dispatch ``cluster {serve,submit,stats}``.

    ``submit``/``stats`` reuse the single-server implementations
    verbatim — the router speaks the identical protocol, only the
    default port differs (and argparse already applied it).
    """
    if args.cluster_command == "serve":
        return cmd_cluster_serve(args, out)
    if args.cluster_command == "submit":
        return _cmd_submit(args, out) or 0
    _cmd_stats(args, out)
    return 0


def _cmd_example(out) -> None:
    from repro.target.lowering import lower_function
    from repro.workloads.figures import figure7_function

    machine = figure7_machine()
    func = figure7_function()
    print("Figure 7(a):", file=out)
    print(print_function(func), file=out)
    lower_function(func, machine)
    allocator = PreferenceDirectedAllocator(keep_trace=True)
    result = allocate_function(func, machine, allocator)
    print("\nselection trace:", file=out)
    print(allocator.last_trace, file=out)
    print("\nFigure 7(h):", file=out)
    print(print_function(func), file=out)
    report = estimate_cycles(func, machine)
    print(f"\nmoves eliminated {result.stats.moves_eliminated}"
          f"/{result.stats.moves_before}; paired loads fused "
          f"{report.paired_loads_fused}", file=out)


def _cmd_targets(out) -> None:
    for label, factory in PRESSURE_MODELS.items():
        print(f"--- {label} ---", file=out)
        print(factory().describe(), file=out)
        print(file=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
