"""Table/series formatting for the benchmark harness.

The figures in the paper are bar charts of ratios against a base
algorithm; the harness prints them as aligned text tables with a
geometric-mean summary row (the paper's "geo." column in Figure 10).
"""

from __future__ import annotations

import json
import math
from typing import Mapping, Sequence

__all__ = ["geomean", "format_table", "format_ratio_table",
           "canonical_json"]


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, fixed separators, no whitespace
    variance.  The service protocol, the ``--json`` CLI outputs, and the
    content-addressed cache all serialize through this single function so
    equal payloads always produce byte-equal text (and therefore equal
    fingerprints)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, ignoring non-positive entries defensively."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def format_table(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    cells: Mapping[tuple[str, str], float],
    fmt: str = "{:.3f}",
    add_geomean: bool = True,
) -> str:
    """Aligned text table; ``cells`` maps (row, column) -> value."""
    col_width = max(12, max((len(c) for c in columns), default=12) + 2)
    row_width = max(14, max((len(r) for r in rows), default=14) + 2)
    lines = [title, "=" * len(title)]
    header = " " * row_width + "".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    for row in rows:
        cells_text = "".join(
            f"{fmt.format(cells[(row, col)]):>{col_width}}"
            if (row, col) in cells else f"{'-':>{col_width}}"
            for col in columns
        )
        lines.append(f"{row:<{row_width}}" + cells_text)
    if add_geomean and rows:
        geo_cells = "".join(
            f"{fmt.format(geomean([cells[(r, c)] for r in rows if (r, c) in cells])):>{col_width}}"
            for c in columns
        )
        lines.append(f"{'geo. mean':<{row_width}}" + geo_cells)
    return "\n".join(lines)


def format_ratio_table(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    raw: Mapping[tuple[str, str], float],
    base_column: str,
    drop_base_column: bool = True,
    fmt: str = "{:.3f}",
) -> str:
    """Normalize every column by ``base_column`` before formatting.

    A zero base cell yields a ratio of 1.0 when the measured cell is also
    zero (nothing to improve on) and is omitted otherwise.
    """
    ratio_cells: dict[tuple[str, str], float] = {}
    shown = [c for c in columns if not (drop_base_column and c == base_column)]
    for row in rows:
        base = raw.get((row, base_column))
        if base is None:
            continue
        for col in shown:
            if (row, col) not in raw:
                continue
            value = raw[(row, col)]
            if base == 0:
                if value == 0:
                    ratio_cells[(row, col)] = 1.0
                continue
            ratio_cells[(row, col)] = value / base
    return format_table(title, rows, shown, ratio_cells, fmt=fmt)
