"""Preference-Directed Graph Coloring — a full reproduction.

Reimplements Koseki, Komatsu & Nakatani, "Preference-Directed Graph
Coloring" (PLDI 2002): a Chaitin-style register allocator that resolves
spilling, coalescing, and irregular-register preferences in one
integrated select phase, driven by a Register Preference Graph (RPG) and
a Coloring Precedence Graph (CPG), together with every substrate the
evaluation needs — an RTL IR with SSA, liveness/interference analyses,
the six baseline allocators the paper discusses, a cycle-cost
simulator, and a SPECjvm98-like synthetic workload suite.

Quickstart::

    from repro import (make_benchmark, prepare_module, allocate_module,
                       middle_pressure, PreferenceDirectedAllocator)

    machine = middle_pressure()
    prepared = prepare_module(make_benchmark("jess"), machine)
    run = allocate_module(prepared, machine, PreferenceDirectedAllocator())
    print(run.stats.moves_eliminated, run.cycles.total)
"""

from repro.core import (
    ColoringPrecedenceGraph,
    CostModel,
    PreferenceConfig,
    PreferenceDirectedAllocator,
    PreferenceSelector,
    RegisterPreferenceGraph,
    Strength,
    build_cpg,
    build_rpg,
    find_paired_loads,
)
from repro.errors import (
    AllocationError,
    AllocationVerifyError,
    AnalysisError,
    IRError,
    IRValidationError,
    ParseError,
    ReproError,
    SimulationError,
    TargetError,
)
from repro.ir import (
    Function,
    IRBuilder,
    Module,
    parse_function,
    parse_module,
    print_function,
    print_module,
    side_by_side,
    validate_function,
    validate_module,
)
from repro.ir.clone import clone_function, clone_module
from repro.ir.diff import FunctionDelta, ValueEdit, diff_functions
from repro.pipeline import (
    ModuleAllocation,
    allocate_module,
    prepare_function,
    prepare_module,
)
from repro.service.session import (
    FunctionSession,
    SessionStore,
    allocate_function_incremental,
)
from repro.regalloc import (
    AllocationOptions,
    AllocationResult,
    AllocationStats,
    Allocator,
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    PriorityAllocator,
    allocate_function,
    verify_allocation,
)
from repro.reporting import format_ratio_table, format_table, geomean
from repro.viz import cfg_to_dot, cpg_to_dot, interference_to_dot, rpg_to_dot
from repro.sim import (
    CycleReport,
    Interpreter,
    Memory,
    default_registry,
    estimate_cycles,
    run_function,
)
from repro.ssa import from_ssa, to_ssa
from repro.target import (
    PRESSURE_MODELS,
    TargetMachine,
    high_pressure,
    low_pressure,
    lower_function,
    make_machine,
    middle_pressure,
)
from repro.workloads import (
    BENCHMARK_NAMES,
    SPEC_PROFILES,
    make_benchmark,
    make_suite,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # core contribution
    "PreferenceDirectedAllocator",
    "PreferenceConfig",
    "RegisterPreferenceGraph",
    "ColoringPrecedenceGraph",
    "PreferenceSelector",
    "CostModel",
    "Strength",
    "build_rpg",
    "build_cpg",
    "find_paired_loads",
    # baselines & framework
    "Allocator",
    "AllocationOptions",
    "AllocationResult",
    "AllocationStats",
    "allocate_function",
    "ChaitinAllocator",
    "BriggsAllocator",
    "IteratedCoalescingAllocator",
    "OptimisticCoalescingAllocator",
    "CallCostAllocator",
    "PriorityAllocator",
    "verify_allocation",
    # IR
    "IRBuilder",
    "Function",
    "Module",
    "parse_function",
    "parse_module",
    "print_function",
    "print_module",
    "side_by_side",
    "validate_function",
    "validate_module",
    "clone_function",
    "clone_module",
    "diff_functions",
    "FunctionDelta",
    "ValueEdit",
    # pipeline
    "prepare_function",
    "prepare_module",
    "allocate_module",
    "ModuleAllocation",
    "allocate_function_incremental",
    "FunctionSession",
    "SessionStore",
    "to_ssa",
    "from_ssa",
    "lower_function",
    # targets
    "TargetMachine",
    "make_machine",
    "high_pressure",
    "middle_pressure",
    "low_pressure",
    "PRESSURE_MODELS",
    # simulation
    "Interpreter",
    "run_function",
    "Memory",
    "default_registry",
    "CycleReport",
    "estimate_cycles",
    # workloads & reporting
    "make_benchmark",
    "make_suite",
    "BENCHMARK_NAMES",
    "SPEC_PROFILES",
    "format_table",
    "format_ratio_table",
    "geomean",
    "cfg_to_dot",
    "interference_to_dot",
    "rpg_to_dot",
    "cpg_to_dot",
    # errors
    "ReproError",
    "IRError",
    "IRValidationError",
    "ParseError",
    "AnalysisError",
    "AllocationError",
    "AllocationVerifyError",
    "SimulationError",
    "TargetError",
]
