"""Per-phase wall-clock profiling with a negligible-overhead off mode.

The allocator pipeline is instrumented with ``with phase("name"):``
blocks at every interesting boundary (prepare / renumber / liveness /
interference / build-RPG / simplify / CPG / select / spill-insert /
rewrite), plus decision-loop sub-phases inside the hot ones:
``simplify/spill_pick`` (spill-candidate choice), ``select/choose``
(ready-queue pick) and ``select/color`` (color assignment + decision
propagation).  When no profiler is active — the default — ``phase`` returns
one shared no-op context manager: the cost is a thread-local read and an
empty ``__enter__``/``__exit__`` pair, cheap enough to leave the
instrumentation permanently in place.

Activating a profiler is scoped and thread-local::

    with profiled() as prof:
        allocate_module(prepared, machine, allocator)
    print(prof.snapshot())

Nested phases accumulate under slash-joined paths
(``"reanalyze/liveness"``), so a snapshot is a flat
``{path: {"s": seconds, "calls": n}}`` table that serializes directly
into bench reports and service metrics.  Phases on other threads (or in
process-pool workers) are invisible to the activating thread's profiler;
profile with ``jobs=1`` when a complete breakdown matters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["Profiler", "phase", "profiled", "merge_snapshots"]

_tls = threading.local()


class _NullPhase:
    """Shared do-nothing span handed out while no profiler is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Span:
    """One timed entry/exit of a named phase on the active profiler."""

    __slots__ = ("_profiler", "_name", "_path", "_t0")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._profiler._stack
        self._path = f"{stack[-1]}/{self._name}" if stack else self._name
        stack.append(self._path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._t0
        self._profiler._stack.pop()
        acc = self._profiler._acc.get(self._path)
        if acc is None:
            self._profiler._acc[self._path] = [elapsed, 1]
        else:
            acc[0] += elapsed
            acc[1] += 1
        return False


class Profiler:
    """Accumulates per-path wall time and call counts."""

    def __init__(self) -> None:
        #: path -> [seconds, calls]
        self._acc: dict[str, list] = {}
        self._stack: list[str] = []

    def snapshot(self, digits: int = 6) -> dict[str, dict]:
        """``{path: {"s": seconds, "calls": n}}`` in first-seen order."""
        return {
            path: {"s": round(acc[0], digits), "calls": acc[1]}
            for path, acc in self._acc.items()
        }

    def total(self, path: str) -> float:
        """Accumulated seconds under ``path`` (0.0 when never entered)."""
        acc = self._acc.get(path)
        return acc[0] if acc else 0.0


def phase(name: str):
    """A context manager timing ``name`` on the active profiler, if any."""
    profiler = getattr(_tls, "profiler", None)
    if profiler is None:
        return _NULL_PHASE
    return _Span(profiler, name)


@contextmanager
def profiled():
    """Activate a fresh :class:`Profiler` on this thread; yields it."""
    previous = getattr(_tls, "profiler", None)
    profiler = Profiler()
    _tls.profiler = profiler
    try:
        yield profiler
    finally:
        _tls.profiler = previous


def merge_snapshots(snapshots) -> dict[str, dict]:
    """Sum several :meth:`Profiler.snapshot` tables path-by-path."""
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for path, entry in snap.items():
            slot = merged.setdefault(path, {"s": 0.0, "calls": 0})
            slot["s"] = round(slot["s"] + entry["s"], 6)
            slot["calls"] += entry["calls"]
    return merged
