"""The allocation :class:`Policy`: every result-relevant heuristic knob.

The paper fixes a handful of heuristic constants — the appendix cost
model (Save_Restore_Cost = 3, Callee_Save_Cost = 2, spill load/store
weights 2/1, loop frequency 10**depth), the Chaitin spill metric
(cost / degree with an id tie-break), and the preference selector's
ready-queue key — and the service adds one more (the degradation
ladder).  Historically those lived as literals scattered across
``core/costs.py``, ``core/select.py``, ``regalloc/simplify.py``,
``regalloc/worklist.py``, ``regalloc/callcost.py`` and
``service/scheduler.py``.  This module factors them into one frozen,
serializable value so heuristic research (and the offline tuner in
``benchmarks/tune_policy.py``) can vary them without forking the code.

Contract: ``Policy()`` — the default — is **byte-identical** to the
historical literals.  Every consumer guards the default value onto the
exact original computation path (same arithmetic, same int/float
types), and the service cache fingerprint only grows a ``policy`` key
when a request carries a *non-default* policy, so existing traffic
keeps its fingerprints and cached results.

Serialization is canonical JSON (sorted keys, fixed separators);
``Policy.digest()`` is the sha256 of that form and is what enters wire
payloads, cache fingerprints, and session memo keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.reporting import canonical_json

__all__ = [
    "Policy",
    "DEFAULT_POLICY",
    "DEFAULT_DEGRADATION_LADDER",
    "load_policy",
    "preset_path",
    "available_presets",
]

#: The service's allocator fallback ladder under deadline pressure /
#: overload, as ordered (allocator, cheaper-allocator) pairs.  Chaitin
#: is terminal.  Mirrored by ``service.scheduler.DEGRADATION_LADDER``
#: (which is derived from this default at import time).
DEFAULT_DEGRADATION_LADDER = (
    ("briggs", "chaitin"),
    ("callcost", "chaitin"),
    ("full", "chaitin"),
    ("iterated", "briggs"),
    ("only-coalescing", "chaitin"),
    ("optimistic", "briggs"),
    ("priority", "chaitin"),
)

#: Allocator names a ladder entry may mention (kept as a literal so this
#: module stays a leaf — scheduler imports *us*).
_LADDER_NAMES = frozenset(
    name for pair in DEFAULT_DEGRADATION_LADDER for name in pair
)

_TIE_BREAK_KEYS = ("id", "name")


@dataclass(frozen=True)
class Policy:
    """Every result-relevant heuristic decision point, in one value.

    All fields default to the paper's (and this repo's historical)
    constants; see the module docstring for the byte-identity contract.
    Instances are hashable and order-insensitively comparable, so they
    can key caches directly.
    """

    # -- cost-model constants (paper appendix) -------------------------
    #: cycles to save+restore a volatile register around one call
    save_restore_cost: int = 3
    #: one-time cycles to claim a callee-save (non-volatile) register
    callee_save_cost: int = 2
    #: weight of one spilled *use* (a load) in spill-cost estimates
    spill_load_cost: int = 2
    #: weight of one spilled *def* (a store) in spill-cost estimates
    spill_store_cost: int = 1
    #: spill-cost block weighting is ``freq ** exponent`` where freq is
    #: the 10**depth loop frequency; 1.0 reproduces the paper exactly.
    #: Applied to spill-cost weighting only — cycle *estimation* always
    #: uses the unmodified frequency.
    loop_depth_exponent: float = 1.0

    # -- spill-candidate scoring (Chaitin's cost/degree metric) --------
    #: metric = spill_cost ** cost_exp / max(degree, 1) ** degree_exp;
    #: (1.0, 1.0) is the classic cost/degree.
    spill_cost_exponent: float = 1.0
    spill_degree_exponent: float = 1.0
    #: deterministic tie-break field order for equal metrics
    spill_tie_break: tuple[str, ...] = ("id", "name")

    # -- PreferenceSelector ready-queue key ----------------------------
    #: key = (w_diff * differential, w_cost * spill_cost, w_id * -id);
    #: all-1.0 weights reproduce the historical lexicographic key.
    select_differential_weight: float = 1.0
    select_spill_cost_weight: float = 1.0
    select_id_weight: float = 1.0

    # -- service degradation ladder ------------------------------------
    degradation_ladder: tuple[tuple[str, str], ...] = (
        DEFAULT_DEGRADATION_LADDER
    )

    def __post_init__(self) -> None:
        for name in ("save_restore_cost", "callee_save_cost",
                     "spill_load_cost", "spill_store_cost"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{name} must be an int, got {value!r}")
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        for name in ("loop_depth_exponent", "spill_cost_exponent",
                     "spill_degree_exponent"):
            value = getattr(self, name)
            self._check_weight(name, value)
            object.__setattr__(self, name, float(value))
        for name in ("select_differential_weight",
                     "select_spill_cost_weight", "select_id_weight"):
            value = getattr(self, name)
            self._check_weight(name, value)
            object.__setattr__(self, name, float(value))
        tie = tuple(self.spill_tie_break)
        if (not tie or len(set(tie)) != len(tie)
                or any(k not in _TIE_BREAK_KEYS for k in tie)
                or "id" not in tie):
            raise ValueError(
                "spill_tie_break must be a duplicate-free ordering of "
                f"{_TIE_BREAK_KEYS} that includes 'id', got {tie!r}"
            )
        object.__setattr__(self, "spill_tie_break", tie)
        ladder = tuple(
            (str(frm), str(to)) for frm, to in self.degradation_ladder
        )
        seen: set[str] = set()
        for frm, to in ladder:
            if frm not in _LADDER_NAMES or to not in _LADDER_NAMES:
                raise ValueError(
                    f"degradation ladder names unknown allocator in "
                    f"({frm!r}, {to!r})"
                )
            if frm == to:
                raise ValueError(f"ladder entry {frm!r} degrades to itself")
            if frm in seen:
                raise ValueError(f"duplicate ladder entry for {frm!r}")
            seen.add(frm)
        object.__setattr__(
            self, "degradation_ladder", tuple(sorted(ladder))
        )

    @staticmethod
    def _check_weight(name: str, value) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{name} must be a number, got {value!r}")
        value = float(value)
        if not (0.0 < value < float("inf")) or value != value:
            raise ValueError(
                f"{name} must be finite and > 0, got {value!r}"
            )

    # -- derived views --------------------------------------------------

    def is_default(self) -> bool:
        """True iff byte-identical to the paper's historical constants."""
        return self == DEFAULT_POLICY

    def ladder_map(self) -> dict[str, str]:
        """The degradation ladder as a lookup dict."""
        return dict(self.degradation_ladder)

    def replace(self, **changes) -> "Policy":
        return replace(self, **changes)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; tuples become lists, field order canonical."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "degradation_ladder":
                value = [list(pair) for pair in value]
            elif f.name == "spill_tie_break":
                value = list(value)
            out[f.name] = value
        return out

    def to_json(self, indent: int | None = None) -> str:
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "Policy":
        if not isinstance(payload, dict):
            raise ValueError(f"policy must be an object, got {payload!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown policy field(s) {sorted(unknown)}")
        values = dict(payload)
        if "degradation_ladder" in values:
            ladder = values["degradation_ladder"]
            if not isinstance(ladder, (list, tuple)) or any(
                not isinstance(pair, (list, tuple)) or len(pair) != 2
                for pair in ladder
            ):
                raise ValueError(
                    "degradation_ladder must be a list of [from, to] pairs"
                )
            values["degradation_ladder"] = tuple(
                (pair[0], pair[1]) for pair in ladder
            )
        if "spill_tie_break" in values:
            tie = values["spill_tie_break"]
            if not isinstance(tie, (list, tuple)):
                raise ValueError("spill_tie_break must be a list")
            values["spill_tie_break"] = tuple(tie)
        return cls(**values)

    @classmethod
    def from_json(cls, text: str) -> "Policy":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"invalid policy JSON: {err}") from None
        return cls.from_dict(payload)

    def digest(self) -> str:
        """sha256 of the canonical JSON form — the identity that enters
        cache fingerprints, wire payloads, and session memo keys."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(
                canonical_json(self.to_dict()).encode()
            ).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


DEFAULT_POLICY = Policy()

_PRESET_DIR = Path(__file__).resolve().parent / "policies"


def preset_path(name: str) -> Path:
    """Filesystem path of a named built-in preset (may not exist)."""
    return _PRESET_DIR / f"{name}.json"


def available_presets() -> list[str]:
    """Names of the committed built-in presets."""
    if not _PRESET_DIR.is_dir():
        return []
    return sorted(p.stem for p in _PRESET_DIR.glob("*.json"))


def load_policy(spec: str | None) -> Policy:
    """Resolve a ``--policy`` argument: ``None`` -> defaults, a built-in
    preset name (e.g. ``tuned_v1``) -> the committed preset, anything
    else -> a JSON file path."""
    if spec is None:
        return DEFAULT_POLICY
    if "/" not in spec and "\\" not in spec and not spec.endswith(".json"):
        path = preset_path(spec)
        if not path.is_file():
            raise ValueError(
                f"unknown policy preset {spec!r} "
                f"(available: {available_presets()!r})"
            )
        return Policy.from_json(path.read_text())
    path = Path(spec)
    if not path.is_file():
        raise ValueError(f"policy file not found: {spec}")
    return Policy.from_json(path.read_text())
