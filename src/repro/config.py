"""Single reader for the strategy-only environment knobs.

The repo grew seven result-neutral environment variables — each picks
*how* results are computed, never *what*:

* ``REPRO_SELECT_INDEX``       — indexed vs. scanned decision loops
* ``REPRO_DATAFLOW``           — numpy vs. pure-int dataflow kernels
* ``REPRO_INCREMENTAL_ROUNDS`` — spill-round re-analysis patching
* ``REPRO_INCREMENTAL_EDITS``  — edit-delta session patching
* ``REPRO_NO_NUMPY``           — suppress the numpy import entirely
* ``REPRO_WIRE``               — pool dispatch wire (pickle vs. codec)
* ``REPRO_ROUND0_CACHE``       — worker round-0 analysis LRU bound

Historically each consumer read ``os.environ`` itself; this module is
now the one place those variables are consulted (``knob_env``), and
:func:`runtime_knobs` is the introspection payload — what every knob
*resolves to* right now — surfaced by ``repro stats --knobs`` and
stamped into the benchmark JSON reports so a perf number can always be
traced back to the strategy configuration that produced it.

Result-*relevant* configuration lives elsewhere by design:
``AllocationOptions`` (and its ``from_env``) for execution options and
:class:`repro.policy.Policy` for heuristic constants.  Keeping this
module a leaf (stdlib-only imports at module scope) lets every layer
use it without cycles.
"""

from __future__ import annotations

import os

__all__ = ["KNOB_ENV_VARS", "knob_env", "knob_env_snapshot",
           "runtime_knobs"]

#: Every strategy-only environment variable, in canonical order.  The
#: worker pool snapshots exactly this set into spawned workers so a
#: pool behaves like its parent regardless of start method.
KNOB_ENV_VARS = (
    "REPRO_SELECT_INDEX",
    "REPRO_DATAFLOW",
    "REPRO_INCREMENTAL_ROUNDS",
    "REPRO_INCREMENTAL_EDITS",
    "REPRO_NO_NUMPY",
    "REPRO_WIRE",
    "REPRO_ROUND0_CACHE",
)


def knob_env(name: str, default: str | None = None,
             environ=None) -> str | None:
    """The single point where strategy env vars are read."""
    if name not in KNOB_ENV_VARS:
        raise ValueError(f"unknown strategy knob {name!r}")
    env = os.environ if environ is None else environ
    return env.get(name, default)


def knob_env_snapshot(environ=None) -> dict[str, str]:
    """The raw (unresolved) knob settings that are actually set."""
    env = os.environ if environ is None else environ
    return {name: env[name] for name in KNOB_ENV_VARS if name in env}


def runtime_knobs() -> dict:
    """What every strategy knob resolves to in this process.

    The payload is JSON-safe and intentionally small; it is shown by
    ``repro stats --knobs`` and stamped into bench reports.  Resolution
    is delegated to the owning modules (imported lazily to keep this a
    leaf module).
    """
    from repro.analysis import matrix
    from repro.analysis.incremental import (
        incremental_edits_mode,
        incremental_mode,
    )
    from repro.exec.alloctask import round0_cache_max
    from repro.exec.wire import wire_mode
    from repro.regalloc.worklist import select_index_mode

    return {
        "select_index": select_index_mode(),
        "dataflow": matrix.dataflow_mode(),
        "incremental_rounds": incremental_mode(),
        "incremental_edits": incremental_edits_mode(),
        "numpy": matrix.numpy_version(),
        "wire": wire_mode(),
        "round0_cache": round0_cache_max(),
        "env": knob_env_snapshot(),
    }
