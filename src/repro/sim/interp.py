"""IR interpreter, usable at every pipeline stage.

The same interpreter runs:

* builder/generator output (virtual registers, unlowered calls, phis),
* SSA form (phis evaluated with parallel-copy semantics),
* lowered code (physical argument/return registers),
* fully allocated code (physical registers + spill slots).

This is what makes end-to-end semantic-preservation testing possible:
run the function before and after any set of passes with the same
inputs/memory/call registry and compare results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    ConstInst,
    Jump,
    Load,
    Move,
    Ret,
    SpillLoad,
    SpillStore,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, RegClass, Register, Value
from repro.sim.ops import CallRegistry, Memory, apply_binop, apply_unop, \
    default_registry
from repro.target.machine import TargetMachine

__all__ = ["ExecutionResult", "Interpreter", "run_function"]

DEFAULT_STEP_LIMIT = 1_000_000


@dataclass(eq=False)
class ExecutionResult:
    """Return value plus dynamic execution counters."""

    value: object
    steps: int = 0
    #: dynamic counts by instruction class name
    counts: dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)


class Interpreter:
    """Executes one function against a memory and call registry."""

    def __init__(
        self,
        machine: TargetMachine | None = None,
        memory: Memory | None = None,
        registry: CallRegistry | None = None,
        step_limit: int = DEFAULT_STEP_LIMIT,
    ):
        self.machine = machine
        self.memory = memory if memory is not None else Memory()
        self.registry = registry if registry is not None else default_registry()
        self.step_limit = step_limit

    # ------------------------------------------------------------------

    def run(self, func: Function, args: list | None = None) -> ExecutionResult:
        args = list(args or [])
        env: dict[Register, object] = {}
        self._bind_params(func, args, env)

        blocks = func.block_map()
        result = ExecutionResult(value=None)
        label = func.entry.label
        prev_label: str | None = None

        while True:
            blk = blocks.get(label)
            if blk is None:
                raise SimulationError(f"{func.name}: jump to unknown {label}")
            # Parallel phi evaluation: read all incomings before writing.
            phis = blk.phis()
            if phis:
                values = [
                    self._value(p.incoming[prev_label], env)
                    if prev_label in p.incoming
                    else 0
                    for p in phis
                ]
                for p, v in zip(phis, values):
                    env[p.dst] = v
                result.steps += len(phis)

            jumped = False
            for instr in blk.instrs[len(phis):]:
                result.steps += 1
                if result.steps > self.step_limit:
                    raise SimulationError(
                        f"{func.name}: step limit {self.step_limit} exceeded"
                    )
                kind = type(instr).__name__
                result.counts[kind] = result.counts.get(kind, 0) + 1

                if isinstance(instr, ConstInst):
                    env[instr.dst] = instr.value
                elif isinstance(instr, Move):
                    env[instr.dst] = self._value(instr.src, env)
                elif isinstance(instr, UnaryOp):
                    env[instr.dst] = apply_unop(
                        instr.op, self._value(instr.src, env)
                    )
                elif isinstance(instr, BinOp):
                    env[instr.dst] = apply_binop(
                        instr.op,
                        self._value(instr.lhs, env),
                        self._value(instr.rhs, env),
                    )
                elif isinstance(instr, Load):
                    addr = self._value(instr.base, env) + instr.offset
                    env[instr.dst] = self.memory.read(
                        addr, byte=instr.width == "byte"
                    )
                elif isinstance(instr, Store):
                    addr = self._value(instr.base, env) + instr.offset
                    self.memory.write(addr, self._value(instr.src, env))
                elif isinstance(instr, SpillLoad):
                    env[instr.dst] = env.get(("slot", instr.slot), 0)
                elif isinstance(instr, SpillStore):
                    env[("slot", instr.slot)] = self._value(instr.src, env)
                elif isinstance(instr, Call):
                    self._call(instr, env)
                elif isinstance(instr, Jump):
                    prev_label, label = label, instr.target
                    jumped = True
                    break
                elif isinstance(instr, Branch):
                    cond = self._value(instr.cond, env)
                    prev_label = label
                    label = instr.iftrue if cond else instr.iffalse
                    jumped = True
                    break
                elif isinstance(instr, Ret):
                    result.value = self._ret_value(instr, env)
                    return result
                else:
                    raise SimulationError(
                        f"cannot execute {type(instr).__name__}"
                    )
            if not jumped:
                raise SimulationError(
                    f"{func.name}/{label}: fell off block without terminator"
                )

    # ------------------------------------------------------------------

    def _bind_params(self, func: Function, args: list, env: dict) -> None:
        for i, param in enumerate(func.params):
            env[param] = args[i] if i < len(args) else 0
        if self.machine is not None:
            counters: dict[RegClass, int] = {}
            for i, param in enumerate(func.params):
                index = counters.get(param.rclass, 0)
                counters[param.rclass] = index + 1
                preg = self.machine.param_reg(index, param.rclass)
                env[preg] = args[i] if i < len(args) else 0

    def _value(self, value: Value, env: dict):
        if isinstance(value, Const):
            return value.value
        if value not in env:
            # Undefined register: defined as zero (e.g. SSA undef names).
            return 0.0 if value.rclass is RegClass.FLOAT else 0
        return env[value]

    def _call(self, instr: Call, env: dict) -> None:
        if instr.lowered:
            call_args = [self._value(r, env) for r in instr.reg_uses]
            result = self.registry.invoke(instr.callee, call_args)
            for d in instr.reg_defs:
                env[d] = result
        else:
            call_args = [self._value(a, env) for a in instr.args]
            result = self.registry.invoke(instr.callee, call_args)
            if instr.dst is not None:
                env[instr.dst] = result

    def _ret_value(self, instr: Ret, env: dict):
        if instr.src is not None:
            return self._value(instr.src, env)
        if instr.reg_uses:
            return self._value(instr.reg_uses[0], env)
        return None


def run_function(
    func: Function,
    args: list | None = None,
    machine: TargetMachine | None = None,
    memory: Memory | None = None,
    registry: CallRegistry | None = None,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(machine, memory, registry, step_limit)
    return interp.run(func, args)
