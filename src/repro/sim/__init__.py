"""Execution and cost simulation: interpreters + the cycle evaluator."""

from repro.sim.cycles import CALL_OVERHEAD, CycleReport, estimate_cycles
from repro.sim.interp import ExecutionResult, Interpreter, run_function
from repro.sim.ops import (
    CallRegistry,
    Memory,
    apply_binop,
    apply_unop,
    default_registry,
)

__all__ = [
    "CycleReport",
    "estimate_cycles",
    "CALL_OVERHEAD",
    "ExecutionResult",
    "Interpreter",
    "run_function",
    "CallRegistry",
    "Memory",
    "apply_binop",
    "apply_unop",
    "default_registry",
]
