"""Deterministic operation semantics shared by both interpreter modes.

All integer arithmetic is 64-bit two's complement; division by zero is
defined (yields 0) so randomly generated programs cannot fault; memory
reads of never-written addresses yield a deterministic hash of the
address.  The point is not architectural fidelity but *exact agreement*
between pre-allocation and post-allocation execution, which is what the
semantic-preservation tests assert.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["apply_binop", "apply_unop", "Memory", "CallRegistry",
           "default_registry", "MASK64"]

MASK64 = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def _saturate_ftoi(a: float) -> int:
    """Float-to-int with defined results for NaN and the infinities.

    Hardware conversions saturate (or raise, which we cannot); NaN maps
    to 0 like RISC-V's fcvt writes a canonical value rather than trapping.
    """
    if a != a:  # NaN
        return 0
    if a >= float(1 << 63):
        return (1 << 63) - 1
    if a < -float(1 << 63):
        return -(1 << 63)
    return _wrap(int(a))


def apply_binop(op: str, a, b):
    """Evaluate a binary opcode on Python numbers."""
    if op == "add":
        return _wrap(a + b)
    if op == "sub":
        return _wrap(a - b)
    if op == "mul":
        return _wrap(a * b)
    if op == "div":
        if b == 0:
            return 0
        return _wrap(int(a / b))  # C-style truncating division
    if op == "rem":
        if b == 0:
            return 0
        return _wrap(a - int(a / b) * b)
    if op == "and":
        return _wrap(a & b)
    if op == "or":
        return _wrap(a | b)
    if op == "xor":
        return _wrap(a ^ b)
    if op == "shl":
        return _wrap(a << (b % 64))
    if op == "shr":
        return _wrap((a & MASK64) >> (b % 64))
    if op == "fadd":
        return float(a) + float(b)
    if op == "fsub":
        return float(a) - float(b)
    if op == "fmul":
        return float(a) * float(b)
    if op == "fdiv":
        return 0.0 if b == 0 else float(a) / float(b)
    if op == "cmpeq":
        return int(a == b)
    if op == "cmpne":
        return int(a != b)
    if op == "cmplt":
        return int(a < b)
    if op == "cmple":
        return int(a <= b)
    if op == "cmpgt":
        return int(a > b)
    if op == "cmpge":
        return int(a >= b)
    raise SimulationError(f"unknown binary op {op!r}")


def apply_unop(op: str, a):
    """Evaluate a unary opcode."""
    if op == "neg":
        return _wrap(-a)
    if op == "not":
        return _wrap(~int(a))
    if op == "zext8":
        return int(a) & 0xFF
    if op == "fneg":
        return -float(a)
    if op == "itof":
        return float(a)
    if op == "ftoi":
        return _saturate_ftoi(float(a))
    raise SimulationError(f"unknown unary op {op!r}")


class Memory:
    """Sparse memory with deterministic contents for unwritten cells."""

    def __init__(self):
        self._cells: dict[int, int] = {}

    def read(self, addr: int, byte: bool = False) -> int:
        addr = int(addr)
        if addr in self._cells:
            value = self._cells[addr]
        else:
            # Deterministic pseudo-content: a cheap integer mix, bounded
            # so arithmetic over loaded values stays well-behaved.
            value = (addr * 2654435761) & 0xFFFF
        return value & 0xFF if byte else value

    def write(self, addr: int, value: int) -> None:
        self._cells[int(addr)] = _wrap(int(value))


class CallRegistry:
    """Callee name -> pure Python function used by both interpreters."""

    def __init__(self):
        self._funcs: dict[str, object] = {}

    def register(self, name: str, func) -> None:
        self._funcs[name] = func

    def invoke(self, name: str, args: list):
        if name not in self._funcs:
            raise SimulationError(f"call to unregistered function {name!r}")
        return self._funcs[name](*args)

    def __contains__(self, name: str) -> bool:
        return name in self._funcs


def default_registry() -> CallRegistry:
    """Registry with the callee names the workload generator emits."""
    registry = CallRegistry()

    def mix(*args):
        acc = 0x9E3779B9
        for a in args:
            acc = _wrap(acc * 31 + int(a))
        return _wrap(acc & 0xFFFF)

    def fsum(*args):
        return float(sum(float(a) for a in args))

    registry.register("helper", mix)
    for i in range(8):
        registry.register(f"ext{i}", mix)
    registry.register("fhelper", fsum)
    return registry
