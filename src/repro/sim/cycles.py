"""Frequency-weighted cycle-cost evaluation of allocated code.

This is the stand-in for the paper's elapsed-time measurements on the
Itanium testbed.  It charges exactly the appendix's cost model:

* ``Inst_Cost`` per instruction times ``Freq_Fact`` (loads 2, others 1),
* spill code at load 2 / store 1,
* a byte load whose destination is outside the byte-capable subset pays
  an extra zero-extension cycle (preference type 2),
* the *second* load of a fusible pair is free when the two destination
  registers are adjacent (type 4, paired loads),
* each volatile register live across a call costs ``3 * freq`` in
  caller-side save/restore (type 3),
* each distinct non-volatile register the function touches costs 2 in
  callee-side save/restore,
* a flat per-call overhead (identical for every allocator; it only sets
  the scale of relative numbers, like the JIT's fixed call machinery).

All components are reported separately so the benchmarks can show *why*
an allocator wins, not just that it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import compute_liveness, instruction_liveness
from repro.cfg.analysis import build_cfg
from repro.cfg.loops import compute_loops
from repro.core.pairs import find_paired_loads
from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    Jump,
    Load,
    Move,
    Ret,
    SpillLoad,
    SpillStore,
)
from repro.ir.values import PReg
from repro.profiling import phase
from repro.target.machine import TargetMachine

__all__ = ["CycleReport", "estimate_cycles", "CALL_OVERHEAD"]

#: Flat machinery cost per call site (identical across allocators).
CALL_OVERHEAD = 5.0


@dataclass(eq=False)
class CycleReport:
    """Cost breakdown of one allocated function (or a whole module)."""

    op_cycles: float = 0.0
    move_cycles: float = 0.0
    spill_cycles: float = 0.0
    caller_save_cycles: float = 0.0
    callee_save_cycles: float = 0.0
    byte_penalty_cycles: float = 0.0
    call_overhead_cycles: float = 0.0
    paired_saved_cycles: float = 0.0
    #: static counters
    paired_loads_fused: int = 0
    moves_remaining: int = 0
    spill_instructions: int = 0

    @property
    def total(self) -> float:
        return (
            self.op_cycles
            + self.move_cycles
            + self.spill_cycles
            + self.caller_save_cycles
            + self.callee_save_cycles
            + self.byte_penalty_cycles
            + self.call_overhead_cycles
        )

    def add(self, other: "CycleReport") -> None:
        """Accumulate another report into this one (module totals)."""
        self.op_cycles += other.op_cycles
        self.move_cycles += other.move_cycles
        self.spill_cycles += other.spill_cycles
        self.caller_save_cycles += other.caller_save_cycles
        self.callee_save_cycles += other.callee_save_cycles
        self.byte_penalty_cycles += other.byte_penalty_cycles
        self.call_overhead_cycles += other.call_overhead_cycles
        self.paired_saved_cycles += other.paired_saved_cycles
        self.paired_loads_fused += other.paired_loads_fused
        self.moves_remaining += other.moves_remaining
        self.spill_instructions += other.spill_instructions

    def describe(self) -> str:
        parts = [
            f"total={self.total:.0f}",
            f"ops={self.op_cycles:.0f}",
            f"moves={self.move_cycles:.0f}",
            f"spills={self.spill_cycles:.0f}",
            f"caller-save={self.caller_save_cycles:.0f}",
            f"callee-save={self.callee_save_cycles:.0f}",
            f"byte-zext={self.byte_penalty_cycles:.0f}",
            f"paired-saved={self.paired_saved_cycles:.0f}",
        ]
        return "  ".join(parts)


def estimate_cycles(func: Function, machine: TargetMachine) -> CycleReport:
    """Evaluate fully-allocated ``func`` under the appendix cost model."""
    report = CycleReport()
    # Named parent phase: the liveness recomputation on the allocated
    # code nests its sub-phases here instead of leaking to the root.
    with phase("cycles"):
        cfg = build_cfg(func)
        loops = compute_loops(cfg)
        liveness = compute_liveness(func, cfg)
        after = instruction_liveness(func, liveness)

    # Fused paired loads: the adjacency check runs on physical registers.
    fused_second_loads: set[int] = set()
    if machine.has_paired_loads:
        for cand in find_paired_loads(func):
            d1, d2 = cand.dsts()
            if (
                isinstance(d1, PReg)
                and isinstance(d2, PReg)
                and d2.index == d1.index + 1
            ):
                fused_second_loads.add(id(cand.second))
                report.paired_loads_fused += 1

    nonvolatile_used: set[PReg] = set()
    for blk in func.blocks:
        freq = loops.freq(blk.label)
        for instr in blk.instrs:
            for reg in list(instr.defs()) + list(instr.used_regs()):
                if isinstance(reg, PReg) and not machine.is_volatile(reg):
                    nonvolatile_used.add(reg)

            if isinstance(instr, Load):
                if id(instr) in fused_second_loads:
                    report.paired_saved_cycles += 2.0 * freq
                    continue
                report.op_cycles += 2.0 * freq
                if instr.width == "byte":
                    regfile = machine.file(instr.dst.rclass)
                    if (
                        regfile.byte_load_regs
                        and instr.dst not in regfile.byte_load_regs
                    ):
                        report.byte_penalty_cycles += 1.0 * freq
            elif isinstance(instr, SpillLoad):
                report.spill_cycles += 2.0 * freq
                report.spill_instructions += 1
            elif isinstance(instr, SpillStore):
                report.spill_cycles += 1.0 * freq
                report.spill_instructions += 1
            elif isinstance(instr, Move):
                report.move_cycles += 1.0 * freq
                report.moves_remaining += 1
            elif isinstance(instr, Call):
                report.call_overhead_cycles += CALL_OVERHEAD * freq
                crossing = after[id(instr)] - set(instr.defs())
                for reg in crossing:
                    if isinstance(reg, PReg) and machine.is_volatile(reg):
                        report.caller_save_cycles += 3.0 * freq
            elif isinstance(instr, (Jump, Ret)):
                report.op_cycles += 1.0 * freq
            else:
                report.op_cycles += 1.0 * freq

    report.callee_save_cycles = 2.0 * len(nonvolatile_used)
    return report
