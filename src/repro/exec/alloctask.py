"""The allocation job executed inside worker-pool processes.

One payload is ``(prepared_func, machine, allocator, options)`` —
exactly what :func:`repro.pipeline._allocate_one` consumes serially —
and the return value is ``(AllocationResult, CycleReport)``.

The worker keeps a **warm round-0 analysis cache** keyed by *content*
(printed function text + machine register model + collection mode), not
by object identity: every batch pickles fresh ``Function`` objects into
the worker, but renumbering is deterministic, so the round-0 analyses
of any copy of a prepared function are value-identical (the same
argument that backs :func:`repro.pipeline.round0_analyses`).  A service
sweeping eight allocators over one module therefore analyzes each
function once per worker, not once per job — and the results remain
byte-identical to a cold serial run.

Options travel *in the payload*, never through worker environment
variables: a persistent worker forked long ago must honor the caller's
current ``incremental`` mode, not whatever ``os.environ`` said at spawn
time.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

__all__ = ["run_alloc_job", "round0_cache_info", "clear_round0_cache"]

#: content key -> RoundAnalyses (per worker process, bounded LRU)
_ROUND0_CACHE: "OrderedDict[str, object]" = OrderedDict()
_ROUND0_CACHE_MAX = 64
_hits = 0
_misses = 0


def _content_key(func, machine, collect: bool, policy) -> str:
    from repro.ir.printer import print_function
    from repro.reporting import canonical_json
    from repro.service.protocol import machine_descriptor

    payload = (
        print_function(func)
        + canonical_json(machine_descriptor(machine))
        + ("+deltas" if collect else "")
        # Default policy adds nothing: keys (and so warm entries) are
        # unchanged for all pre-policy traffic.
        + ("" if policy.is_default() else "+policy:" + policy.digest())
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _warm_round0(func, machine, collect: bool, policy):
    global _hits, _misses
    from repro.analysis.renumber import renumber
    from repro.ir.clone import clone_function
    from repro.regalloc.base import compute_round_analyses

    key = _content_key(func, machine, collect, policy)
    cached = _ROUND0_CACHE.get(key)
    if cached is not None:
        _ROUND0_CACHE.move_to_end(key)
        _hits += 1
        return cached
    _misses += 1
    ref = clone_function(func)
    renumber(ref)
    analyses = compute_round_analyses(ref, collect_deltas=collect,
                                      policy=policy)
    _ROUND0_CACHE[key] = analyses
    while len(_ROUND0_CACHE) > _ROUND0_CACHE_MAX:
        _ROUND0_CACHE.popitem(last=False)
    return analyses


def run_alloc_job(payload):
    """Allocate one prepared function; the pool's default task."""
    from repro.regalloc.base import allocate_function
    from repro.regalloc.verify import verify_allocation
    from repro.sim.cycles import estimate_cycles

    func, machine, allocator, options = payload
    round0 = None
    if options.reuse_analyses:
        round0 = _warm_round0(func, machine,
                              collect=options.incremental != "off",
                              policy=options.policy)
    result = allocate_function(func, machine, allocator,
                               options=options, round0=round0)
    if options.verify:
        verify_allocation(func, machine)
    return result, estimate_cycles(func, machine)


def round0_cache_info() -> dict:
    """Hit/miss counters of *this process's* warm cache (tests)."""
    return {"entries": len(_ROUND0_CACHE), "hits": _hits,
            "misses": _misses}


def clear_round0_cache() -> None:
    global _hits, _misses
    _ROUND0_CACHE.clear()
    _hits = _misses = 0
