"""The allocation job executed inside worker-pool processes.

One payload is either the serial tuple ``(prepared_func, machine,
allocator, options)`` — exactly what
:func:`repro.pipeline._allocate_one` consumes — or, on the codec wire
path, a digest-reference control tuple (see :mod:`repro.exec.wire`)
that resolves to the same tuple plus precomputed content digests.  The return value is
``(AllocationResult, CycleReport)`` either way.

The worker keeps a **warm round-0 analysis cache** keyed by *content*,
not by object identity: every batch ships fresh ``Function`` copies
into the worker, but renumbering is deterministic, so the round-0
analyses of any copy of a prepared function are value-identical (the
same argument that backs :func:`repro.pipeline.round0_analyses`).  The
content key is the codec digest (``sha256`` of
:func:`repro.ir.codec.encode_function`) plus the machine's register
model — on the codec wire path both digests arrive *with* the job, so
keying the cache costs nothing; the pickle path computes the same
digests locally (replacing the historical print-then-hash key).  A
service sweeping eight allocators over one module therefore analyzes
each function once per worker, not once per job — and the results
remain byte-identical to a cold serial run.

The cache bound is the ``REPRO_ROUND0_CACHE`` strategy knob (default
64 entries), surfaced by ``repro stats --knobs`` like every knob;
options travel *in the payload*, never through worker environment
variables: a persistent worker forked long ago must honor the caller's
current ``incremental`` mode, not whatever ``os.environ`` said at spawn
time.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["run_alloc_job", "round0_cache_info", "clear_round0_cache",
           "round0_cache_max"]

#: content key -> RoundAnalyses (per worker process, bounded LRU)
_ROUND0_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_ROUND0_CACHE_DEFAULT_MAX = 64
_hits = 0
_misses = 0


def round0_cache_max() -> int:
    """The round-0 LRU bound: ``REPRO_ROUND0_CACHE`` (default 64)."""
    from repro.config import knob_env

    raw = knob_env("REPRO_ROUND0_CACHE")
    if raw is None or not str(raw).strip():
        return _ROUND0_CACHE_DEFAULT_MAX
    try:
        return max(1, int(str(raw).strip()))
    except ValueError:
        return _ROUND0_CACHE_DEFAULT_MAX


def _content_key(func, machine, collect: bool, policy,
                 func_digest: str | None = None,
                 machine_digest: str | None = None) -> tuple:
    from repro.exec.wire import machine_content_digest
    from repro.ir.codec import function_digest

    if func_digest is None:
        func_digest = function_digest(func)
    if machine_digest is None:
        machine_digest = machine_content_digest(machine)
    return (
        func_digest,
        machine_digest,
        collect,
        # Default policy adds nothing: keys (and so warm entries) are
        # unchanged for all pre-policy traffic.
        None if policy.is_default() else policy.digest(),
    )


def _warm_round0(func, machine, collect: bool, policy,
                 func_digest: str | None = None,
                 machine_digest: str | None = None):
    global _hits, _misses
    from repro.analysis.renumber import renumber
    from repro.ir.clone import clone_function
    from repro.regalloc.base import compute_round_analyses

    key = _content_key(func, machine, collect, policy,
                       func_digest, machine_digest)
    cached = _ROUND0_CACHE.get(key)
    if cached is not None:
        _ROUND0_CACHE.move_to_end(key)
        _hits += 1
        return cached
    _misses += 1
    ref = clone_function(func)
    renumber(ref)
    analyses = compute_round_analyses(ref, collect_deltas=collect,
                                      policy=policy)
    _ROUND0_CACHE[key] = analyses
    limit = round0_cache_max()
    while len(_ROUND0_CACHE) > limit:
        _ROUND0_CACHE.popitem(last=False)
    return analyses


def run_alloc_job(payload):
    """Allocate one prepared function; the pool's default task."""
    from repro.exec.wire import is_wire_job, resolve_job
    from repro.regalloc.base import allocate_function
    from repro.regalloc.verify import verify_allocation
    from repro.sim.cycles import estimate_cycles

    func_digest = machine_digest = None
    if is_wire_job(payload):
        (func, machine, allocator, options,
         func_digest, machine_digest) = resolve_job(payload)
    else:
        func, machine, allocator, options = payload
    round0 = None
    if options.reuse_analyses:
        round0 = _warm_round0(func, machine,
                              collect=options.incremental != "off",
                              policy=options.policy,
                              func_digest=func_digest,
                              machine_digest=machine_digest)
    result = allocate_function(func, machine, allocator,
                               options=options, round0=round0)
    if options.verify:
        verify_allocation(func, machine)
    return result, estimate_cycles(func, machine)


def round0_cache_info() -> dict:
    """Hit/miss counters of *this process's* warm cache (tests)."""
    return {"entries": len(_ROUND0_CACHE), "hits": _hits,
            "misses": _misses}


def clear_round0_cache() -> None:
    global _hits, _misses
    _ROUND0_CACHE.clear()
    _hits = _misses = 0
