"""Deterministic fault injection for the worker pool.

A :class:`FaultPlan` maps *job sequence numbers* (assigned by the pool
in submission order, starting at 0, monotonically across batches) to a
:class:`FaultSpec` that fires on specific *attempt* indices of that job.
Plans are plain frozen data, picklable, and applied only inside
``repro.exec.pool._worker_main`` — the pool's serial fallback paths in
the parent process never consult them, so an injected crash can never
take the caller down.

Three fault kinds:

* ``crash``  — the worker process exits immediately (``os._exit``),
  exactly like a segfault in native allocator code;
* ``sleep``  — the worker sleeps ``sleep_s`` before running the job,
  which trips the pool's deadline enforcement;
* ``error``  — the job raises ``RuntimeError(message)`` instead of
  running (a poisoned function: deterministic failure that must
  propagate to the caller, not kill the worker).

Because the default ``attempts=(0,)`` fires only on the first attempt,
the retried job succeeds and tests can assert full recovery with
byte-identical results; ``FaultSpec(..., attempts=tuple(range(n)))``
makes a fault persistent to exercise the retries-exhausted paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["FaultSpec", "FaultPlan"]

_KINDS = ("crash", "sleep", "error")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what happens, and on which attempts of the job."""

    kind: str
    sleep_s: float = 0.0
    #: attempt indices (0 = first execution) on which the fault fires
    attempts: tuple[int, ...] = (0,)
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.kind == "sleep" and self.sleep_s <= 0:
            raise ValueError("sleep faults need sleep_s > 0")

    def fires_on(self, attempt: int) -> bool:
        return attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """Job sequence number -> fault, for one pool's lifetime."""

    by_job: Mapping[int, FaultSpec] = field(default_factory=dict)

    def lookup(self, job_seq: int, attempt: int) -> FaultSpec | None:
        """The fault to apply to this (job, attempt), if any."""
        spec = self.by_job.get(job_seq)
        if spec is not None and spec.fires_on(attempt):
            return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.by_job)

    # -- convenience builders (tests, benchmarks, CI) ------------------

    @classmethod
    def crash_on(cls, *job_seqs: int,
                 attempts: tuple[int, ...] = (0,)) -> "FaultPlan":
        """Kill the worker running each listed job (first attempt only
        by default, so the retry recovers)."""
        return cls({seq: FaultSpec("crash", attempts=attempts)
                    for seq in job_seqs})

    @classmethod
    def sleep_on(cls, job_seq: int, sleep_s: float,
                 attempts: tuple[int, ...] = (0,)) -> "FaultPlan":
        """Delay the listed job past its deadline."""
        return cls({job_seq: FaultSpec("sleep", sleep_s=sleep_s,
                                       attempts=attempts)})

    @classmethod
    def poison(cls, *job_seqs: int,
               attempts: tuple[int, ...] = tuple(range(16))) -> "FaultPlan":
        """Make the listed jobs raise on every attempt (poisoned
        function: the error must surface, the worker must survive)."""
        return cls({seq: FaultSpec("error", attempts=attempts)
                    for seq in job_seqs})

    @classmethod
    def merged(cls, *plans: "FaultPlan") -> "FaultPlan":
        table: dict[int, FaultSpec] = {}
        for plan in plans:
            table.update(plan.by_job)
        return cls(table)
