"""Digest-deduped wire encoding for worker-pool dispatch.

The pickle wire path serializes one ``(func, machine, allocator,
options)`` tuple per job, so an eight-allocator sweep over a module
pickles every function eight times and every worker unpickles a fresh
object graph per job.  This module replaces the per-job payload with a
tiny control tuple of **content digests**; the bytes behind them — the
function's :mod:`repro.ir.codec` blob plus the pickled machine,
allocator, and options — ship **once per batch per distinct digest**
through one ``multiprocessing.shared_memory`` segment.  Workers decode
each function digest once into a bounded LRU beside the round-0
analysis cache and hand every job a private
:func:`~repro.ir.clone.clone_function` copy (allocation mutates in
place), which is byte-identical to an unpickled copy because the codec
round-trips ``print_function`` text exactly.  Machines, allocators, and
options are read-only across jobs (the serial path already shares one
instance for a whole module sweep), so workers cache them by digest and
unpickle once per batch.

Mode selection follows the strategy-knob idiom (``REPRO_WIRE``, read
through :func:`repro.config.knob_env`, result-neutral and therefore
outside the cache fingerprint):

* ``codec`` (default) — digest-deduped shared-memory dispatch;
* ``pickle`` — the historical per-job pickle path, byte-identical
  results, kept as the oracle;
* ``validate`` — ship *both*; the worker decodes the blob, asserts its
  ``print_function`` text is byte-identical to the pickled function's,
  and then uses the decoded copy, so a codec divergence fails loudly
  instead of silently changing results.

Segment layout and lifecycle: the parent writes ``u32 index length +
pickled {digest: (offset, length)} index + concatenated blobs``,
owns the segment for the whole batch (retries re-send the same control
tuples), and closes+unlinks it in a ``finally`` once every job
resolved.  Workers attach untracked (the parent owns the segment; a
worker death must never unlink it), parse the index once, and keep the
two most recent segments mapped so the per-job cost is a dict lookup.
When shared memory is unavailable (sandboxed ``/dev/shm``), the blob
table rides inline in each control message instead — still
deduplicated by the worker-side caches.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import weakref
from collections import OrderedDict

from repro.config import knob_env
from repro.errors import CodecError
from repro.profiling import phase

__all__ = [
    "WIRE_MODES",
    "WIRE_TAG",
    "parse_wire",
    "wire_mode",
    "Shipment",
    "pack_batch",
    "is_wire_job",
    "resolve_job",
    "machine_content_digest",
    "wire_stats",
    "reset_wire_stats",
    "decode_cache_info",
    "clear_decode_cache",
]

WIRE_MODES = ("pickle", "codec", "validate")

#: First element of every codec-wire control tuple; versioned so a
#: worker from a future wire format rejects instead of misparsing.
WIRE_TAG = "repro-wire-v1"

_INDEX_LEN = struct.Struct(">I")


def parse_wire(raw: str) -> str:
    """Normalize a wire setting to pickle/codec/validate."""
    raw = str(raw).strip().lower()
    if raw in {"0", "off", "false", "no", "pickle"}:
        return "pickle"
    if raw == "validate":
        return "validate"
    return "codec"


def wire_mode() -> str:
    """``"codec"`` (default), ``"pickle"``, or ``"validate"``.

    Controlled by the ``REPRO_WIRE`` environment variable, read through
    :func:`repro.config.knob_env` like every strategy knob.  The knob
    picks *how* payloads travel, never *what* a job computes, so it is
    deliberately outside :func:`~repro.service.cache.request_fingerprint`.
    """
    return parse_wire(knob_env("REPRO_WIRE", "codec"))


class Shipment:
    """Owner of one batch's shared-memory segment (parent side)."""

    def __init__(self, shm=None) -> None:
        self.shm = shm

    def cleanup(self) -> None:
        if self.shm is None:
            return
        try:
            self.shm.close()
            self.shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        self.shm = None


#: parent-side per-object memos, keyed by identity (WeakKey) so an
#: 8-allocator sweep over one prepared module encodes each function
#: (and pickles each machine/allocator/options object) once, not once
#: per batch.
_ENCODE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MACHINE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_PICKLE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_STATS = {
    "batches_packed": 0,
    "jobs_packed": 0,
    "encodes": 0,
    "encode_memo_hits": 0,
    "blobs_shipped": 0,
    "bytes_shipped": 0,
    "shm_segments": 0,
    "inline_batches": 0,
}


def wire_stats() -> dict:
    """Parent-side dispatch counters (tests and the dispatch bench)."""
    return dict(_STATS)


def reset_wire_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def _encoded(func) -> tuple[str, bytes]:
    from repro.ir.codec import encode_function

    hit = _ENCODE_MEMO.get(func)
    if hit is not None:
        _STATS["encode_memo_hits"] += 1
        return hit
    _STATS["encodes"] += 1
    blob = encode_function(func)
    entry = (hashlib.sha256(blob).hexdigest(), blob)
    _ENCODE_MEMO[func] = entry
    return entry


def machine_content_digest(machine) -> str:
    """Digest of the machine's register model — the machine half of
    every content key, identical across wire modes and processes."""
    return _machine_entry(machine)[0]


def _machine_entry(machine) -> tuple[str, bytes]:
    from repro.reporting import canonical_json
    from repro.service.protocol import machine_descriptor

    hit = _MACHINE_MEMO.get(machine)
    if hit is not None:
        return hit
    descriptor = canonical_json(machine_descriptor(machine))
    digest = hashlib.sha256(descriptor.encode()).hexdigest()
    entry = (digest, pickle.dumps(machine, pickle.HIGHEST_PROTOCOL))
    _MACHINE_MEMO[machine] = entry
    return entry


def _pickled(obj) -> tuple[str, bytes]:
    """Digest + bytes of a read-only payload object (allocator/options)."""
    try:
        hit = _PICKLE_MEMO.get(obj)
    except TypeError:  # unhashable/unweakrefable: just pickle it
        hit = None
    if hit is not None:
        return hit
    blob = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    entry = (hashlib.sha256(blob).hexdigest(), blob)
    try:
        _PICKLE_MEMO[obj] = entry
    except TypeError:
        pass
    return entry


def _eligible(payloads) -> bool:
    from repro.ir.function import Function

    return bool(payloads) and all(
        isinstance(p, tuple) and len(p) == 4
        and isinstance(p[0], Function) for p in payloads
    )


def pack_batch(payloads) -> tuple[list, Shipment | None]:
    """Transform alloc-task payloads for the wire; identity in pickle
    mode or for payload shapes the codec path does not recognize.

    Returns the control payloads plus the :class:`Shipment` the caller
    must ``cleanup()`` after the batch fully resolves (retried jobs
    re-read the same segment).
    """
    mode = wire_mode()
    if mode == "pickle" or not _eligible(payloads):
        return list(payloads), None
    with phase("dispatch"):
        with phase("encode"):
            blobs: OrderedDict[str, bytes] = OrderedDict()
            refs = []
            for func, machine, allocator, options in payloads:
                func_digest, func_blob = _encoded(func)
                machine_digest, machine_blob = _machine_entry(machine)
                alloc_digest, alloc_blob = _pickled(allocator)
                options_digest, options_blob = _pickled(options)
                blobs.setdefault(func_digest, func_blob)
                blobs.setdefault(machine_digest, machine_blob)
                blobs.setdefault(alloc_digest, alloc_blob)
                blobs.setdefault(options_digest, options_blob)
                refs.append((func_digest, machine_digest, alloc_digest,
                             options_digest, func))
        with phase("shm"):
            shipment = _ship(blobs)
        inline = None if shipment.shm is not None else dict(blobs)
        shm_name = shipment.shm.name if shipment.shm is not None else None
        jobs = []
        for (func_digest, machine_digest, alloc_digest, options_digest,
             func) in refs:
            expect = None
            if mode == "validate":
                expect = pickle.dumps(func, pickle.HIGHEST_PROTOCOL)
            jobs.append((WIRE_TAG, shm_name, func_digest, machine_digest,
                         alloc_digest, options_digest, inline, expect))
    _STATS["batches_packed"] += 1
    _STATS["jobs_packed"] += len(jobs)
    _STATS["blobs_shipped"] += len(blobs)
    _STATS["bytes_shipped"] += sum(len(b) for b in blobs.values())
    return jobs, shipment


def _ship(blobs: "OrderedDict[str, bytes]") -> Shipment:
    """One segment holding the digest index plus every distinct blob;
    inline fallback when shared memory is unavailable."""
    index: dict[str, tuple[int, int]] = {}
    offset = 0
    for digest, blob in blobs.items():
        index[digest] = (offset, len(blob))
        offset += len(blob)
    index_blob = pickle.dumps(index, pickle.HIGHEST_PROTOCOL)
    base = _INDEX_LEN.size + len(index_blob)
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=base + offset)
    except (ImportError, OSError, PermissionError, ValueError):
        _STATS["inline_batches"] += 1
        return Shipment(None)
    shm.buf[:_INDEX_LEN.size] = _INDEX_LEN.pack(len(index_blob))
    shm.buf[_INDEX_LEN.size:base] = index_blob
    for digest, blob in blobs.items():
        start, length = index[digest]
        shm.buf[base + start:base + start + length] = blob
    _STATS["shm_segments"] += 1
    return Shipment(shm)


def is_wire_job(payload) -> bool:
    return (isinstance(payload, tuple) and len(payload) == 8
            and payload[0] == WIRE_TAG)


# -- worker side -------------------------------------------------------

#: segment name -> (SharedMemory, {digest: (offset, length)}, base).
#: The two most recent batches stay mapped; eviction just unmaps (the
#: parent owns unlinking).
_SEGMENTS: "OrderedDict[str, tuple]" = OrderedDict()
_SEGMENTS_MAX = 2
#: func digest -> pristine decoded Function (never handed out directly;
#: jobs get clones because allocation rewrites the function in place).
_DECODE_CACHE: "OrderedDict[str, object]" = OrderedDict()
_DECODE_CACHE_MAX = 64
#: digest -> unpickled read-only payload object (machine/allocator/
#: options, shared across jobs exactly like the serial path).
_OBJECT_CACHE: "OrderedDict[str, object]" = OrderedDict()
_OBJECT_CACHE_MAX = 64
_decode_hits = 0
_decode_misses = 0


def decode_cache_info() -> dict:
    """Hit/miss counters of *this process's* decode cache (tests)."""
    return {"entries": len(_DECODE_CACHE), "hits": _decode_hits,
            "misses": _decode_misses}


def clear_decode_cache() -> None:
    global _decode_hits, _decode_misses
    for shm, _index, _base in _SEGMENTS.values():
        try:
            shm.close()
        except OSError:  # pragma: no cover
            pass
    _SEGMENTS.clear()
    _DECODE_CACHE.clear()
    _OBJECT_CACHE.clear()
    _decode_hits = _decode_misses = 0


def _attach(name: str):
    """Attach to the parent's segment without resource tracking.

    The parent owns the segment; a worker must never let *its* resource
    tracker adopt it (a tracked attach unlinks the segment when the
    worker exits, or double-unregisters under fork's shared tracker).
    Python 3.13+ has ``track=False``; older versions get the register
    call suppressed for the duration of the attach (workers are
    single-threaded, so the swap cannot race).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _segment(name: str):
    entry = _SEGMENTS.get(name)
    if entry is not None:
        _SEGMENTS.move_to_end(name)
        return entry
    try:
        shm = _attach(name)
    except (OSError, ValueError) as err:
        raise CodecError(f"cannot attach dispatch segment {name}: "
                         f"{err}") from err
    try:
        (index_len,) = _INDEX_LEN.unpack_from(shm.buf, 0)
        base = _INDEX_LEN.size + index_len
        index = pickle.loads(bytes(shm.buf[_INDEX_LEN.size:base]))
        if not isinstance(index, dict):
            raise CodecError("dispatch segment index is not a mapping")
    except (struct.error, pickle.UnpicklingError, EOFError,
            ValueError) as err:
        shm.close()
        raise CodecError(f"corrupt dispatch segment index: "
                         f"{err}") from err
    except CodecError:
        shm.close()
        raise
    entry = (shm, index, base)
    _SEGMENTS[name] = entry
    while len(_SEGMENTS) > _SEGMENTS_MAX:
        _name, (old, _idx, _b) = _SEGMENTS.popitem(last=False)
        try:
            old.close()
        except OSError:  # pragma: no cover
            pass
    return entry


def _fetch(shm_name, digest: str, inline) -> bytes:
    if inline is not None:
        blob = inline.get(digest)
        if blob is None:
            raise CodecError(f"inline wire job is missing blob "
                             f"{digest[:16]}")
        return blob
    if shm_name is None:
        raise CodecError("wire job carries neither a shared-memory "
                         "segment nor inline blobs")
    shm, index, base = _segment(shm_name)
    ref = index.get(digest)
    if ref is None:
        raise CodecError(f"dispatch segment {shm_name} has no blob "
                         f"{digest[:16]}")
    offset, length = ref
    if base + offset + length > shm.size:
        raise CodecError(f"dispatch reference {ref} overruns the "
                         f"{shm.size}-byte segment")
    return bytes(shm.buf[base + offset:base + offset + length])


def _decoded_function(shm_name, digest: str, inline, expect):
    global _decode_hits, _decode_misses
    from repro.ir.clone import clone_function

    pristine = _DECODE_CACHE.get(digest)
    if pristine is not None and expect is None:
        _DECODE_CACHE.move_to_end(digest)
        _decode_hits += 1
        return clone_function(pristine)
    _decode_misses += 1
    from repro.ir.codec import decode_function

    with phase("dispatch"):
        with phase("decode"):
            decoded = decode_function(_fetch(shm_name, digest, inline))
    if expect is not None:
        from repro.ir.printer import print_function

        shipped = pickle.loads(expect)
        if print_function(decoded) != print_function(shipped):
            raise CodecError(
                f"wire validate: decoded function {decoded.name!r} "
                f"diverges from the pickled oracle "
                f"(digest {digest[:16]})")
    _DECODE_CACHE[digest] = decoded
    while len(_DECODE_CACHE) > _DECODE_CACHE_MAX:
        _DECODE_CACHE.popitem(last=False)
    return clone_function(decoded)


def _object_for(shm_name, digest: str, inline):
    obj = _OBJECT_CACHE.get(digest)
    if obj is None:
        obj = pickle.loads(_fetch(shm_name, digest, inline))
        _OBJECT_CACHE[digest] = obj
        while len(_OBJECT_CACHE) > _OBJECT_CACHE_MAX:
            _OBJECT_CACHE.popitem(last=False)
    else:
        _OBJECT_CACHE.move_to_end(digest)
    return obj


def resolve_job(payload):
    """A wire control tuple back into ``(func, machine, allocator,
    options)`` plus the content digests the round-0 cache keys on."""
    (_tag, shm_name, func_digest, machine_digest, alloc_digest,
     options_digest, inline, expect) = payload
    func = _decoded_function(shm_name, func_digest, inline, expect)
    machine = _object_for(shm_name, machine_digest, inline)
    allocator = _object_for(shm_name, alloc_digest, inline)
    options = _object_for(shm_name, options_digest, inline)
    return (func, machine, allocator, options,
            func_digest, machine_digest)
