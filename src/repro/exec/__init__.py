"""Persistent fault-tolerant execution backend.

``repro.exec`` is the single process-pool layer behind
``allocate_module(jobs=N)`` and the service scheduler: long-lived
workers with warm round-0 analysis caches, heartbeat health checks,
automatic respawn, bounded retry-with-backoff, and hard deadline kills
(:mod:`repro.exec.pool`), plus a deterministic fault-injection layer
(:mod:`repro.exec.faults`) used by the resilience tests and
``benchmarks/bench_worker_pool.py``.
"""

from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.pool import (
    DEFAULT_TASK,
    JobCrashError,
    JobDeadlineError,
    JobResult,
    WorkerPool,
    WorkerPoolError,
    WorkerPoolUnavailable,
    get_default_pool,
    shutdown_default_pool,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "WorkerPool",
    "JobResult",
    "WorkerPoolError",
    "WorkerPoolUnavailable",
    "JobCrashError",
    "JobDeadlineError",
    "get_default_pool",
    "shutdown_default_pool",
    "DEFAULT_TASK",
]
