"""Persistent fault-tolerant worker pool.

The execution backend behind ``allocate_module(jobs=N)`` and the
service scheduler.  Unlike a per-call ``ProcessPoolExecutor``, the pool
is long-lived: worker processes stay warm across batches (each keeps a
content-addressed round-0 analysis cache, see
:mod:`repro.exec.alloctask`), and the pool survives the worst-case
behavior the spill-everywhere complexity results promise — a crashed
worker, a wedged worker, a poisoned job:

* **isolation** — every worker has its own inbox/outbox queue pair, so
  a worker killed mid-write can only corrupt its *own* channel, which
  is discarded on respawn;
* **health** — workers stamp a shared heartbeat array on every loop
  tick; liveness is ``Process.is_alive`` plus heartbeat age for idle
  workers (a worker wedged outside any job is killed and respawned);
* **respawn** — a dead worker's slot is refilled (bounded by
  ``max_respawns``) and its in-flight job is retried elsewhere with
  exponential backoff, up to ``max_retries`` extra attempts;
* **deadline** — a job running past ``deadline_s`` gets its worker
  killed (SIGKILL — a wedged process ignores polite signals) and is
  retried; retries exhausted surface as a ``deadline``-kind failure the
  caller can degrade on, *without* stalling the rest of the batch;
* **determinism** — job payloads and results travel whole, attempts
  are replays of the same pure payload, and results are merged in
  submission order, so a batch that survives faults is byte-identical
  to a serial run.

Failure kinds a :class:`JobResult` can carry:

``ok``        the task returned a value.
``error``     the task raised; the exception propagates (deterministic
              — a retry would raise again).
``crash``     the worker died; retries exhausted (or no respawn budget
              left).  Callers fall back to running the job in-process.
``deadline``  the job ran past its deadline on every attempt.

Fault injection (:mod:`repro.exec.faults`) hooks into the worker loop
only, keyed by the pool-assigned job sequence number, so tests and the
resilience benchmark can script crashes deterministically.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import multiprocessing.connection
import os
import pickle
import queue
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field

from repro.config import KNOB_ENV_VARS, knob_env_snapshot
from repro.errors import ReproError
from repro.exec.faults import FaultPlan

__all__ = [
    "WorkerPool",
    "JobResult",
    "WorkerPoolError",
    "WorkerPoolUnavailable",
    "JobCrashError",
    "JobDeadlineError",
    "get_default_pool",
    "shutdown_default_pool",
    "DEFAULT_TASK",
]

#: Exit code of a fault-injected crash (visible in worker stats).
_CRASH_EXIT = 71

#: Upper bound on one idle wait of the batch drive loop (seconds).
#: Result arrival interrupts the wait (``connection.wait`` on the
#: outbox pipes), so the bound only caps how stale the police pass
#: (deadlines, heartbeats, corpse detection) can get.
_IDLE_WAIT_MAX = 0.005

#: The allocation task; resolved inside the worker on first use.
DEFAULT_TASK = "repro.exec.alloctask:run_alloc_job"

#: Result-neutral strategy knobs snapshotted from the parent at spawn
#: time and applied in the worker before any job runs, so a pool behaves
#: like the parent process regardless of multiprocessing start method.
#: All of these only pick *how* results are computed, never *what* —
#: a worker spawned before the parent changed one simply keeps the old
#: strategy until it is respawned, which cannot change any result.
#: The canonical list lives in :mod:`repro.config`.
STRATEGY_ENV_VARS = KNOB_ENV_VARS


def _strategy_env_snapshot() -> dict[str, str]:
    return knob_env_snapshot()


class WorkerPoolError(ReproError):
    """Base class for worker-pool failures."""


class WorkerPoolUnavailable(WorkerPoolError):
    """The pool could not start any worker (sandbox, no fork, ...)."""


class JobCrashError(WorkerPoolError):
    """A job's worker died on every allowed attempt."""


class JobDeadlineError(WorkerPoolError):
    """A job exceeded its deadline on every allowed attempt."""


def resolve_task(spec):
    """A task callable from either a callable or a ``"module:attr"``."""
    if callable(spec):
        return spec
    module, _, attr = spec.partition(":")
    if not module or not attr:
        raise ValueError(f"task spec must be 'module:attr', got {spec!r}")
    return getattr(importlib.import_module(module), attr)


def _worker_main(slot: int, inbox, outbox, beats, task_spec,
                 fault_plan: FaultPlan | None, heartbeat_s: float,
                 strategy_env: dict[str, str] | None = None) -> None:
    """Worker loop: heartbeat, pull a job, run it, push the result.

    Messages are pre-pickled here so a value the task produced that
    cannot cross the process boundary turns into an ``err`` message
    instead of silently wedging the queue's feeder thread.
    """
    if strategy_env:
        os.environ.update(strategy_env)
    task = resolve_task(task_spec)
    beats[slot] = time.time()
    while True:
        try:
            item = inbox.get(timeout=heartbeat_s)
        except queue.Empty:
            beats[slot] = time.time()
            continue
        except (EOFError, OSError):  # parent went away
            return
        if item is None:
            return
        seq, attempt, payload = item
        beats[slot] = time.time()
        fault = fault_plan.lookup(seq, attempt) if fault_plan else None
        if fault is not None and fault.kind == "crash":
            os._exit(_CRASH_EXIT)
        if fault is not None and fault.kind == "sleep":
            time.sleep(fault.sleep_s)
        try:
            if fault is not None and fault.kind == "error":
                raise RuntimeError(fault.message)
            message = ("ok", slot, seq, task(payload))
        except BaseException as err:  # the pool decides what propagates
            message = ("err", slot, seq, err)
        try:
            blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:
            blob = pickle.dumps(("err", slot, seq, RuntimeError(
                f"result of job {seq} could not cross the process "
                f"boundary: {type(err).__name__}: {err}")),
                protocol=pickle.HIGHEST_PROTOCOL)
        outbox.put(blob)
        beats[slot] = time.time()


@dataclass(eq=False)
class JobResult:
    """Outcome of one job, in submission order."""

    seq: int
    ok: bool
    value: object = None
    error: BaseException | None = None
    kind: str = "ok"  # ok | error | crash | deadline
    attempts: int = 1


@dataclass(eq=False)
class _Job:
    seq: int
    payload: object
    deadline_s: float | None = None
    attempts: int = 0  # failed attempts so far
    not_before: float = 0.0


@dataclass(eq=False)
class _Slot:
    """One worker seat; the process in it may be replaced on death."""

    index: int
    process: multiprocessing.Process | None = None
    inbox: object = None
    outbox: object = None
    job: _Job | None = None
    job_started: float = 0.0
    jobs_ok: int = 0
    jobs_err: int = 0
    deaths: int = 0
    retired: bool = False  # no respawn budget left for this seat


class WorkerPool:
    """``workers`` persistent processes executing one task function.

    The pool is lazy: processes spawn on :meth:`ensure_started` (or the
    first :meth:`run_batch`).  ``run_batch`` is thread-safe via one
    internal lock — batches from different threads serialize, which
    matches the scheduler's single-worker drain model.
    """

    def __init__(
        self,
        workers: int = 2,
        task=DEFAULT_TASK,
        fault_plan: FaultPlan | None = None,
        heartbeat_s: float = 0.2,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        max_respawns: int = 8,
        idle_kill_factor: float = 25.0,
        start_timeout_s: float = 10.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.task = task
        self.fault_plan = fault_plan
        self.heartbeat_s = heartbeat_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_respawns = max_respawns
        self.idle_kill_factor = idle_kill_factor
        self.start_timeout_s = start_timeout_s
        self._ctx = multiprocessing.get_context()
        self._slots = [_Slot(index=i) for i in range(workers)]
        self._beats = None
        self._lock = threading.Lock()
        self._seq = 0
        self._started = False
        self._closed = False
        self.counters = {
            "batches": 0,
            "jobs_submitted": 0,
            "jobs_ok": 0,
            "jobs_error": 0,
            "jobs_crashed": 0,
            "jobs_deadline": 0,
            "retries": 0,
            "crashes": 0,
            "deadline_kills": 0,
            "hung_kills": 0,
            "respawns": 0,
        }

    # -- lifecycle -----------------------------------------------------

    def ensure_started(self) -> None:
        """Spawn the workers; :class:`WorkerPoolUnavailable` if none come
        up within ``start_timeout_s``."""
        with self._lock:
            self._ensure_started_locked()

    def _ensure_started_locked(self) -> None:
        if self._closed:
            raise WorkerPoolUnavailable("pool has been shut down")
        if self._started:
            return
        try:
            self._beats = self._ctx.Array("d", [0.0] * self.workers)
            for slot in self._slots:
                self._spawn(slot, count_respawn=False)
        except (OSError, PermissionError, RuntimeError, ValueError) as err:
            self._teardown_locked()
            raise WorkerPoolUnavailable(
                f"cannot start worker processes: {err}") from err
        deadline = time.monotonic() + self.start_timeout_s
        while time.monotonic() < deadline:
            if any(self._beats[i] > 0.0 for i in range(self.workers)):
                self._started = True
                return
            if all(s.process is None or not s.process.is_alive()
                   for s in self._slots):
                break
            time.sleep(0.01)
        detail = self._startup_failure_detail()
        self._teardown_locked()
        raise WorkerPoolUnavailable(
            f"no worker became ready within {self.start_timeout_s}s "
            f"({detail})")

    def _startup_failure_detail(self) -> str:
        """Each slot's fate, gathered before teardown erases it.

        The serial-fallback warning in :mod:`repro.pipeline` carries
        this message verbatim, so "the pool didn't start" always names
        *why*: a worker that died at import/resolve time reports its
        exit code, one that hung reports the missing heartbeat.
        """
        states = []
        for slot in self._slots:
            proc = slot.process
            if proc is None:
                states.append(f"worker {slot.index} never spawned")
            elif proc.is_alive():
                states.append(f"worker {slot.index} alive but no "
                              f"heartbeat")
            else:
                states.append(f"worker {slot.index} exited with code "
                              f"{proc.exitcode}")
        return "; ".join(states) if states else "no worker slots"

    def _spawn(self, slot: _Slot, count_respawn: bool = True) -> None:
        slot.inbox = self._ctx.Queue()
        slot.outbox = self._ctx.Queue()
        self._beats[slot.index] = 0.0
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(slot.index, slot.inbox, slot.outbox, self._beats,
                  self.task, self.fault_plan, self.heartbeat_s,
                  _strategy_env_snapshot()),
            name=f"repro-worker-{slot.index}",
            daemon=True,
        )
        slot.process.start()
        slot.job = None
        if count_respawn:
            self.counters["respawns"] += 1

    def shutdown(self) -> None:
        """Stop every worker; idempotent."""
        with self._lock:
            self._teardown_locked()
            self._closed = True

    def _teardown_locked(self) -> None:
        for slot in self._slots:
            if slot.process is None:
                continue
            if slot.process.is_alive():
                try:
                    slot.inbox.put_nowait(None)
                except Exception:
                    pass
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=1.0)
            for q in (slot.inbox, slot.outbox):
                if q is not None:
                    q.cancel_join_thread()
                    q.close()
            slot.process = None
            slot.inbox = slot.outbox = None
            slot.job = None
        self._started = False

    def __enter__(self) -> "WorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- execution -----------------------------------------------------

    def run_batch(self, payloads, deadline_s: float | None = None
                  ) -> list[JobResult]:
        """Run every payload through the task; results in input order.

        ``deadline_s`` bounds each job's wall time per attempt (measured
        from dispatch).  The call always returns one :class:`JobResult`
        per payload — failures are *reported*, not raised, so the caller
        chooses between propagating, degrading, and serial fallback.
        """
        with self._lock:
            self._ensure_started_locked()
            self.counters["batches"] += 1
            shipment = None
            if self.task == DEFAULT_TASK:
                # Alloc-task payloads may travel digest-deduped through
                # shared memory (REPRO_WIRE); the segment belongs to
                # this batch — retries re-read it — and is released
                # only once every job resolved.
                from repro.exec import wire

                payloads, shipment = wire.pack_batch(payloads)
            try:
                return self._run_batch_locked(payloads, deadline_s)
            finally:
                if shipment is not None:
                    shipment.cleanup()

    def _run_batch_locked(self, payloads, deadline_s: float | None
                          ) -> list[JobResult]:
        jobs = []
        for payload in payloads:
            jobs.append(_Job(seq=self._seq, payload=payload,
                             deadline_s=deadline_s))
            self._seq += 1
        self.counters["jobs_submitted"] += len(jobs)
        results: dict[int, JobResult] = {}
        pending = deque(jobs)
        while len(results) < len(jobs):
            if not self._dispatchable() and not pending_in_flight(
                    self._slots):
                # Nobody alive to run anything and nothing running:
                # fail whatever is still pending.
                now = time.monotonic()
                still = [j for j in pending if j.seq not in results]
                if still and all(j.not_before <= now for j in still):
                    for job in still:
                        self._record_failure(results, job, "crash",
                                             "no live workers left")
                    pending.clear()
                    continue
            self._dispatch(pending, results)
            progressed = self._drain(results, pending)
            self._police(results, pending)
            if not progressed:
                self._await_results(_IDLE_WAIT_MAX)
        for job in jobs:
            res = results[job.seq]
            self.counters["jobs_" + ("ok" if res.ok else
                                     {"error": "error",
                                      "crash": "crashed",
                                      "deadline": "deadline"}[res.kind]
                                     )] += 1
        return [results[job.seq] for job in jobs]

    def _await_results(self, timeout: float) -> None:
        """Sleep until a worker writes a result (or ``timeout``).

        Short-job batches used to be quantized to a fixed polling
        sleep, which dominated batch wall time once payload
        serialization got cheap; waiting on the outbox pipes wakes the
        drive loop the moment a result lands.
        """
        readers = []
        for slot in self._slots:
            outbox = slot.outbox
            reader = getattr(outbox, "_reader", None)
            if reader is not None and not reader.closed:
                readers.append(reader)
        if not readers:
            time.sleep(timeout)
            return
        try:
            multiprocessing.connection.wait(readers, timeout=timeout)
        except OSError:
            # A pipe died mid-wait (worker killed); the police pass
            # handles the corpse.
            time.sleep(0.0005)

    def _dispatchable(self) -> bool:
        if any(s.process is not None and s.process.is_alive()
               for s in self._slots):
            return True
        return any(not s.retired for s in self._slots)

    def _dispatch(self, pending: deque, results: dict) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not pending:
                return
            if (slot.process is None or slot.job is not None
                    or not slot.process.is_alive()
                    or self._beats[slot.index] <= 0.0):
                continue
            job = _pop_eligible(pending, results, now)
            if job is None:
                return
            slot.job = job
            slot.job_started = now
            try:
                slot.inbox.put_nowait((job.seq, job.attempts, job.payload))
            except Exception:
                # Feeder already broken: treat as a dead worker; the
                # police pass will requeue the job.
                pass

    def _drain(self, results: dict, pending: deque) -> bool:
        got = False
        for slot in self._slots:
            if slot.outbox is None:
                continue
            while True:
                try:
                    blob = slot.outbox.get_nowait()
                    message = pickle.loads(blob)
                except queue.Empty:
                    break
                except Exception:
                    # Torn write from a killed worker; the channel is
                    # confined to this slot and replaced on respawn.
                    self.counters["crashes"] += 1
                    orphan = self._kill_slot(slot, None)
                    if orphan is not None:
                        self._retry_or_fail(results, pending, orphan,
                                            "crash")
                    break
                got = True
                self._handle(message, slot, results, pending)
        return got

    def _handle(self, message, slot: _Slot, results: dict,
                pending: deque) -> None:
        kind, _wid, seq, value = message
        if seq in results:
            return  # late result for a job that already resolved
        if slot.job is not None and slot.job.seq == seq:
            attempts = slot.job.attempts + 1
            slot.job = None
        else:
            # The job was requeued (e.g. we presumed this worker dead);
            # first result wins, cancel the pending retry.
            requeued = _remove_pending(pending, seq)
            attempts = (requeued.attempts + 1) if requeued else 1
            if requeued is None:
                return
        if kind == "ok":
            slot.jobs_ok += 1
            results[seq] = JobResult(seq=seq, ok=True, value=value,
                                     attempts=attempts)
        else:
            slot.jobs_err += 1
            results[seq] = JobResult(seq=seq, ok=False, error=value,
                                     kind="error", attempts=attempts)

    def _police(self, results: dict, pending: deque) -> None:
        now = time.monotonic()
        wall = time.time()
        for slot in self._slots:
            if slot.process is None:
                continue
            alive = slot.process.is_alive()
            if slot.job is not None:
                job = slot.job
                overdue = (job.deadline_s is not None
                           and now - slot.job_started > job.deadline_s)
                if overdue and alive:
                    self.counters["deadline_kills"] += 1
                    self._kill_slot(slot, None)
                    self._retry_or_fail(results, pending, job, "deadline")
                elif not alive:
                    # One last drain: the worker may have finished the
                    # job and exited (or been crash-injected *after*
                    # writing).  Only an unanswered job is a crash.
                    self._drain(results, pending)
                    if slot.job is not None and slot.job.seq not in results:
                        self.counters["crashes"] += 1
                        slot.deaths += 1
                        self._retry_or_fail(results, pending, slot.job,
                                            "crash")
                    slot.job = None
                    self._respawn_or_retire(slot)
            else:
                if not alive:
                    self.counters["crashes"] += 1
                    slot.deaths += 1
                    self._respawn_or_retire(slot)
                elif (self._beats[slot.index] > 0.0
                      and wall - self._beats[slot.index]
                      > self.idle_kill_factor * self.heartbeat_s):
                    # Idle but silent: wedged outside any job.
                    self.counters["hung_kills"] += 1
                    self._kill_slot(slot, None)
                    self._respawn_or_retire(slot)

    def _kill_slot(self, slot: _Slot, counter: str | None) -> "_Job | None":
        """SIGKILL the slot's process and refill the seat.

        Returns the job that was in flight (the caller decides whether
        it is retried or failed) — it is never silently dropped.
        """
        if counter:
            self.counters[counter] += 1
        slot.deaths += 1
        orphan = slot.job
        slot.job = None
        if slot.process is not None and slot.process.is_alive():
            slot.process.kill()
            slot.process.join(timeout=1.0)
        self._respawn_or_retire(slot)
        return orphan

    def _respawn_or_retire(self, slot: _Slot) -> None:
        for q in (slot.inbox, slot.outbox):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        slot.process = None
        slot.inbox = slot.outbox = None
        if self.counters["respawns"] >= self.max_respawns:
            slot.retired = True
            return
        try:
            self._spawn(slot)
        except Exception:
            slot.retired = True

    def _retry_or_fail(self, results: dict, pending: deque, job: _Job,
                       kind: str) -> None:
        job.attempts += 1
        if job.attempts > self.max_retries:
            self._record_failure(
                results, job, kind,
                f"after {job.attempts} attempts")
            return
        self.counters["retries"] += 1
        job.not_before = (time.monotonic()
                          + self.backoff_s * (2 ** (job.attempts - 1)))
        pending.append(job)

    def _record_failure(self, results: dict, job: _Job, kind: str,
                        detail: str) -> None:
        exc_cls = (JobDeadlineError if kind == "deadline"
                   else JobCrashError)
        what = ("exceeded its deadline of "
                f"{job.deadline_s}s" if kind == "deadline"
                else "lost its worker")
        results[job.seq] = JobResult(
            seq=job.seq, ok=False, kind=kind,
            attempts=max(job.attempts, 1),
            error=exc_cls(f"job {job.seq} {what} ({detail})"),
        )

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe pool + per-worker stats (service metrics wire form)."""
        now = time.time()
        per_worker = []
        for slot in self._slots:
            alive = slot.process is not None and slot.process.is_alive()
            beat = self._beats[slot.index] if self._beats is not None else 0.0
            per_worker.append({
                "slot": slot.index,
                "pid": slot.process.pid if slot.process else None,
                "alive": alive,
                "busy": slot.job is not None,
                "retired": slot.retired,
                "jobs_ok": slot.jobs_ok,
                "jobs_err": slot.jobs_err,
                "deaths": slot.deaths,
                "heartbeat_age_s": (round(now - beat, 3)
                                    if alive and beat > 0.0 else None),
            })
        return {
            "workers": self.workers,
            "alive": sum(1 for w in per_worker if w["alive"]),
            "started": self._started,
            "counters": dict(self.counters),
            "per_worker": per_worker,
        }


def pending_in_flight(slots) -> bool:
    return any(s.job is not None for s in slots)


def _pop_eligible(pending: deque, results: dict, now: float):
    for _ in range(len(pending)):
        job = pending.popleft()
        if job.seq in results:
            continue  # resolved while queued (late ok beat the retry)
        if job.not_before <= now:
            return job
        pending.append(job)
    return None


def _remove_pending(pending: deque, seq: int):
    for job in pending:
        if job.seq == seq:
            pending.remove(job)
            return job
    return None


# -- shared default pool ----------------------------------------------

_default_pool: WorkerPool | None = None
_default_lock = threading.Lock()


def get_default_pool(workers: int, **kwargs) -> WorkerPool:
    """The process-wide shared pool, (re)sized to ``workers``.

    Creating it can raise :class:`WorkerPoolUnavailable`; callers fall
    back to serial execution (``repro.pipeline`` warns and does so).
    """
    global _default_pool
    with _default_lock:
        if (_default_pool is not None
                and _default_pool.workers != workers):
            _default_pool.shutdown()
            _default_pool = None
        if _default_pool is None:
            pool = WorkerPool(workers=workers, **kwargs)
            pool.ensure_started()
            _default_pool = pool
        return _default_pool


def shutdown_default_pool() -> None:
    global _default_pool
    with _default_lock:
        if _default_pool is not None:
            try:
                _default_pool.shutdown()
            except Exception:  # pragma: no cover - atexit best effort
                pass
            _default_pool = None


atexit.register(shutdown_default_pool)
