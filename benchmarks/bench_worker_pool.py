"""Resilience benchmark: the worker pool under deterministic faults.

Every scenario allocates the same prepared module twice — once serially,
once through a :class:`repro.exec.WorkerPool` with a scripted
:class:`~repro.exec.FaultPlan` — and *asserts* the two runs are
byte-identical (rendered code, stats, cycle totals).  The report then
quantifies what the recovery cost: wall time vs the fault-free pooled
run, plus the pool's crash/retry/respawn/deadline-kill counters.

Scenarios:

* ``clean``         — pooled run, no faults (the overhead baseline);
* ``crash``         — one worker killed mid-batch, job retried;
* ``crash_storm``   — a third of the jobs each kill their worker once;
* ``deadline``      — one job sleeps past its deadline, is killed, and
  succeeds on the retry;
* ``service_crash`` — the ``serve --jobs N`` path: an in-process LDJSON
  server whose scheduler pool loses a worker; the response bytes must
  equal a fault-free server's.

Run the full bench or the CI smoke variant::

    PYTHONPATH=src python benchmarks/bench_worker_pool.py \
        --out BENCH_worker_pool.json
    PYTHONPATH=src python benchmarks/bench_worker_pool.py --smoke
"""

import argparse
import json
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import PreferenceDirectedAllocator
from repro.exec import FaultPlan, WorkerPool
from repro.pipeline import allocate_module, prepare_module
from repro.regalloc import AllocationOptions
from repro.service import (
    AllocationRequest,
    MachineSpec,
    ResultCache,
    Scheduler,
    ServerThread,
    ServiceClient,
)
from repro.service.scheduler import render_allocation
from repro.target.presets import make_machine
from repro.workloads import make_benchmark


def fingerprint(run) -> tuple:
    """Everything a fault could corrupt: code bytes, stats, cycles."""
    return (render_allocation(run).encode(),
            tuple(sorted(vars(run.stats).items(),
                         key=lambda kv: kv[0])),
            run.cycles.total)


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_pool_scenario(name, prepared, machine, jobs, fault_plan,
                      deadline_ms, want, repeats) -> dict:
    counters = None
    identical = True
    times = []
    for _ in range(repeats):
        options = AllocationOptions(jobs=jobs, deadline_ms=deadline_ms)
        with WorkerPool(workers=jobs, fault_plan=fault_plan,
                        start_timeout_s=60.0) as pool:
            run, wall = timed(lambda: allocate_module(
                prepared, machine, PreferenceDirectedAllocator(),
                options, pool=pool))
            counters = dict(pool.counters)
        identical = identical and fingerprint(run) == want
        times.append(wall)
    return {
        "scenario": name,
        "jobs": jobs,
        "deadline_ms": deadline_ms,
        "identical_to_serial": identical,
        "best_s": round(min(times), 4),
        "mean_s": round(sum(times) / len(times), 4),
        "pool": counters,
    }


def run_service_scenario(bench, regs, jobs) -> dict:
    """`serve --jobs N` with a mid-batch worker kill vs a clean server."""

    def collect(fault_plan):
        scheduler = Scheduler(cache=ResultCache(),
                              options=AllocationOptions(jobs=jobs),
                              fault_plan=fault_plan)
        thread = ServerThread(scheduler)
        host, port = thread.start()
        try:
            client = ServiceClient(host, port, timeout=300.0)
            request = AllocationRequest(id="resilience", bench=bench,
                                        machine=MachineSpec(regs=regs))
            response, wall = timed(lambda: client.allocate(request))
            snapshot = scheduler.pool.snapshot()
        finally:
            thread.stop()
        return response, wall, snapshot

    clean, clean_s, _ = collect(None)
    faulted, faulted_s, pool = collect(FaultPlan.crash_on(1))
    return {
        "scenario": "service_crash",
        "jobs": jobs,
        "identical_to_serial": (clean.ok and faulted.ok
                                and faulted.result_digest
                                == clean.result_digest
                                and faulted.code == clean.code),
        "clean_s": round(clean_s, 4),
        "faulted_s": round(faulted_s, 4),
        "pool": pool["counters"],
    }


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run(bench, regs, jobs, repeats) -> dict:
    machine = make_machine(regs)
    prepared = prepare_module(make_benchmark(bench), machine)
    n_funcs = len(prepared.functions)

    serial, serial_s = timed(lambda: allocate_module(
        prepared, machine, PreferenceDirectedAllocator()))
    want = fingerprint(serial)

    storm = FaultPlan.crash_on(*range(0, n_funcs, 3))
    scenarios = [
        ("clean", None, None),
        ("crash", FaultPlan.crash_on(1), None),
        ("crash_storm", storm, None),
        ("deadline", FaultPlan.sleep_on(0, 5.0), 500.0),
    ]
    report = {
        "bench": bench,
        "functions": n_funcs,
        "regs": regs,
        "jobs": jobs,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "serial_s": round(serial_s, 4),
        "scenarios": [],
    }
    for name, plan, deadline_ms in scenarios:
        entry = run_pool_scenario(name, prepared, machine, jobs, plan,
                                  deadline_ms, want, repeats)
        report["scenarios"].append(entry)
        print(f"{name:>14}: {entry['best_s']:.3f}s "
              f"(crashes {entry['pool']['crashes']}, "
              f"retries {entry['pool']['retries']}, "
              f"deadline kills {entry['pool']['deadline_kills']}) "
              f"identical={entry['identical_to_serial']}")
    entry = run_service_scenario(bench, regs, jobs)
    report["scenarios"].append(entry)
    print(f"{entry['scenario']:>14}: clean {entry['clean_s']:.3f}s, "
          f"faulted {entry['faulted_s']:.3f}s "
          f"identical={entry['identical_to_serial']}")
    report["all_identical"] = all(s["identical_to_serial"]
                                  for s in report["scenarios"])
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="db")
    parser.add_argument("--regs", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (2 workers, single repeat)")
    parser.add_argument("--out", default="BENCH_worker_pool.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.jobs, args.repeats = 2, 1
    report = run(args.bench, args.regs, args.jobs, args.repeats)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["all_identical"]:
        print("FAULT RECOVERY CHANGED RESULTS", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
