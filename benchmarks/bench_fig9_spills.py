"""Figure 9(b)/(d) — ratio of generated spill instructions.

The paper plots spill instructions relative to the Chaitin base at 16
and 32 registers.  Expected shape: the modern coalescers suppress spill
code substantially at 16 registers (the paper reports ~30% less than
Chaitin, with ours best at reducing spill cost), and at 32 registers
spills essentially vanish for everyone ("about 90% of the spill
instructions eliminated", float spills completely gone).
"""

from repro.ir.values import RegClass
from repro.reporting import format_ratio_table, geomean

from conftest import all_int_rows, emit, fp_rows, sweep

COLUMNS = ["chaitin", "briggs", "optimistic", "only-coalescing"]
FP_BENCHES = {"mpegaudio fp": "mpegaudio", "mtrt fp": "mtrt"}


def collect_spills(model: str):
    cells = {}
    for bench in all_int_rows():
        for alloc in COLUMNS:
            stats = sweep(bench, model, alloc).stats
            cells[(bench, alloc)] = float(
                stats.spills_class.get(RegClass.INT, 0)
            )
    for row, bench in FP_BENCHES.items():
        for alloc in COLUMNS:
            stats = sweep(bench, model, alloc).stats
            cells[(row, alloc)] = float(
                stats.spills_class.get(RegClass.FLOAT, 0)
            )
    return cells


def test_fig9b_spill_ratio_16(benchmark):
    benchmark.pedantic(
        lambda: sweep("compress", "16", "only-coalescing"),
        rounds=1, iterations=1,
    )
    rows = all_int_rows() + fp_rows()
    cells = collect_spills("16")
    table = format_ratio_table(
        "Figure 9(b): spill-instruction ratio vs Chaitin+aggressive, "
        "16 registers", rows, COLUMNS, cells, base_column="chaitin",
    )
    emit("fig9b", table)

    # Ours must not spill more than the base overall, and should be at
    # least as good as Briggs-style aggressive coalescing.
    spilling = [r for r in rows if cells.get((r, "chaitin"), 0) > 0]
    if spilling:
        ours = geomean([cells[(r, "only-coalescing")] /
                        cells[(r, "chaitin")] for r in spilling])
        briggs = geomean([cells[(r, "briggs")] / cells[(r, "chaitin")]
                          for r in spilling])
        assert ours <= 1.05
        assert ours <= briggs * 1.10


def test_fig9d_spill_ratio_32(benchmark):
    benchmark.pedantic(
        lambda: sweep("compress", "32", "only-coalescing"),
        rounds=1, iterations=1,
    )
    rows = all_int_rows() + fp_rows()
    cells = collect_spills("32")
    table = format_ratio_table(
        "Figure 9(d): spill-instruction ratio vs Chaitin+aggressive, "
        "32 registers", rows, COLUMNS, cells, base_column="chaitin",
    )
    emit("fig9d", table)

    # At 32 registers spills essentially disappear (paper: ~90% fewer
    # than at 16; float spills completely eliminated).
    total_32 = sum(cells[(r, "only-coalescing")] for r in rows)
    cells_16 = collect_spills("16")
    total_16 = sum(cells_16[(r, "only-coalescing")] for r in rows)
    if total_16 > 0:
        assert total_32 <= 0.35 * total_16
    for row in fp_rows():
        assert cells[(row, "only-coalescing")] == 0
