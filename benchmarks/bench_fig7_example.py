"""Figure 7 — the paper's worked example, end to end.

Regenerates Figure 7(g)/(h): on the three-register machine (r1 = arg0 and
return, r1/r2 volatile, r3 non-volatile) the preference-directed
allocator must produce exactly the paper's assignment — v0→r1, v1→r2,
v2→r3, v3→r1, v4→r3 — eliminating both copies and enabling the paired
load.  The timed body is the full allocation of the example.
"""

from repro.core import PreferenceDirectedAllocator
from repro.ir.clone import clone_function
from repro.ir.instructions import Load
from repro.ir.printer import print_function
from repro.regalloc import allocate_function
from repro.sim.cycles import estimate_cycles
from repro.target.lowering import lower_function
from repro.target.presets import figure7_machine
from repro.workloads.figures import figure7_function

from conftest import emit


def test_fig7_worked_example(benchmark):
    machine = figure7_machine()
    base = figure7_function()
    lower_function(base, machine)

    def work():
        func = clone_function(base)
        result = allocate_function(func, machine,
                                   PreferenceDirectedAllocator())
        return func, result

    func, result = benchmark(work)

    # --- the paper's outcomes ------------------------------------------
    stats = result.stats
    assert stats.moves_before == 3
    assert stats.moves_eliminated == 3          # Figure 7(h): no copies
    assert stats.spill_instructions == 0

    report = estimate_cycles(func, machine)
    assert report.paired_loads_fused == 1       # r2,r3 = [r1] coupled load

    loop = func.block("L1")
    loads = [i for i in loop.instrs if isinstance(i, Load)]
    assert (loads[0].dst.index, loads[1].dst.index) == (2, 3)
    add = next(i for i in loop.instrs if getattr(i, "op", None) == "add")
    assert add.dst.index == 3                   # v4 -> non-volatile r3

    emit("fig7", "\n".join([
        "Figure 7 worked example (K=3)",
        "=============================",
        print_function(func),
        "",
        f"moves eliminated : {stats.moves_eliminated}/{stats.moves_before}",
        f"spill instructions: {stats.spill_instructions}",
        f"paired loads fused: {report.paired_loads_fused}",
        f"cycle estimate    : {report.total:.0f}",
    ]))
