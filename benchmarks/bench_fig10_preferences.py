"""Figure 10 — the impact of honoring preferences (elapsed time).

The paper measures SPECjvm98 elapsed time under three algorithms —
"only coalescing", optimistic coalescing, and "full preferences" — at
16, 24, and 32 registers.  Our stand-in for elapsed time is the
appendix-model cycle estimate (see EXPERIMENTS.md).

Expected shape (Section 6.2): full preferences is clearly fastest; the
coalescing-only algorithms barely improve (and on call-heavy tests can
even degrade) with more registers because their volatile/non-volatile
selection is poor; compress and mpegaudio are the least call-sensitive
tests.
"""

from repro.reporting import format_table, geomean

from conftest import all_int_rows, emit, sweep

COLUMNS = ["only-coalescing", "optimistic", "full"]
CALL_HEAVY = ("jess", "db", "javac", "jack")


def collect_cycles(model: str):
    return {
        (bench, alloc): sweep(bench, model, alloc).cycles.total
        for bench in all_int_rows()
        for alloc in COLUMNS
    }


def _run(model: str, fig_name: str, benchmark):
    benchmark.pedantic(lambda: sweep("jess", model, "full"),
                       rounds=1, iterations=1)
    rows = all_int_rows()
    cells = collect_cycles(model)
    table = format_table(
        f"Figure 10 ({fig_name[-1]}): estimated cycles, {model} registers "
        f"(lower is better)",
        rows, COLUMNS, cells, fmt="{:.0f}",
    )
    emit(fig_name, table)
    return cells


def _full_wins(cells):
    rows = all_int_rows()
    for rival in ("only-coalescing", "optimistic"):
        ratio = geomean([cells[(r, "full")] / cells[(r, rival)]
                         for r in rows])
        assert ratio < 1.0, (
            f"full preferences not faster than {rival} "
            f"(geomean ratio {ratio:.3f})"
        )


def test_fig10a_16_registers(benchmark):
    _full_wins(_run("16", "fig10a", benchmark))


def test_fig10b_24_registers(benchmark):
    _full_wins(_run("24", "fig10b", benchmark))


def test_fig10c_32_registers(benchmark):
    cells = _run("32", "fig10c", benchmark)
    _full_wins(cells)


def test_fig10_call_heavy_tests_need_preferences(benchmark):
    """The paper's Section 6.2 diagnosis: on the call-frequent tests the
    coalescing-only algorithms stay far from full preferences even with
    more registers, because they exploit volatile/non-volatile registers
    poorly."""
    benchmark.pedantic(lambda: sweep("db", "32", "optimistic"),
                       rounds=1, iterations=1)
    lines = ["Figure 10 follow-up: optimistic/full cycle ratio by model"]
    for bench in CALL_HEAVY:
        for model in ("16", "24", "32"):
            full = sweep(bench, model, "full").cycles.total
            optimistic = sweep(bench, model, "optimistic").cycles.total
            lines.append(f"  {bench:8s} @{model}: {optimistic / full:.3f}")
            assert optimistic >= full * 1.02, (
                f"{bench}@{model}: preference-honoring advantage "
                f"disappeared"
            )
    emit("fig10_callheavy", "\n".join(lines))
