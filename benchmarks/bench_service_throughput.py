"""Closed-loop load generator for the allocation service and cluster.

Starts an in-process LDJSON TCP server, then drives it with ``--clients``
concurrent closed-loop clients (each submits its next request as soon as
the previous response lands) over a mixed request schedule: every
(benchmark, allocator) pair in the sweep, repeated round-robin, so later
laps exercise the content-addressed cache the way a warm production
server would.  The JSON report carries end-to-end client latency
percentiles (p50/p99, measured exactly from the recorded samples, not
histogram buckets), throughput, and the server's own cache/degradation
counters.

``--shards N [N ...]`` switches to the *cluster* bench: for each shard
count it brings up a full local topology (cache peer + shard
subprocesses + router), primes it with one untimed warmup pass over the
unique (bench, allocator, regs) grid, then drives the router closed-loop
with ``--laps`` timed repeats of the grid.  Only the steady-state window
is timed — the cold allocator compute is identical work at every shard
count, so the timed numbers isolate what the topology changes: router
forwarding, per-shard L1 capacity (``--shard-cache-size`` is
deliberately tiny, so a single shard thrashes over the full grid while
a cluster's aggregate L1 holds its digest-owned slices), and shared
peer-tier round trips.  ``shared_cache.hit_ratio`` (a delta over the
timed window plus the forced-hedge drill) measures the cross-shard tier
doing real work, and ``scaling_vs_single`` is each point's throughput
relative to the 1-shard run *within the same report*, which cancels
machine speed exactly like the allocator gates' chaitin normalization.

Run the full bench or the CI smoke variant::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --out BENCH_service_throughput.json
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --shards 1 3 --out BENCH_cluster_throughput.json
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.regalloc import AllocationOptions
from repro.service import (
    AllocationRequest,
    MachineSpec,
    ResultCache,
    Scheduler,
    ServerThread,
    ServiceClient,
    ServiceMetrics,
)

DEFAULT_BENCHES = ["db", "jack"]
DEFAULT_ALLOCATORS = ["chaitin", "briggs", "full"]


def percentile(samples: list, p: float) -> float:
    """Exact percentile (nearest-rank) of the recorded samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, round(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def build_schedule(benches, allocators, requests, regs) -> list:
    """``requests`` requests cycling the (bench, allocator) grid."""
    grid = [(b, a) for b in benches for a in allocators]
    schedule = []
    for i in range(requests):
        bench, allocator = grid[i % len(grid)]
        schedule.append(AllocationRequest(
            id=f"load-{i}",
            bench=bench,
            allocator=allocator,
            machine=MachineSpec(regs=regs),
        ))
    return schedule


def drive(host, port, schedule, clients):
    """Closed-loop clients draining one shared schedule; returns samples."""
    latencies = []
    errors = []
    lock = threading.Lock()
    cursor = iter(range(len(schedule)))

    def worker():
        client = ServiceClient(host, port, timeout=120.0)
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            start = time.perf_counter()
            response = client.allocate(schedule[i])
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                if not response.ok:
                    errors.append(response.error)

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, errors, time.perf_counter() - start


def run(benches, allocators, requests, clients, regs, jobs) -> dict:
    metrics = ServiceMetrics()
    scheduler = Scheduler(cache=ResultCache(max_entries=512),
                          metrics=metrics,
                          options=AllocationOptions(jobs=jobs),
                          max_queue=max(64, requests))
    server = ServerThread(scheduler)
    host, port = server.start()
    try:
        schedule = build_schedule(benches, allocators, requests, regs)
        latencies, errors, wall_s = drive(host, port, schedule, clients)
        stats = ServiceClient(host, port).stats()
    finally:
        server.stop()
    counters = stats["metrics"]["counters"]
    return {
        "benches": benches,
        "allocators": allocators,
        "requests": requests,
        "clients": clients,
        "regs": regs,
        "jobs": jobs,
        "python": sys.version.split()[0],
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else 0,
        "latency": {
            "mean_s": round(sum(latencies) / len(latencies), 6)
            if latencies else 0.0,
            "p50_s": round(percentile(latencies, 50), 6),
            "p99_s": round(percentile(latencies, 99), 6),
            "max_s": round(max(latencies), 6) if latencies else 0.0,
        },
        "cache_hit_ratio": stats["metrics"]["cache_hit_ratio"],
        "cache": stats.get("cache", {}),
        "degraded_total": counters["degraded_total"],
        "rejected_total": counters["rejected_total"],
        "errors": len(errors),
        "error_samples": errors[:5],
    }


def build_unique_grid(benches, allocators, regs_values) -> list:
    """One request per unique (bench, allocator, regs) combination."""
    return [
        AllocationRequest(
            id=f"warm-{i}",
            bench=bench,
            allocator=allocator,
            machine=MachineSpec(regs=regs),
        )
        for i, (bench, allocator, regs) in enumerate(
            (b, a, r) for b in benches for a in allocators
            for r in regs_values)
    ]


def build_cluster_schedule(grid, laps) -> list:
    """The steady-state drive: the unique grid, ``laps`` times over.

    Every request here is a repeat of an already-computed unique (the
    warmup pass primes the cluster), so the timed window measures the
    serving topology — router forwarding, shard L1 capacity, and the
    shared peer tier — not the allocator compute, which is identical
    work at every shard count.
    """
    schedule = []
    for lap in range(laps):
        for i, request in enumerate(grid):
            schedule.append(AllocationRequest(
                id=f"lap{lap}-{i}",
                bench=request.bench,
                allocator=request.allocator,
                machine=request.machine,
            ))
    return schedule


def hedge_drill(handles, schedule, requests=12) -> dict:
    """Forced-hedge pass over warm repeats: a second router with an
    immediate hedge deadline races every request against a fallback
    shard.  Run *after* the throughput drive so the racing is between
    cache hits — it measures who wins the race, not duplicated compute
    (on a starved runner an in-band hedge would poison the throughput
    numbers; the tests cover in-band hedging semantics)."""
    from repro.cluster import ClusterRouter, ClusterServerThread

    router = ClusterRouter(handles, hedge_s=0.0)
    thread = ClusterServerThread(router, "127.0.0.1", 0)
    errors = 0
    try:
        host, port = thread.start()
        client = ServiceClient(host, port, timeout=120.0)
        for request in schedule[:requests]:
            if not client.allocate(request).ok:
                errors += 1
    finally:
        thread.stop()
    counters = router.metrics.snapshot()["counters"]
    return {
        "requests": min(requests, len(schedule)),
        "started": counters["hedges_started"],
        "wins_primary": counters["hedge_wins_primary"],
        "wins_fallback": counters["hedge_wins_fallback"],
        "win_rate": round(
            counters["hedge_wins_fallback"] / counters["hedges_started"], 4)
        if counters["hedges_started"] else 0.0,
        "errors": errors,
    }


def run_cluster_point(grid, laps, clients, jobs, shards, hedge_ms,
                      shard_cache_size) -> dict:
    """One shard-count point: full local topology, driven closed-loop.

    Two phases.  The untimed *warmup* submits every unique request once
    (sequentially), priming each shard's L1 with its digest-owned slice
    and publishing every result to the peer tier — the cold allocator
    compute is the same work at every shard count, so timing it would
    only bury the topology differences in compute noise.  The timed
    *drive* then replays the grid ``--laps`` times with concurrent
    clients: pure steady-state serving, where shard count actually
    matters (aggregate L1 capacity vs peer-tier round trips).
    """
    from repro.cluster import (
        ClusterRouter,
        ClusterServerThread,
        ClusterSupervisor,
    )

    schedule = build_cluster_schedule(grid, laps)
    supervisor = ClusterSupervisor(shards=shards, jobs=jobs,
                                   cache_size=shard_cache_size,
                                   max_queue=max(64, len(schedule)),
                                   disk_dir=None)
    handles = supervisor.start()
    router = ClusterRouter(handles, supervisor=supervisor,
                           hedge_s=hedge_ms / 1000.0)
    thread = ClusterServerThread(router, "127.0.0.1", 0)
    try:
        host, port = thread.start()
        t0 = time.perf_counter()
        warm_client = ServiceClient(host, port, timeout=300.0)
        warm_errors = sum(
            0 if warm_client.allocate(request).ok else 1
            for request in grid)
        warmup_s = time.perf_counter() - t0
        # Shared-cache counters are reported as deltas over the timed
        # window (+ hedge drill) so the warmup's cold misses/puts don't
        # drown the steady-state signal.
        peer_before = supervisor.peer.snapshot()["counters"]
        latencies, errors, wall_s = drive(host, port, schedule, clients)
        router_counters = router.metrics.snapshot()["counters"]
        thread.stop()
        drill = hedge_drill(handles, grid)
        peer_after = supervisor.peer.snapshot()["counters"]
    finally:
        thread.stop()
        supervisor.stop()
    peer = {key: value - peer_before.get(key, 0)
            for key, value in peer_after.items()}
    gets = peer["gets"]
    return {
        "shards": shards,
        "requests": len(schedule),
        "clients": clients,
        "warmup": {
            "requests": len(grid),
            "wall_s": round(warmup_s, 4),
            "errors": warm_errors,
        },
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else 0,
        "latency": {
            "mean_s": round(sum(latencies) / len(latencies), 6)
            if latencies else 0.0,
            "p50_s": round(percentile(latencies, 50), 6),
            "p99_s": round(percentile(latencies, 99), 6),
            "max_s": round(max(latencies), 6) if latencies else 0.0,
        },
        "shared_cache": {
            "gets": gets,
            "hits": peer["get_hits"],
            "hit_ratio": round(peer["get_hits"] / gets, 4) if gets else 0.0,
            "puts": peer["puts"],
        },
        "hedge": {
            "started": router_counters["hedges_started"],
            "wins_primary": router_counters["hedge_wins_primary"],
            "wins_fallback": router_counters["hedge_wins_fallback"],
            "win_rate": round(
                router_counters["hedge_wins_fallback"]
                / router_counters["hedges_started"], 4)
            if router_counters["hedges_started"] else 0.0,
        },
        "hedge_drill": drill,
        "reroutes": router_counters["reroutes_total"],
        "degraded_total": router_counters["degraded_total"],
        "rejected_total": router_counters["rejected_total"],
        "errors": len(errors),
        "error_samples": errors[:5],
    }


def run_cluster(benches, allocators, regs_values, laps, clients, jobs,
                shard_counts, hedge_ms, shard_cache_size) -> dict:
    points = []
    for shards in shard_counts:
        grid = build_unique_grid(benches, allocators, regs_values)
        point = run_cluster_point(grid, laps, clients, jobs, shards,
                                  hedge_ms, shard_cache_size)
        points.append(point)
        print(f"  {shards} shard(s): {point['throughput_rps']} req/s, "
              f"p50 {point['latency']['p50_s'] * 1e3:.1f}ms, "
              f"p99 {point['latency']['p99_s'] * 1e3:.1f}ms, "
              f"shared-cache hit ratio "
              f"{point['shared_cache']['hit_ratio']:.2f}, "
              f"hedge drill {point['hedge_drill']['started']} started "
              f"(win rate {point['hedge_drill']['win_rate']:.2f}), "
              f"errors {point['errors']}")
    single = next((p for p in points if p["shards"] == 1), None)
    for point in points:
        point["scaling_vs_single"] = (
            round(point["throughput_rps"] / single["throughput_rps"], 4)
            if single and single["throughput_rps"] else None)
    return {
        "kind": "cluster_throughput",
        "benches": benches,
        "allocators": allocators,
        "regs_values": regs_values,
        "laps": laps,
        "clients": clients,
        "jobs": jobs,
        "hedge_ms": hedge_ms,
        "shard_cache_size": shard_cache_size,
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "points": points,
    }


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benches", nargs="*", default=DEFAULT_BENCHES)
    parser.add_argument("--allocators", nargs="*",
                        default=DEFAULT_ALLOCATORS)
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--regs", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (24 requests, 2 clients)")
    parser.add_argument("--out", default=None,
                        help="report path (defaults per mode)")
    parser.add_argument("--shards", nargs="*", type=int, default=None,
                        metavar="N",
                        help="cluster mode: shard counts to sweep "
                             "(e.g. --shards 1 3)")
    parser.add_argument("--laps", type=int, default=25,
                        help="cluster mode: timed repeats of the unique "
                             "grid after the untimed warmup pass")
    parser.add_argument("--regs-values", nargs="*", type=int,
                        default=[12, 16, 20],
                        help="cluster mode: register-count axis of the "
                             "unique-request grid")
    parser.add_argument("--hedge-ms", type=float, default=5000.0,
                        help="cluster mode: router hedge deadline during "
                             "the throughput drive (high by default — on "
                             "a starved runner in-band hedges duplicate "
                             "compute and poison the scaling numbers; "
                             "the forced-hedge drill measures hedging "
                             "separately)")
    parser.add_argument("--shard-cache-size", type=int, default=6,
                        help="cluster mode: per-shard L1 entries (small, "
                             "so one shard's L1 thrashes over the full "
                             "grid while a cluster's aggregate L1 holds "
                             "its digest-owned slice)")
    args = parser.parse_args(argv)

    if args.shards is not None:
        if not args.shards:
            parser.error("--shards needs at least one count")
        if args.smoke:
            args.clients = 2
            args.regs_values = args.regs_values[:2]
        out = args.out or "BENCH_cluster_throughput.json"
        report = run_cluster(args.benches, args.allocators,
                             args.regs_values, args.laps, args.clients,
                             args.jobs, args.shards, args.hedge_ms,
                             args.shard_cache_size)
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
        return 1 if any(p["errors"] for p in report["points"]) else 0

    if args.smoke:
        args.requests, args.clients = 24, 2
    args.out = args.out or "BENCH_service_throughput.json"
    report = run(args.benches, args.allocators, args.requests,
                 args.clients, args.regs, args.jobs)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"{report['requests']} requests, {report['clients']} clients: "
          f"{report['throughput_rps']} req/s, "
          f"p50 {report['latency']['p50_s'] * 1e3:.1f}ms, "
          f"p99 {report['latency']['p99_s'] * 1e3:.1f}ms, "
          f"cache hit ratio {report['cache_hit_ratio']:.2f}, "
          f"errors {report['errors']}")
    print(f"wrote {args.out}")
    return 1 if report["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
