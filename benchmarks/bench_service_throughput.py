"""Closed-loop load generator for the allocation service.

Starts an in-process LDJSON TCP server, then drives it with ``--clients``
concurrent closed-loop clients (each submits its next request as soon as
the previous response lands) over a mixed request schedule: every
(benchmark, allocator) pair in the sweep, repeated round-robin, so later
laps exercise the content-addressed cache the way a warm production
server would.  The JSON report carries end-to-end client latency
percentiles (p50/p99, measured exactly from the recorded samples, not
histogram buckets), throughput, and the server's own cache/degradation
counters.

Run the full bench or the CI smoke variant::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --out BENCH_service_throughput.json
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
"""

import argparse
import json
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.regalloc import AllocationOptions
from repro.service import (
    AllocationRequest,
    MachineSpec,
    ResultCache,
    Scheduler,
    ServerThread,
    ServiceClient,
    ServiceMetrics,
)

DEFAULT_BENCHES = ["db", "jack"]
DEFAULT_ALLOCATORS = ["chaitin", "briggs", "full"]


def percentile(samples: list, p: float) -> float:
    """Exact percentile (nearest-rank) of the recorded samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, round(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def build_schedule(benches, allocators, requests, regs) -> list:
    """``requests`` requests cycling the (bench, allocator) grid."""
    grid = [(b, a) for b in benches for a in allocators]
    schedule = []
    for i in range(requests):
        bench, allocator = grid[i % len(grid)]
        schedule.append(AllocationRequest(
            id=f"load-{i}",
            bench=bench,
            allocator=allocator,
            machine=MachineSpec(regs=regs),
        ))
    return schedule


def drive(host, port, schedule, clients):
    """Closed-loop clients draining one shared schedule; returns samples."""
    latencies = []
    errors = []
    lock = threading.Lock()
    cursor = iter(range(len(schedule)))

    def worker():
        client = ServiceClient(host, port, timeout=120.0)
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            start = time.perf_counter()
            response = client.allocate(schedule[i])
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                if not response.ok:
                    errors.append(response.error)

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, errors, time.perf_counter() - start


def run(benches, allocators, requests, clients, regs, jobs) -> dict:
    metrics = ServiceMetrics()
    scheduler = Scheduler(cache=ResultCache(max_entries=512),
                          metrics=metrics,
                          options=AllocationOptions(jobs=jobs),
                          max_queue=max(64, requests))
    server = ServerThread(scheduler)
    host, port = server.start()
    try:
        schedule = build_schedule(benches, allocators, requests, regs)
        latencies, errors, wall_s = drive(host, port, schedule, clients)
        stats = ServiceClient(host, port).stats()
    finally:
        server.stop()
    counters = stats["metrics"]["counters"]
    return {
        "benches": benches,
        "allocators": allocators,
        "requests": requests,
        "clients": clients,
        "regs": regs,
        "jobs": jobs,
        "python": sys.version.split()[0],
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else 0,
        "latency": {
            "mean_s": round(sum(latencies) / len(latencies), 6)
            if latencies else 0.0,
            "p50_s": round(percentile(latencies, 50), 6),
            "p99_s": round(percentile(latencies, 99), 6),
            "max_s": round(max(latencies), 6) if latencies else 0.0,
        },
        "cache_hit_ratio": stats["metrics"]["cache_hit_ratio"],
        "cache": stats.get("cache", {}),
        "degraded_total": counters["degraded_total"],
        "rejected_total": counters["rejected_total"],
        "errors": len(errors),
        "error_samples": errors[:5],
    }


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benches", nargs="*", default=DEFAULT_BENCHES)
    parser.add_argument("--allocators", nargs="*",
                        default=DEFAULT_ALLOCATORS)
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--regs", type=int, default=16)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (24 requests, 2 clients)")
    parser.add_argument("--out", default="BENCH_service_throughput.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.clients = 24, 2
    report = run(args.benches, args.allocators, args.requests,
                 args.clients, args.regs, args.jobs)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"{report['requests']} requests, {report['clients']} clients: "
          f"{report['throughput_rps']} req/s, "
          f"p50 {report['latency']['p50_s'] * 1e3:.1f}ms, "
          f"p99 {report['latency']['p99_s'] * 1e3:.1f}ms, "
          f"cache hit ratio {report['cache_hit_ratio']:.2f}, "
          f"errors {report['errors']}")
    print(f"wrote {args.out}")
    return 1 if report["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
