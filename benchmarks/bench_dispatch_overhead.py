"""Dispatch overhead: digest-deduped codec wire vs per-job pickle.

Models the dispatch-bound regime the codec wire path
(:mod:`repro.exec.wire`) exists for: a module of many *small* functions
swept by several allocators through the worker pool, where
serialization — not coloring — is the marginal cost.  Per sweep the
bench times

* the **serial** path — :func:`repro.pipeline.allocate_module` with no
  pool, the single-process floor,
* the **pool/pickle** path — the historical wire: one
  ``(func, machine, allocator, options)`` pickle per job, and
* the **pool/codec** path — control tuples of content digests, with
  the codec blobs plus the pickled machine/allocator/options shipped
  once per batch through one shared-memory segment,

and reports each path's best sweep time, the headline ``speedup``
(pool/pickle over pool/codec — both sides share a run and a machine,
so runner speed divides out), the wire counters (blobs deduped, bytes
shipped, segments), and an in-process microprofile of the new
``dispatch/encode``, ``dispatch/shm``, and ``dispatch/decode`` phases.

The workload leans small on purpose: two-statement straight-line
functions over a wide (64-register) machine, so each job's pickle
cost — function, machine and options serialized per job — rivals its
coloring cost.  The function count stays under the worker-side decode
and round-0 LRU bounds (64) so warm sweeps measure the caches, not
their evictions.

Exactness is asserted, not sampled: the concatenated
``print_function`` digest of every sweep result must be byte-identical
across serial and all three ``REPRO_WIRE`` modes (``pickle``,
``codec``, and ``validate`` — the mode that re-checks every decoded
function against a pickled oracle in the worker) before the report is
written; any divergence fails the run.

Run as a script to emit the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_dispatch_overhead.py \
        --workers 2 --repeats 5 --out BENCH_dispatch_overhead.json

``check_perf_regression.py --dispatch`` gates the committed report:
the speedup floor is absolute (both wire modes share a run, so the
figure is runner-independent).
"""

import argparse
import hashlib
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.config import runtime_knobs
from repro.exec import wire
from repro.exec.alloctask import run_alloc_job
from repro.exec.pool import WorkerPool
from repro.ir.printer import print_function
from repro.pipeline import allocate_module, prepare_module
from repro.profiling import profiled
from repro.regalloc import AllocationOptions
from repro.service.schema import dataflow_backend_fields
from repro.service.scheduler import ALLOCATOR_FACTORIES
from repro.target.presets import make_machine
from repro.workloads import BenchmarkProfile, generate_module

#: pool-pickle over pool-codec speedup floor the committed report (and
#: the CI gate) must hold on the small-function-heavy workload
SPEEDUP_FLOOR = 1.5

#: the sweep: cheap Chaitin-family allocators, so dispatch stays the
#: marginal cost (the dedup story needs >1 batch over the same module)
SWEEP = ("chaitin", "briggs")


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def small_function_module(n_functions: int, seed: int):
    """Many tiny straight-line functions: dispatch-bound by design."""
    profile = BenchmarkProfile(
        name="dispatch", n_functions=n_functions, stmts=2, int_pool=6,
        call_prob=0.15, branch_prob=0.05, loop_prob=0.0,
        max_loop_depth=0, copy_prob=0.10, paired_prob=0.08,
        load_prob=0.12, store_prob=0.04)
    return generate_module(profile, seed=seed)


def sweep_digest(allocations) -> str:
    """One digest over every function of every sweep result, in order."""
    acc = hashlib.sha256()
    for alloc in allocations:
        for result in alloc.results:
            acc.update(print_function(result.func).encode())
    return acc.hexdigest()


def run_sweep(module, machine, options, pool):
    return [
        allocate_module(module, machine,
                        allocator=ALLOCATOR_FACTORIES[name](),
                        options=options, pool=pool)
        for name in SWEEP
    ]


def time_pool_mode(mode, module, machine, options, workers, repeats):
    """Best warm sweep time through a fresh pool in one wire mode."""
    os.environ["REPRO_WIRE"] = mode
    wire.reset_wire_stats()
    pool = WorkerPool(workers=workers)
    try:
        digest = sweep_digest(run_sweep(module, machine, options, pool))
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            allocations = run_sweep(module, machine, options, pool)
            best = min(best, time.perf_counter() - start)
            assert sweep_digest(allocations) == digest, \
                f"pool/{mode} sweep digest unstable across repeats"
        return best, digest, wire.wire_stats()
    finally:
        pool.shutdown()


def dispatch_microprofile(module, machine, options) -> dict:
    """In-process pack+resolve of one batch, under the profiler, so the
    report carries the ``dispatch/encode``/``shm``/``decode`` phase
    split (in a real pool run the decode halves live in the workers)."""
    os.environ["REPRO_WIRE"] = "codec"
    prepared = prepare_module(module, machine)
    allocator = ALLOCATOR_FACTORIES[SWEEP[0]]()
    payloads = [(func, machine, allocator, options)
                for func in prepared.functions]
    wire.clear_decode_cache()
    with profiled() as prof:
        jobs, shipment = wire.pack_batch(payloads)
        try:
            for job in jobs:
                run_alloc_job(job)
        finally:
            shipment.cleanup()
    wire.clear_decode_cache()
    return {path: stats for path, stats in prof.snapshot(digits=4).items()
            if path.startswith("dispatch")}


def run(n_functions: int, regs: int, workers: int, repeats: int,
        seed: int) -> dict:
    module = small_function_module(n_functions, seed)
    machine = make_machine(regs)
    options = AllocationOptions(verify=False, jobs=workers)
    # jobs=1 keeps the baseline truly in-process: allocate_module
    # reaches for the shared default pool whenever jobs > 1.
    serial_options = AllocationOptions(verify=False, jobs=1)
    n_instrs = sum(len(b.instrs) for f in module.functions
                   for b in f.blocks)

    serial_best = float("inf")
    serial_digest = None
    for _ in range(repeats):
        start = time.perf_counter()
        allocations = run_sweep(module, machine, serial_options, None)
        serial_best = min(serial_best, time.perf_counter() - start)
        serial_digest = sweep_digest(allocations)

    pickle_best, pickle_digest, _ = time_pool_mode(
        "pickle", module, machine, options, workers, repeats)
    codec_best, codec_digest, codec_stats = time_pool_mode(
        "codec", module, machine, options, workers, repeats)
    # validate is the exactness mode, not a timed contender: one sweep
    # that makes every worker re-check decode against the pickle oracle.
    _, validate_digest, _ = time_pool_mode(
        "validate", module, machine, options, workers, 1)

    digests = {"serial": serial_digest, "pickle": pickle_digest,
               "codec": codec_digest, "validate": validate_digest}
    assert len(set(digests.values())) == 1, \
        f"result digests diverge across wire modes: {digests}"

    phases = dispatch_microprofile(module, machine, options)
    os.environ["REPRO_WIRE"] = "codec"

    jobs_packed = max(1, codec_stats["jobs_packed"])
    return {
        "kind": "dispatch_overhead",
        "workload": {
            "n_functions": n_functions,
            "stmts": 2,
            "instructions": n_instrs,
            "seed": seed,
        },
        "regs": regs,
        "workers": workers,
        "repeats": repeats,
        "sweep": list(SWEEP),
        "python": sys.version.split()[0],
        **dataflow_backend_fields(),
        "knobs": runtime_knobs(),
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "serial": {"best_s": round(serial_best, 4)},
        "pool_pickle": {"best_s": round(pickle_best, 4)},
        "pool_codec": {
            "best_s": round(codec_best, 4),
            "wire": {
                "batches_packed": codec_stats["batches_packed"],
                "jobs_packed": codec_stats["jobs_packed"],
                "encodes": codec_stats["encodes"],
                "encode_memo_hits": codec_stats["encode_memo_hits"],
                "blobs_shipped": codec_stats["blobs_shipped"],
                "bytes_shipped": codec_stats["bytes_shipped"],
                "shm_segments": codec_stats["shm_segments"],
                "inline_batches": codec_stats["inline_batches"],
                "bytes_per_job": round(
                    codec_stats["bytes_shipped"] / jobs_packed, 1),
            },
        },
        "speedup": round(pickle_best / codec_best, 2),
        "digest": serial_digest,
        "digests_identical": True,  # asserted above
        "dispatch_phases": phases,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--functions", type=int, default=56,
                        help="tiny functions per module (keep under the "
                             "64-entry worker cache bounds)")
    parser.add_argument("--regs", type=int, default=64,
                        help="register count (wide: per-job machine "
                             "pickling is part of the measured waste)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_dispatch_overhead.json")
    args = parser.parse_args(argv)
    if args.functions < 1 or args.repeats < 1 or args.workers < 1:
        parser.error("--functions, --workers and --repeats must be >= 1")
    report = run(args.functions, args.regs, args.workers, args.repeats,
                 args.seed)
    wire_stats = report["pool_codec"]["wire"]
    print(f"dispatch sweep ({report['workload']['n_functions']} funcs x "
          f"{len(report['sweep'])} allocators): "
          f"serial {report['serial']['best_s']}s, "
          f"pool/pickle {report['pool_pickle']['best_s']}s, "
          f"pool/codec {report['pool_codec']['best_s']}s "
          f"-> {report['speedup']}x "
          f"({wire_stats['blobs_shipped']} blobs / "
          f"{wire_stats['jobs_packed']} jobs, "
          f"{wire_stats['bytes_per_job']} B/job)")
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if report["speedup"] < SPEEDUP_FLOOR:
        print(f"WARNING: speedup {report['speedup']} below the "
              f"{SPEEDUP_FLOOR}x floor", file=sys.stderr)


if __name__ == "__main__":
    main()
