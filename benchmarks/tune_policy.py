"""Offline policy tuner: search the heuristic space for a better Policy.

The paper fixes its heuristic constants once and for all; PR 9 factored
them into :class:`repro.policy.Policy` so they can be *searched*.  This
harness runs seeded random search plus greedy one-axis local search
over the workload generator's families, scoring each candidate on the
``full`` (preference-directed) allocator's *simulated* cycle totals —
deterministic, so every number in the report is byte-reproducible from
the seed.  Candidates allocate through the ordinary
``allocate_module`` path (``--jobs`` fans evaluation out over the
existing worker pool) with verification on: a policy that produces an
invalid allocation is discarded, not shipped.

A candidate *wins* only under the no-regression rule: cycles at most
the default policy's on **every** family and strictly better on at
least one.  The best winner ships as a committed preset
(``repro/policies/tuned_v1.json``, selectable via ``--policy
tuned_v1``); the report (``BENCH_policy_tuning.json``, schema type
``policy_tuning``) carries per-family default/tuned measurements and
deltas for the CI gate (``check_perf_regression.py --policy``).

Run modes::

    # full search (the committed report's provenance):
    PYTHONPATH=src python benchmarks/tune_policy.py \
        --seed 0 --budget 40 --local 12 \
        --out BENCH_policy_tuning.json \
        --emit-preset src/repro/policies/tuned_v1.json

    # CI smoke: re-measure a committed preset, no search:
    PYTHONPATH=src python benchmarks/tune_policy.py \
        --evaluate tuned_v1 --out /tmp/policy_tuning_fresh.json
"""

import argparse
import json
import random
import socket
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.config import runtime_knobs
from repro.core import PreferenceDirectedAllocator
from repro.errors import ReproError
from repro.pipeline import allocate_module, prepare_module
from repro.policy import DEFAULT_POLICY, Policy, load_policy
from repro.regalloc import AllocationOptions
from repro.service.schema import (
    dataflow_backend_fields,
    policy_tuning_payload,
)
from repro.target.presets import make_machine
from repro.workloads import make_benchmark
from repro.workloads.generator import generate_module
from repro.workloads.profiles import BenchmarkProfile

#: High-call-density family: jess-shaped control flow with the call
#: probability pushed far past any SPEC profile, so the save/restore vs
#: callee-save trade-off (save_restore_cost / callee_save_cost)
#: actually moves the needle.
CALL_DENSE_PROFILE = BenchmarkProfile(
    name="calldense", n_functions=12, stmts=16,
    int_pool=14, float_pool=0,
    call_prob=0.34, branch_prob=0.14, loop_prob=0.10, max_loop_depth=1,
    copy_prob=0.08, paired_prob=0.10, byte_prob=0.0,
    load_prob=0.14, store_prob=0.05,
)

#: registers per class for every family: tight enough that all three
#: workloads actually spill (the knobs are spill heuristics).
FAMILY_REGS = 12


def family_modules(seed: int) -> dict:
    """The tuning families: name -> (module, machine)."""
    machine = make_machine(FAMILY_REGS)
    return {
        "spillstress": (make_benchmark("spillstress", seed=seed), machine),
        "jess": (make_benchmark("jess", seed=seed), machine),
        "calldense": (generate_module(CALL_DENSE_PROFILE, seed=seed),
                      machine),
    }


def measure(prepared, machine, policy: Policy, jobs: int) -> dict:
    """One family's result fingerprint under ``policy`` (verified)."""
    options = AllocationOptions(jobs=jobs, policy=policy)
    run = allocate_module(prepared, machine, PreferenceDirectedAllocator(),
                          options)
    stats = run.stats
    pref_total = stats.moves_before_weighted
    return {
        "cycles": run.cycles.total,
        "spill_instructions": stats.spill_loads + stats.spill_stores,
        "spilled_webs": stats.spilled_webs,
        "moves_eliminated": stats.moves_eliminated,
        "moves_before": stats.moves_before,
        "preference_satisfaction": round(
            stats.moves_eliminated_weighted / pref_total, 6
        ) if pref_total else 1.0,
        "rounds": stats.rounds,
    }


def evaluate(policy: Policy, families: dict, jobs: int) -> dict | None:
    """Every family's measurement, or None if any allocation fails.

    Verification runs inside ``measure``; a policy steering the
    allocator into an invalid or infeasible allocation is rejected
    here rather than surfacing downstream.
    """
    out = {}
    for name, (prepared, machine) in families.items():
        try:
            out[name] = measure(prepared, machine, policy, jobs)
        except ReproError:
            return None
    return out


def dominates(candidate: dict, default: dict) -> bool:
    """No family regresses on cycles and at least one strictly improves."""
    improved = False
    for name, base in default.items():
        got = candidate[name]["cycles"]
        if got > base["cycles"]:
            return False
        if got < base["cycles"]:
            improved = True
    return improved


def total_cycles(measured: dict) -> float:
    return sum(entry["cycles"] for entry in measured.values())


#: The searched axes.  Values are chosen to stay well inside Policy's
#: validation envelope; the default of every axis is listed so local
#: search can step back toward it.
AXES = {
    "save_restore_cost": (2, 3, 4, 5),
    "callee_save_cost": (1, 2, 3, 4),
    "spill_load_cost": (1, 2, 3, 4),
    "spill_store_cost": (1, 2, 3),
    "loop_depth_exponent": (0.8, 0.9, 1.0, 1.1, 1.25),
    "spill_cost_exponent": (0.75, 0.9, 1.0, 1.1, 1.25),
    "spill_degree_exponent": (0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
    "spill_tie_break": (("id", "name"), ("name", "id")),
    "select_differential_weight": (0.5, 1.0, 2.0, 4.0),
    "select_spill_cost_weight": (0.25, 0.5, 1.0, 2.0),
    "select_id_weight": (0.5, 1.0, 2.0),
}


def random_candidate(rng: random.Random) -> Policy:
    """An independent draw over every axis."""
    return Policy(**{name: rng.choice(values)
                     for name, values in AXES.items()})


def neighbors(policy: Policy, rng: random.Random, count: int) -> list:
    """``count`` single-axis mutations of ``policy``."""
    out = []
    axes = list(AXES.items())
    for _ in range(count):
        name, values = rng.choice(axes)
        current = getattr(policy, name)
        alternatives = [v for v in values if v != current]
        out.append(policy.replace(**{name: rng.choice(alternatives)}))
    return out


def search(families: dict, default_measured: dict, seed: int,
           budget: int, local: int, jobs: int) -> tuple:
    """Random search then greedy local refinement.

    Returns ``(best_policy, best_measured, evaluated_count)`` where the
    best is the lowest-total-cycles candidate satisfying
    :func:`dominates` (``(None, None, n)`` when nothing beat the
    default).
    """
    rng = random.Random(seed)
    seen = {DEFAULT_POLICY.digest()}
    best, best_measured = None, None
    evaluated = 0

    def consider(policy: Policy) -> None:
        nonlocal best, best_measured, evaluated
        if policy.digest() in seen:
            return
        seen.add(policy.digest())
        measured = evaluate(policy, families, jobs)
        evaluated += 1
        if measured is None or not dominates(measured, default_measured):
            return
        if best is None or total_cycles(measured) < total_cycles(
                best_measured):
            best, best_measured = policy, measured
            print(f"  new best after {evaluated} evaluations: "
                  f"{total_cycles(measured):.0f} cycles "
                  f"(default {total_cycles(default_measured):.0f})")

    for _ in range(budget):
        consider(random_candidate(rng))
    if best is not None and local > 0:
        # Greedy: restart the neighborhood whenever the incumbent moves.
        steps = local
        while steps > 0:
            incumbent = best
            for neighbor in neighbors(incumbent, rng, steps):
                steps -= 1
                consider(neighbor)
                if best is not incumbent:
                    break  # re-center on the improved incumbent
            if best is incumbent:
                break  # local optimum within budget
    return best, best_measured, evaluated


def family_deltas(default_measured: dict, tuned_measured: dict) -> dict:
    """Per-family report section: default vs tuned plus signed deltas."""
    out = {}
    for name, base in default_measured.items():
        tuned = tuned_measured[name]
        out[name] = {
            "default": base,
            "tuned": tuned,
            "delta": {
                "cycles": round(tuned["cycles"] - base["cycles"], 6),
                "spill_instructions": (tuned["spill_instructions"]
                                       - base["spill_instructions"]),
                "preference_satisfaction": round(
                    tuned["preference_satisfaction"]
                    - base["preference_satisfaction"], 6),
            },
        }
    return out


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run(args) -> dict:
    families = {
        name: (prepare_module(module, machine), machine)
        for name, (module, machine) in family_modules(args.seed).items()
    }
    print("measuring default policy ...")
    default_measured = evaluate(DEFAULT_POLICY, families, args.jobs)
    assert default_measured is not None, "default policy must allocate"

    if args.evaluate is not None:
        best = load_policy(args.evaluate)
        if best.is_default():
            raise SystemExit(f"--evaluate {args.evaluate}: resolves to "
                             "the default policy; nothing to compare")
        best_measured = evaluate(best, families, args.jobs)
        if best_measured is None:
            raise SystemExit(f"--evaluate {args.evaluate}: policy fails "
                             "to produce valid allocations")
        evaluated = 1
        mode = "evaluate"
    else:
        print(f"searching (seed={args.seed}, budget={args.budget}, "
              f"local={args.local}) ...")
        best, best_measured, evaluated = search(
            families, default_measured, args.seed, args.budget,
            args.local, args.jobs)
        mode = "search"

    tuner = {
        "mode": mode,
        "seed": args.seed,
        "budget": args.budget,
        "local": args.local,
        "jobs": args.jobs,
        "evaluated": evaluated,
        "allocator": "full",
        "regs": FAMILY_REGS,
        "workloads": {
            name: {"functions": len(prepared.functions),
                   "instructions": prepared.instruction_count()}
            for name, (prepared, _machine) in families.items()
        },
        "knobs": runtime_knobs(),
        **dataflow_backend_fields(),
        "python": sys.version.split()[0],
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
    }
    if args.evaluate is not None:
        tuner["evaluate"] = args.evaluate

    if best is None:
        print("no candidate dominated the default policy")
        return policy_tuning_payload(
            tuner, {name: {"default": entry}
                    for name, entry in default_measured.items()})

    report = policy_tuning_payload(
        tuner,
        family_deltas(default_measured, best_measured),
        best={"policy": best.to_dict(), "digest": best.digest()},
    )
    for name, section in report["families"].items():
        delta = section["delta"]
        print(f"{name:>12}: cycles {section['default']['cycles']:.0f} -> "
              f"{section['tuned']['cycles']:.0f} "
              f"({delta['cycles']:+.0f}), "
              f"spills {delta['spill_instructions']:+d}, "
              f"pref sat {delta['preference_satisfaction']:+.4f}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="workload + search seed (default 0)")
    parser.add_argument("--budget", type=int, default=40,
                        help="random-search candidate budget")
    parser.add_argument("--local", type=int, default=12,
                        help="greedy single-axis refinement budget")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker-pool width per evaluation")
    parser.add_argument("--evaluate", default=None, metavar="FILE|PRESET",
                        help="skip the search: measure this policy "
                             "against the default (the CI smoke mode)")
    parser.add_argument("--out", default="BENCH_policy_tuning.json")
    parser.add_argument("--emit-preset", default=None, metavar="PATH",
                        help="also write the winning policy as a preset "
                             "JSON file (fails if nothing won)")
    args = parser.parse_args(argv)
    if args.budget < 0 or args.local < 0:
        parser.error("--budget/--local must be >= 0")
    report = run(args)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.emit_preset is not None:
        best = report.get("best")
        if best is None:
            print("no winning policy; preset not written", file=sys.stderr)
            return 1
        policy = Policy.from_dict(best["policy"])
        preset = Path(args.emit_preset)
        preset.parent.mkdir(parents=True, exist_ok=True)
        preset.write_text(policy.to_json(indent=2) + "\n")
        print(f"wrote {args.emit_preset} (digest {policy.digest()[:12]})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
