"""Figure 11 — integrated selection vs. separate coalescing + volatility.

The paper's head-to-head at 24 registers (the middle-pressure model):
relative elapsed time of the three coalescing-only approaches, the
Lueh–Gross-style "aggressive+volatility" configuration, and our
full-preference coloring, all normalized to full preferences.

Expected shape (Section 6.3): the coalescing-only approaches trail
badly; aggressive+volatility comes close — the paper reports ours
better on four tests (best case jess, +16%), comparable on two, worse
on one (db, −4%).  We assert: every coalescing-only ratio > 1 in
geomean; the aggressive+volatility geomean ratio ≥ 1.0 (ours at least
ties overall); some test shows a clear (>5%) win for ours; and no test
loses by more than ~8% (the paper's worst case is −4%).
"""

from repro.reporting import format_ratio_table, geomean

from conftest import all_int_rows, emit, sweep

COLUMNS = ["briggs", "optimistic", "only-coalescing", "callcost", "full"]
CALL_HEAVY = ("jess", "db", "javac", "jack")


def test_fig11_relative_elapsed_24(benchmark):
    benchmark.pedantic(lambda: sweep("jess", "24", "callcost"),
                       rounds=1, iterations=1)
    rows = all_int_rows()
    cells = {
        (bench, alloc): sweep(bench, "24", alloc).cycles.total
        for bench in rows for alloc in COLUMNS
    }
    table = format_ratio_table(
        "Figure 11: relative estimated cycles vs full preferences, "
        "24 registers (1.0 = full preferences; higher = slower)",
        rows, COLUMNS, cells, base_column="full",
    )
    emit("fig11", table)

    # Coalescing-only approaches show worse performance.
    for rival in ("briggs", "optimistic", "only-coalescing"):
        ratio = geomean([cells[(r, rival)] / cells[(r, "full")]
                         for r in rows])
        assert ratio > 1.0, f"{rival} unexpectedly beat full preferences"

    # Aggressive+volatility is the close competitor.  The paper reports
    # ours better on four tests, comparable on two, worse on one (db,
    # -4%); on our substrate the wins shift toward the irregular-register
    # tests (the paper itself credits mpegaudio's win to paired loads)
    # while the volatility-only margin narrows — see EXPERIMENTS.md.
    callcost_ratios = {
        r: cells[(r, "callcost")] / cells[(r, "full")] for r in rows
    }
    assert geomean(list(callcost_ratios.values())) >= 1.0, (
        "integrated selection lost to aggressive+volatility overall"
    )
    assert max(callcost_ratios.values()) > 1.05, (
        "no test shows a clear win for integrated selection"
    )
    assert min(callcost_ratios.values()) >= 0.92, (
        "integrated selection lost a test by more than the paper-scale "
        "worst case"
    )
