"""Edit-churn latency: incremental re-allocation vs from-scratch.

Models the editing loop the session layer (:mod:`repro.service.session`)
exists for: a client holds a large module open and streams k small
edits, each a single-instruction change to one block of one function.
For every edited version the bench times

* the **scratch** path — :func:`repro.service.scheduler.execute_request`,
  the full parse/prepare/analyze/allocate pipeline, and
* the **incremental** path —
  :func:`repro.service.session.execute_delta_request` against a live
  :class:`~repro.service.session.SessionStore`, i.e. the
  ``allocate_delta`` wire path with a warm edit chain,

and reports total and per-edit p50/p99 latency for both, their ratio
(``speedup``), the session-store hit ratio, and the per-rung path
counts (``value``/``struct``/``rebuild``).  Constant edits ride the
value rung; ``--struct-edits`` mixes in dead-constant insertions, which
force re-prepare + analysis patching (the struct rung) and are reported
but not part of the headline speedup.

Exactness is asserted, not sampled: every edited version's
``result_digest`` must be byte-identical across the scratch path and
the incremental path in all three ``incremental_edits`` modes
(``on``/``off``/``validate``); any divergence fails the run.  One
incremental chain pass runs under the profiler so the report carries
the ``session``/``session/diff``/``session/patch`` phase breakdown next
to the pipeline phases it displaces.

Run as a script to emit the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_edit_churn.py \
        --bench spillstress --regs 24 --edits 12 --repeats 3 \
        --out BENCH_edit_churn.json

``check_perf_regression.py --edit`` gates the committed report: the
speedup floor is absolute (scratch and incremental share a run, so
runner speed divides out).
"""

import argparse
import json
import random
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.config import runtime_knobs
from repro.ir.instructions import ConstInst
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.profiling import profiled
from repro.regalloc import AllocationOptions
from repro.service.protocol import AllocationRequest, MachineSpec
from repro.service.scheduler import execute_request
from repro.service.session import SessionStore, execute_delta_request
from repro.service.schema import dataflow_backend_fields
from repro.workloads import make_benchmark

#: speedup floor the committed report (and the CI gate) must hold for
#: value-rung churn on large functions
SPEEDUP_FLOOR = 2.0


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def const_sites(module) -> list[tuple[int, str, int]]:
    sites = []
    for fi, func in enumerate(module.functions):
        for blk in func.blocks:
            for i, instr in enumerate(blk.instrs):
                if isinstance(instr, ConstInst) \
                        and isinstance(instr.value, int):
                    sites.append((fi, blk.label, i))
    return sites


def make_versions(base_ir: str, edits: int, struct_edits: int,
                  seed: int) -> list[dict]:
    """The edit chain: ``[{ir, kind}, ...]``, derived version from
    version the way an editor would produce them."""
    module = parse_module(base_ir)
    sites = const_sites(module)
    if not sites:
        raise SystemExit("workload has no integer constants to edit")
    rng = random.Random(seed)
    kinds = ["value"] * edits + ["struct"] * struct_edits
    rng.shuffle(kinds)
    versions = []
    for n, kind in enumerate(kinds):
        if kind == "value":
            fi, label, i = sites[n % len(sites)]
            blocks = {b.label: b for b in module.functions[fi].blocks}
            blocks[label].instrs[i].value += rng.randrange(1, 9)
        else:
            func = module.functions[rng.randrange(len(module.functions))]
            blk = func.blocks[rng.randrange(len(func.blocks))]
            blk.instrs.insert(rng.randrange(len(blk.instrs)),
                              ConstInst(func.new_vreg(), rng.randrange(64)))
            # Structure changed: re-derive the editable constant sites.
            sites = const_sites(module)
        versions.append({"ir": print_module(module), "kind": kind})
    return versions


def request_for(rid: str, ir: str, allocator: str, regs: int,
                base: str | None = None) -> AllocationRequest:
    return AllocationRequest(id=rid, ir=ir, allocator=allocator,
                             machine=MachineSpec(regs=regs),
                             verify=False, base_digest=base)


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def latency_summary(samples: list[float]) -> dict:
    return {
        "total_s": round(sum(samples), 4),
        "p50_ms": round(percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(samples, 0.99) * 1e3, 3),
    }


def time_scratch(versions, allocator, regs, repeats):
    best = [float("inf")] * len(versions)
    digests = [None] * len(versions)
    for _ in range(repeats):
        for n, version in enumerate(versions):
            req = request_for(f"s{n}", version["ir"], allocator, regs)
            start = time.perf_counter()
            response = execute_request(req)
            best[n] = min(best[n], time.perf_counter() - start)
            digests[n] = response.result_digest
    return best, digests


def run_chain(base_ir, versions, allocator, regs, mode,
              timed: bool = False):
    """One edit chain through the delta path; returns per-edit times,
    digests, and the store/paths bookkeeping of the final pass."""
    store = SessionStore(capacity=8)
    options = AllocationOptions(verify=False, incremental_edits=mode)
    warm = execute_delta_request(
        request_for("base", base_ir, allocator, regs, base=""),
        store, options)
    token = warm.session_digest
    times, digests, paths = [], [], {}
    for n, version in enumerate(versions):
        req = request_for(f"e{n}", version["ir"], allocator, regs,
                          base=token)
        info: dict = {}
        start = time.perf_counter()
        response = execute_delta_request(req, store, options, info=info)
        times.append(time.perf_counter() - start)
        digests.append(response.result_digest)
        assert response.session_digest == token
        assert info["base_hit"]
        for path, count in info["paths"].items():
            paths[path] = paths.get(path, 0) + count
    return {"times": times, "digests": digests, "paths": paths,
            "store": store.snapshot()}


def run(bench: str, regs: int, edits: int, struct_edits: int,
        repeats: int, allocator: str, seed: int) -> dict:
    module = make_benchmark(bench)
    base_ir = print_module(module)
    versions = make_versions(base_ir, edits, struct_edits, seed)
    n_instrs = sum(len(b.instrs) for f in module.functions
                   for b in f.blocks)

    scratch_best, scratch_digests = time_scratch(
        versions, allocator, regs, repeats)

    incr_best = [float("inf")] * len(versions)
    final = None
    for _ in range(repeats):
        final = run_chain(base_ir, versions, allocator, regs, "on")
        incr_best = [min(a, b) for a, b in zip(incr_best, final["times"])]
    assert final["digests"] == scratch_digests, \
        "incremental result digests diverge from the scratch path"

    # Exactness across the other modes (untimed single passes).
    for mode in ("off", "validate"):
        chain = run_chain(base_ir, versions, allocator, regs, mode)
        assert chain["digests"] == scratch_digests, \
            f"mode {mode!r} digests diverge from the scratch path"

    # One profiled pass for the phase breakdown (session/diff/patch
    # next to parse/prepare/allocate).
    with profiled() as prof:
        run_chain(base_ir, versions, allocator, regs, "on")

    value_idx = [n for n, v in enumerate(versions) if v["kind"] == "value"]
    value_scratch = [scratch_best[n] for n in value_idx]
    value_incr = [incr_best[n] for n in value_idx]
    speedup = round(sum(value_scratch) / sum(value_incr), 2)

    hits = final["store"]["hits"]
    misses = final["store"]["misses"]
    report = {
        "kind": "edit_churn",
        "bench": bench,
        "regs": regs,
        "allocator": allocator,
        "edits": edits,
        "struct_edits": struct_edits,
        "repeats": repeats,
        "seed": seed,
        "functions": len(module.functions),
        "instructions": n_instrs,
        "python": sys.version.split()[0],
        **dataflow_backend_fields(),
        "knobs": runtime_knobs(),
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "scratch": latency_summary(value_scratch),
        "incremental": {
            **latency_summary(value_incr),
            "paths": final["paths"],
            "session_hit_ratio": round(hits / max(1, hits + misses), 4),
        },
        "speedup": speedup,
        "fingerprints_identical": True,  # asserted above
        "modes_identical": True,         # asserted above
        "phases": prof.snapshot(digits=4),
    }
    if struct_edits:
        struct_idx = [n for n, v in enumerate(versions)
                      if v["kind"] == "struct"]
        report["struct"] = {
            "scratch": latency_summary([scratch_best[n]
                                        for n in struct_idx]),
            "incremental": latency_summary([incr_best[n]
                                            for n in struct_idx]),
            "speedup": round(
                sum(scratch_best[n] for n in struct_idx)
                / sum(incr_best[n] for n in struct_idx), 2),
        }
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="spillstress")
    parser.add_argument("--regs", type=int, default=24)
    parser.add_argument("--edits", type=int, default=12,
                        help="single-constant value edits (the headline "
                             "speedup is over these)")
    parser.add_argument("--struct-edits", type=int, default=4,
                        help="dead-insert structural edits mixed into "
                             "the chain (reported separately)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--allocator", default="chaitin")
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument("--out", default="BENCH_edit_churn.json")
    args = parser.parse_args(argv)
    if args.edits < 1 or args.repeats < 1:
        parser.error("--edits and --repeats must be >= 1")
    report = run(args.bench, args.regs, args.edits, args.struct_edits,
                 args.repeats, args.allocator, args.seed)
    print(f"value-edit churn: scratch {report['scratch']['total_s']}s "
          f"vs incremental {report['incremental']['total_s']}s "
          f"-> {report['speedup']}x "
          f"(hit ratio {report['incremental']['session_hit_ratio']}, "
          f"paths {report['incremental']['paths']})")
    if "struct" in report:
        print(f"struct-edit churn: {report['struct']['speedup']}x")
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if report["speedup"] < SPEEDUP_FLOOR:
        print(f"WARNING: speedup {report['speedup']} below the "
              f"{SPEEDUP_FLOOR}x floor", file=sys.stderr)


if __name__ == "__main__":
    main()
