"""Scaling curve of the simplify/select decision loops: index vs scan.

PR 5 replaced the allocator's full-scan decision loops (low-degree
rescans in ``simplify``, all-active rescans in
``choose_spill_candidate``, linear ready-queue scans in the preference
selector) with incrementally maintained priority indexes
(``repro.regalloc.worklist``).  This bench measures what that buys as
functions grow: synthetic programs from ~100 to ~3000 virtual registers
are allocated at several register-pressure levels with the indexed
engines (``REPRO_SELECT_INDEX=1``) and the retained scan oracles
(``REPRO_SELECT_INDEX=0``), and the per-phase profiler attributes the
difference to ``simplify``/``select`` (plus the ``select/choose``,
``select/color`` and ``simplify/spill_pick`` sub-phases).

Every workload is also run once under ``REPRO_SELECT_INDEX=validate``,
which asserts pick-for-pick identity between the engines and raises on
the first divergence; on top of that the bench itself compares the two
runs' allocation fingerprints (stats + a digest of the full assignment)
and exits nonzero on any mismatch — a speedup can never silently come
from changed results.

Run as a script to emit the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_selector_scaling.py \
        --repeats 2 --out BENCH_selector_scaling.json

``chaitin_best_s`` (the simplest allocator over the same function) is
recorded per workload as the machine-speed normalizer:
``check_perf_regression.py --selector`` gates on the chaitin-normalized
indexed select+simplify time, so runner speed cancels out exactly like
the allocator-speed gate.  Schema documented in DESIGN.md §5f.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.config import runtime_knobs
from repro.core import PreferenceDirectedAllocator
from repro.ir.clone import clone_function
from repro.ir.values import VReg
from repro.pipeline import prepare_function
from repro.profiling import profiled
from repro.regalloc import ChaitinAllocator, allocate_function
from repro.service.schema import dataflow_backend_fields
from repro.target.presets import make_machine
from repro.workloads.generator import generate_function
from repro.workloads.profiles import BenchmarkProfile

#: (name, target vreg scale) -> generator knobs.  ``stmts`` is the lever;
#: the pressure pool grows with it so big functions stay register-hungry.
SIZES = {
    100: dict(stmts=60, int_pool=12),
    300: dict(stmts=215, int_pool=20),
    1000: dict(stmts=740, int_pool=40),
    3000: dict(stmts=2250, int_pool=64),
}

#: register counts; fewer registers = higher pressure = more spill picks
PRESSURES = (8, 16)

SEED = 7


def make_workload(size: int, k: int):
    knobs = SIZES[size]
    profile = BenchmarkProfile(
        name=f"selscale{size}",
        stmts=knobs["stmts"],
        int_pool=knobs["int_pool"],
        call_prob=0.08, branch_prob=0.10, loop_prob=0.10,
        copy_prob=0.10, load_prob=0.15, store_prob=0.05,
    )
    machine = make_machine(k)
    func = generate_function(f"selscale{size}", profile, SEED)
    return func, machine


def count_vregs(func, machine) -> int:
    """Webs the round-0 coloring graphs actually see (post-renumber)."""
    from repro.analysis.renumber import renumber

    work = prepare_function(clone_function(func), machine)
    renumber(work)
    seen: set[VReg] = set()
    for blk in work.blocks:
        for instr in blk.instrs:
            for v in list(instr.defs()) + list(instr.uses()):
                if isinstance(v, VReg):
                    seen.add(v)
    return len(seen)


def fingerprint(result) -> dict:
    """Stats plus a digest of the complete final assignment."""
    stats = result.stats
    assign = "".join(
        f"{v.id}:{p}," for v, p in
        sorted(result.assignment.items(), key=lambda kv: kv[0].id)
    )
    return {
        "moves_eliminated": stats.moves_eliminated,
        "spill_instructions": stats.spill_loads + stats.spill_stores,
        "spilled_webs": stats.spilled_webs,
        "rounds": stats.rounds,
        "assignment_sha256": hashlib.sha256(
            assign.encode()
        ).hexdigest()[:16],
    }


def phase_total(snapshot: dict, leaf: str) -> float:
    """Seconds accumulated under any path ending in ``/<leaf>``."""
    return round(sum(
        entry["s"] for path, entry in snapshot.items()
        if path == leaf or path.endswith(f"/{leaf}")
    ), 4)


def timed_run(func, machine, allocator_factory, mode: str, repeats: int):
    """Best-of-``repeats`` allocation under ``REPRO_SELECT_INDEX=mode``."""
    os.environ["REPRO_SELECT_INDEX"] = mode
    best = None
    result = None
    snapshot = None
    for _ in range(repeats):
        work = prepare_function(clone_function(func), machine)
        with profiled() as prof:
            start = time.perf_counter()
            result = allocate_function(work, machine, allocator_factory())
            elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            snapshot = prof.snapshot(digits=4)
    return best, snapshot, result


def run_workload(size: int, k: int, repeats: int) -> dict:
    func, machine = make_workload(size, k)
    vregs = count_vregs(func, machine)
    entry = {
        "name": f"v{size}_k{k}",
        "target_vregs": size,
        "vregs": vregs,
        "k": k,
    }

    chaitin_best, _, _ = timed_run(func, machine, ChaitinAllocator, "1",
                                   repeats)
    entry["chaitin_best_s"] = round(chaitin_best, 4)

    engines = {}
    fingerprints = {}
    for label, mode in (("scan", "0"), ("indexed", "1")):
        best, snapshot, result = timed_run(
            func, machine, PreferenceDirectedAllocator, mode, repeats
        )
        select_s = phase_total(snapshot, "select")
        simplify_s = phase_total(snapshot, "simplify")
        engines[label] = {
            "total_s": round(best, 4),
            "select_s": select_s,
            "simplify_s": simplify_s,
            "select_simplify_s": round(select_s + simplify_s, 4),
            "phases": {
                leaf: phase_total(snapshot, leaf)
                for leaf in ("choose", "color", "spill_pick")
            },
        }
        fingerprints[label] = fingerprint(result)
    entry.update(engines)

    if fingerprints["scan"] != fingerprints["indexed"]:
        raise SystemExit(
            f"{entry['name']}: engines disagree: {fingerprints}"
        )
    entry["fingerprint"] = fingerprints["indexed"]

    # Pick-for-pick cross-check: raises AllocationError on divergence.
    _, _, vresult = timed_run(func, machine, PreferenceDirectedAllocator,
                              "validate", 1)
    if fingerprint(vresult) != fingerprints["indexed"]:
        raise SystemExit(f"{entry['name']}: validate run diverged")
    entry["validate_ok"] = True

    entry["speedup_select_simplify"] = round(
        engines["scan"]["select_simplify_s"]
        / max(engines["indexed"]["select_simplify_s"], 1e-9), 2
    )
    # The chaitin-normalized gate metric: indexed decision-loop seconds
    # per second of chaitin over the same function on the same machine.
    entry["select_ratio_vs_chaitin"] = round(
        engines["indexed"]["select_simplify_s"] / chaitin_best, 3
    )
    return entry


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        default=sorted(SIZES), choices=sorted(SIZES))
    parser.add_argument("--pressures", type=int, nargs="*",
                        default=list(PRESSURES))
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="small-N CI configuration (sizes up to 1000, "
                             "pressure 8, two repeats)")
    parser.add_argument("--out", default="BENCH_selector_scaling.json")
    args = parser.parse_args(argv)
    if args.smoke:
        # Two repeats: the ratio gate compares best-of-run times, and a
        # single repeat on the sub-second workloads is all noise.
        args.sizes, args.pressures, args.repeats = [100, 300, 1000], [8], 2
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    for k in args.pressures:
        if k < 2:
            parser.error("--pressures entries must be >= 2")

    prior_mode = os.environ.get("REPRO_SELECT_INDEX")
    report = {
        "bench": "selector_scaling",
        "seed": SEED,
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        # Resolving the backend here also front-loads the (lazy) numpy
        # import, keeping it out of the profiled phase breakdowns.
        **dataflow_backend_fields(),
        "knobs": runtime_knobs(),
        "git_commit": git_commit(),
        "hostname": socket.gethostname(),
        "workloads": [],
    }
    try:
        for size in args.sizes:
            for k in args.pressures:
                entry = run_workload(size, k, args.repeats)
                report["workloads"].append(entry)
                print(f"{entry['name']:>10} ({entry['vregs']} vregs): "
                      f"scan {entry['scan']['select_simplify_s']:.3f}s -> "
                      f"indexed {entry['indexed']['select_simplify_s']:.3f}s "
                      f"({entry['speedup_select_simplify']}x, validate ok)")
    finally:
        if prior_mode is None:
            os.environ.pop("REPRO_SELECT_INDEX", None)
        else:
            os.environ["REPRO_SELECT_INDEX"] = prior_mode

    largest = max(report["workloads"], key=lambda w: (w["vregs"], -w["k"]))
    report["largest_workload"] = largest["name"]
    report["largest_speedup_select_simplify"] = \
        largest["speedup_select_simplify"]
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} (largest workload {largest['name']}: "
          f"{largest['speedup_select_simplify']}x)")


if __name__ == "__main__":
    main()
