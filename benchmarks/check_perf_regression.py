"""Perf-regression gate: a fresh bench report vs the committed baseline.

CI runners and the machine that produced ``BENCH_allocator_speed.json``
differ in raw speed, so absolute ``best_s`` values cannot be compared
directly.  The gate normalizes by the ``chaitin`` allocator — the
simplest, most stable configuration — and checks every other
allocator's time *relative to chaitin* against the committed report:

    ratio(report, name) = best_s[name] / best_s[chaitin]
    ratio(fresh, name) <= ratio(committed, name) * (1 + tolerance)

A real perf regression (say, the incremental spill-round path silently
falling back to from-scratch re-analysis) inflates the spilling
allocators' ratios well past any plausible noise band, while uniform
machine slowness cancels out.  The derived ``speedup_full`` figure is
checked the same way.  Behavioral fingerprints (moves, spills, cycles)
are a separate CI step; this gate is about time only.

``--selector`` switches the gate to ``BENCH_selector_scaling.json``
reports: per workload, the *chaitin-normalized* indexed select+simplify
time (``select_ratio_vs_chaitin`` — decision-loop seconds per second of
chaitin over the same function) must stay within tolerance of the
committed baseline, and every fresh workload must carry
``validate_ok`` (the pick-for-pick identity cross-check ran).  A
regression here means the priority indexes degraded back toward the
scan oracles' scaling curve.

``--dataflow`` gates the analysis kernels instead: per allocator, the
chaitin-normalized combined dataflow time — every profiled phase whose
leaf is ``liveness``, ``interference`` or ``CPG`` (parents are
inclusive of their sub-phases, so ``solve``/``rows``/``closure``
children are not double-counted) — must stay within tolerance of the
committed report.  Reports from different dataflow backends are
refused outright (the ``backend`` field each report carries): an int
report sneaking in as the fresh side would otherwise read as a 2x
"regression" of the numpy kernels, and vice versa as a free pass.

``--edit`` gates ``BENCH_edit_churn.json`` reports.  Scratch and
incremental latencies come from the same run on the same machine, so
the ``speedup`` figure is already runner-independent and is checked two
ways: against an absolute floor (2.0x — the edit path's reason to
exist) scaled by the tolerance for noisy smoke runs, and against the
committed report's speedup within tolerance.  Every fresh report must
also carry ``fingerprints_identical`` and ``modes_identical`` — the
bench asserts per-edit result digests match the scratch path in all
``incremental_edits`` modes, and those flags prove the assertions ran.

``--dispatch`` gates ``BENCH_dispatch_overhead.json`` reports.  The
pool-pickle and pool-codec times come from the same run on the same
machine, so the ``speedup`` figure is runner-independent and is checked
like the edit gate: against the absolute 1.5x floor (scaled by the
tolerance for noisy smoke runs) and against the committed report's
speedup within tolerance.  Every fresh report must carry
``digests_identical`` — the bench asserts the sweep results are
byte-identical across serial and all three ``REPRO_WIRE`` modes, and
that flag proves the assertion ran — and the codec run must show the
cross-batch encode memo fielding hits (the dedup actually engaged)
through real shared-memory segments unless the runner forced the
inline fallback.

``--policy`` gates ``BENCH_policy_tuning.json`` reports.  The tuner's
measurements are *simulated* cycle totals — deterministic, so unlike
every wall-clock gate they are compared for exact equality: per family
the fresh default and tuned measurements must byte-match the committed
report (a drift means allocator behavior changed and the preset's
provenance is stale), the tuned side must not regress cycles on any
family, at least one family must strictly improve, and the fresh
report's best-policy digest must match the committed one (proving the
committed ``tuned_v1`` preset is the policy the report describes).

``--cluster`` gates ``BENCH_cluster_throughput.json`` reports.  The
comparable quantity is ``scaling_vs_single`` — each point's throughput
relative to the 1-shard point *of the same run*, the cluster analog of
chaitin normalization (runner speed divides out).  Per shard count
present in both reports, fresh scaling must stay within tolerance of
committed; additionally every fresh point must be error-free, and
multi-lap multi-shard points must show a nonzero shared-cache hit
ratio (the peer tier actually fielding cross-shard lookups).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def ratios(report: dict, base: str = "chaitin") -> dict[str, float]:
    allocators = report["allocators"]
    base_s = allocators[base]["best_s"]
    if base_s <= 0:
        raise SystemExit(f"degenerate baseline time for {base!r}: {base_s}")
    return {
        name: entry["best_s"] / base_s for name, entry in allocators.items()
    }


def check_selector(fresh: dict, committed: dict,
                   tolerance: float) -> list[str]:
    """Gate a selector-scaling report against the committed baseline."""
    failures = []
    committed_w = {w["name"]: w for w in committed["workloads"]}
    fresh_w = {w["name"]: w for w in fresh["workloads"]}
    print(f"{'workload':>12} {'committed':>10} {'fresh':>10} {'margin':>8}")
    for name, want_entry in sorted(committed_w.items()):
        got_entry = fresh_w.get(name)
        want = want_entry["select_ratio_vs_chaitin"]
        if got_entry is None:
            print(f"{name:>12} {want:>10.3f} {'absent':>10} {'':>8}")
            continue
        got = got_entry["select_ratio_vs_chaitin"]
        margin = got / want - 1.0
        flag = " REGRESSION" if margin > tolerance else ""
        print(f"{name:>12} {want:>10.3f} {got:>10.3f} {margin:>+7.0%}{flag}")
        if margin > tolerance:
            failures.append(
                f"{name}: select+simplify at {got:.3f}x chaitin vs "
                f"committed {want:.3f}x (+{margin:.0%} > +{tolerance:.0%})"
            )
    for name, entry in sorted(fresh_w.items()):
        if not entry.get("validate_ok"):
            failures.append(f"{name}: validate_ok missing from fresh report")
    return failures


#: profiled-phase leaves that make up the combined dataflow metric
DATAFLOW_LEAVES = ("liveness", "interference", "CPG")


def dataflow_seconds(entry: dict) -> float:
    """Combined liveness+interference+CPG seconds of one allocator."""
    phases = entry.get("phases") or {}
    return sum(
        v["s"] for path, v in phases.items()
        if path.rsplit("/", 1)[-1] in DATAFLOW_LEAVES
    )


def check_dataflow(fresh: dict, committed: dict,
                   tolerance: float) -> list[str]:
    """Gate the chaitin-normalized dataflow phase time per allocator."""
    for side, report in (("fresh", fresh), ("committed", committed)):
        if not report.get("backend"):
            raise SystemExit(
                f"{side} report carries no dataflow 'backend' field; "
                "regenerate it with bench_allocator_speed.py"
            )
    if fresh["backend"] != committed["backend"]:
        raise SystemExit(
            "refusing to compare dataflow phases across backends: "
            f"fresh is {fresh['backend']!r}, committed is "
            f"{committed['backend']!r}"
        )
    base_fresh = fresh["allocators"]["chaitin"]["best_s"]
    base_committed = committed["allocators"]["chaitin"]["best_s"]
    if base_fresh <= 0 or base_committed <= 0:
        raise SystemExit("degenerate chaitin baseline time")

    failures = []
    print(f"{'allocator':>16} {'committed':>10} {'fresh':>10} {'margin':>8}")
    for name, want_entry in sorted(committed["allocators"].items()):
        want_s = dataflow_seconds(want_entry)
        got_entry = fresh["allocators"].get(name)
        if got_entry is None or want_s <= 0:
            state = "absent" if got_entry is None else "no-phases"
            print(f"{name:>16} {want_s:>10.4f} {state:>10} {'':>8}")
            continue
        want = want_s / base_committed
        got = dataflow_seconds(got_entry) / base_fresh
        margin = got / want - 1.0
        flag = " REGRESSION" if margin > tolerance else ""
        print(f"{name:>16} {want:>10.3f} {got:>10.3f} {margin:>+7.0%}{flag}")
        if margin > tolerance:
            failures.append(
                f"{name}: dataflow phases at {got:.3f}x chaitin vs "
                f"committed {want:.3f}x (+{margin:.0%} > +{tolerance:.0%})"
            )
    return failures


#: absolute speedup floor for value-rung edit churn
EDIT_SPEEDUP_FLOOR = 2.0


def check_edit(fresh: dict, committed: dict, tolerance: float) -> list[str]:
    """Gate an edit-churn report: speedup floor + exactness flags."""
    for side, report in (("fresh", fresh), ("committed", committed)):
        if report.get("kind") != "edit_churn":
            raise SystemExit(
                f"{side} report is not an edit_churn report; "
                "regenerate it with bench_edit_churn.py"
            )
    failures = []
    for flag in ("fingerprints_identical", "modes_identical"):
        if not fresh.get(flag):
            failures.append(f"fresh report lacks {flag} — the bench's "
                            "exactness assertions did not run clean")
    got, want = fresh["speedup"], committed["speedup"]
    floor = EDIT_SPEEDUP_FLOOR * (1 - tolerance)
    margin = got / want - 1.0
    flag = " REGRESSION" if (-margin > tolerance or got < floor) else ""
    print(f"{'edit speedup':>16} {want:>10.2f} {got:>10.2f} "
          f"{margin:>+7.0%}{flag}  (floor {floor:.2f})")
    if got < floor:
        failures.append(
            f"incremental speedup {got:.2f}x below the "
            f"{EDIT_SPEEDUP_FLOOR:.1f}x floor (tolerance-scaled "
            f"{floor:.2f})")
    if -margin > tolerance:
        failures.append(
            f"speedup {got:.2f}x vs committed {want:.2f}x "
            f"(-{-margin:.0%} worse than -{tolerance:.0%} allowed)")
    hit_ratio = fresh["incremental"].get("session_hit_ratio", 0)
    if hit_ratio <= 0:
        failures.append("session store fielded no hits — every edit "
                        "rebuilt from scratch")
    return failures


#: absolute pool-pickle over pool-codec speedup floor for the
#: small-function dispatch workload
DISPATCH_SPEEDUP_FLOOR = 1.5


def check_dispatch(fresh: dict, committed: dict,
                   tolerance: float) -> list[str]:
    """Gate a dispatch-overhead report: speedup floor + exactness."""
    for side, report in (("fresh", fresh), ("committed", committed)):
        if report.get("kind") != "dispatch_overhead":
            raise SystemExit(
                f"{side} report is not a dispatch_overhead report; "
                "regenerate it with bench_dispatch_overhead.py"
            )
    failures = []
    if not fresh.get("digests_identical"):
        failures.append("fresh report lacks digests_identical — the "
                        "bench's cross-mode exactness assertion did "
                        "not run clean")
    got, want = fresh["speedup"], committed["speedup"]
    floor = DISPATCH_SPEEDUP_FLOOR * (1 - tolerance)
    margin = got / want - 1.0
    flag = " REGRESSION" if (-margin > tolerance or got < floor) else ""
    print(f"{'dispatch speedup':>16} {want:>10.2f} {got:>10.2f} "
          f"{margin:>+7.0%}{flag}  (floor {floor:.2f})")
    if got < floor:
        failures.append(
            f"codec dispatch speedup {got:.2f}x below the "
            f"{DISPATCH_SPEEDUP_FLOOR:.1f}x floor (tolerance-scaled "
            f"{floor:.2f})")
    if -margin > tolerance:
        failures.append(
            f"speedup {got:.2f}x vs committed {want:.2f}x "
            f"(-{-margin:.0%} worse than -{tolerance:.0%} allowed)")
    stats = fresh.get("pool_codec", {}).get("wire", {})
    if stats.get("encode_memo_hits", 0) <= 0:
        failures.append(
            "codec wire encode memo fielded no hits — the cross-batch "
            "digest dedup did not engage")
    if (stats.get("shm_segments", 0) <= 0
            and stats.get("inline_batches", 0) <= 0):
        failures.append("codec wire recorded neither shared-memory "
                        "segments nor inline batches")
    return failures


def check_policy(fresh: dict, committed: dict) -> list[str]:
    """Gate a policy-tuning report: exact reproduction + no regression."""
    for side, report in (("fresh", fresh), ("committed", committed)):
        if report.get("type") != "policy_tuning":
            raise SystemExit(
                f"{side} report is not a policy_tuning report; "
                "regenerate it with tune_policy.py"
            )
    failures = []
    if "best" not in committed:
        raise SystemExit("committed report carries no winning policy")
    if fresh.get("best", {}).get("digest") != committed["best"]["digest"]:
        failures.append(
            "best-policy digest mismatch: fresh "
            f"{fresh.get('best', {}).get('digest')!r} vs committed "
            f"{committed['best']['digest']!r}"
        )
    improved = False
    print(f"{'family':>12} {'default':>10} {'tuned':>10} {'delta':>8}")
    for name, want in sorted(committed["families"].items()):
        got = fresh["families"].get(name)
        if got is None:
            failures.append(f"{name}: family missing from fresh report")
            continue
        for side in ("default", "tuned"):
            if got.get(side) != want.get(side):
                failures.append(
                    f"{name}: fresh {side} measurement differs from "
                    f"committed — allocator behavior drifted "
                    f"(fresh {got.get(side)!r} vs {want.get(side)!r})"
                )
        base = got["default"]["cycles"]
        tuned = got["tuned"]["cycles"]
        print(f"{name:>12} {base:>10.0f} {tuned:>10.0f} "
              f"{tuned - base:>+8.0f}")
        if tuned > base:
            failures.append(
                f"{name}: tuned policy regresses cycles "
                f"({tuned:.0f} > {base:.0f})"
            )
        if tuned < base:
            improved = True
    if not improved:
        failures.append("tuned policy improves cycles on no family")
    return failures


def check_cluster(fresh: dict, committed: dict,
                  tolerance: float) -> list[str]:
    """Gate a cluster-throughput report against the committed baseline."""
    for side, report in (("fresh", fresh), ("committed", committed)):
        if report.get("kind") != "cluster_throughput":
            raise SystemExit(
                f"{side} report is not a cluster_throughput report; "
                "regenerate it with bench_service_throughput.py --shards"
            )
    failures = []
    fresh_points = {p["shards"]: p for p in fresh["points"]}
    committed_points = {p["shards"]: p for p in committed["points"]}

    for shards, point in sorted(fresh_points.items()):
        if point["errors"]:
            failures.append(
                f"{shards} shard(s): {point['errors']} failed requests "
                f"(samples: {point['error_samples']})"
            )
        if point.get("warmup", {}).get("errors"):
            failures.append(
                f"{shards} shard(s): {point['warmup']['errors']} failed "
                "warmup requests"
            )
        if (fresh.get("laps", 1) > 1 and shards > 1
                and point["shared_cache"]["hit_ratio"] <= 0):
            failures.append(
                f"{shards} shard(s): shared-cache hit ratio is zero — "
                "the peer tier fielded no cross-shard hits"
            )

    print(f"{'shards':>8} {'committed':>10} {'fresh':>10} {'margin':>8}")
    for shards, want_point in sorted(committed_points.items()):
        want = want_point.get("scaling_vs_single")
        got_point = fresh_points.get(shards)
        if got_point is None or want is None:
            state = "absent" if got_point is None else "no-scaling"
            print(f"{shards:>8} {want if want else '':>10} {state:>10}")
            continue
        got = got_point.get("scaling_vs_single")
        if got is None:
            failures.append(f"{shards} shard(s): fresh report carries no "
                            "scaling_vs_single (no 1-shard point?)")
            continue
        margin = got / want - 1.0
        flag = " REGRESSION" if -margin > tolerance else ""
        print(f"{shards:>8} {want:>10.2f} {got:>10.2f} {margin:>+7.0%}{flag}")
        if -margin > tolerance:
            failures.append(
                f"{shards} shard(s): throughput scaling {got:.2f}x single "
                f"vs committed {want:.2f}x (-{-margin:.0%} worse than "
                f"-{tolerance:.0%} allowed)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="report from this run")
    parser.add_argument("committed", type=Path,
                        help="committed baseline report")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed relative slowdown per allocator "
                             "(default 0.40; CI smoke runs few repeats)")
    parser.add_argument("--selector", action="store_true",
                        help="gate BENCH_selector_scaling.json reports on "
                             "chaitin-normalized select+simplify time")
    parser.add_argument("--dataflow", action="store_true",
                        help="gate the chaitin-normalized combined "
                             "liveness+interference+CPG phase time per "
                             "allocator (same-backend reports only)")
    parser.add_argument("--cluster", action="store_true",
                        help="gate BENCH_cluster_throughput.json reports "
                             "on single-shard-normalized throughput "
                             "scaling, zero errors, and a live shared "
                             "cache tier")
    parser.add_argument("--edit", action="store_true",
                        help="gate BENCH_edit_churn.json reports on the "
                             "incremental-vs-scratch speedup floor, the "
                             "committed speedup, and the exactness flags")
    parser.add_argument("--policy", action="store_true",
                        help="gate BENCH_policy_tuning.json reports on "
                             "exact measurement reproduction, the "
                             "no-regression rule, and the preset digest")
    parser.add_argument("--dispatch", action="store_true",
                        help="gate BENCH_dispatch_overhead.json reports "
                             "on the pool-pickle over pool-codec "
                             "speedup floor, the committed speedup, "
                             "and the cross-mode exactness flag")
    args = parser.parse_args(argv)
    if sum((args.selector, args.dataflow, args.cluster, args.edit,
            args.policy, args.dispatch)) > 1:
        parser.error("--selector, --dataflow, --cluster, --edit, "
                     "--policy and --dispatch are mutually exclusive")

    fresh = json.loads(args.fresh.read_text())
    committed = json.loads(args.committed.read_text())

    if args.policy:
        failures = check_policy(fresh, committed)
        if failures:
            print("\npolicy tuning gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("\npolicy tuning gate passed (exact reproduction)")
        return 0

    if args.dispatch:
        failures = check_dispatch(fresh, committed, args.tolerance)
        if failures:
            print("\ndispatch overhead gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("\ndispatch overhead gate passed "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    if args.edit:
        failures = check_edit(fresh, committed, args.tolerance)
        if failures:
            print("\nedit churn perf gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("\nedit churn perf gate passed "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    if args.cluster:
        failures = check_cluster(fresh, committed, args.tolerance)
        if failures:
            print("\ncluster perf regression gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("\ncluster perf regression gate passed "
              f"(tolerance -{args.tolerance:.0%})")
        return 0

    if args.dataflow:
        failures = check_dataflow(fresh, committed, args.tolerance)
        if failures:
            print("\ndataflow perf regression gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("\ndataflow perf regression gate passed "
              f"(tolerance +{args.tolerance:.0%})")
        return 0

    if args.selector:
        failures = check_selector(fresh, committed, args.tolerance)
        if failures:
            print("\nselector perf regression gate FAILED:", file=sys.stderr)
            for line in failures:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("\nselector perf regression gate passed "
              f"(tolerance +{args.tolerance:.0%})")
        return 0

    fresh_r, committed_r = ratios(fresh), ratios(committed)

    failures = []
    print(f"{'allocator':>16} {'committed':>10} {'fresh':>10} {'margin':>8}")
    for name, want in sorted(committed_r.items()):
        got = fresh_r.get(name)
        if got is None:
            print(f"{name:>16} {want:>10.2f} {'absent':>10} {'':>8}")
            continue
        margin = got / want - 1.0
        flag = " REGRESSION" if margin > args.tolerance else ""
        print(f"{name:>16} {want:>10.2f} {got:>10.2f} {margin:>+7.0%}{flag}")
        if margin > args.tolerance:
            failures.append(
                f"{name}: {got:.2f}x chaitin vs committed {want:.2f}x "
                f"(+{margin:.0%} > +{args.tolerance:.0%})"
            )

    if "speedup_full" in committed and "speedup_full" in fresh:
        # speedup_full divides a fixed historical constant by full's
        # absolute time, so normalize it by the chaitin times too.
        scale = (fresh["allocators"]["chaitin"]["best_s"]
                 / committed["allocators"]["chaitin"]["best_s"])
        normalized = fresh["speedup_full"] * scale
        floor = committed["speedup_full"] * (1 - args.tolerance)
        print(f"{'speedup_full':>16} {committed['speedup_full']:>10.2f} "
              f"{normalized:>10.2f} (normalized; floor {floor:.2f})")
        if normalized < floor:
            failures.append(
                f"speedup_full: {normalized:.2f} normalized < {floor:.2f}"
            )

    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nperf regression gate passed "
          f"(tolerance +{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
