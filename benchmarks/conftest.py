"""Shared machinery for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` file regenerates one figure of the paper's
evaluation: it sweeps the SPECjvm98-like suite through the relevant
allocators and register-usage models, prints the same rows/series the
paper reports, and asserts the figure's qualitative *shape* with
generous tolerances (the substrate is a simulator, not the authors'
Itanium; see EXPERIMENTS.md).

Sweep results are cached per session so the benchmarks stay fast:
``sweep(bench, model, allocator_key)`` runs the pipeline once per unique
combination.  ``benchmark(...)`` fixtures time one representative
allocation per figure so ``--benchmark-only`` reports meaningful
allocation-throughput numbers too.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import PreferenceConfig, PreferenceDirectedAllocator
from repro.pipeline import ModuleAllocation, allocate_module, prepare_module
from repro.regalloc import (
    BriggsAllocator,
    CallCostAllocator,
    ChaitinAllocator,
    IteratedCoalescingAllocator,
    OptimisticCoalescingAllocator,
    PriorityAllocator,
)
from repro.target.presets import high_pressure, low_pressure, middle_pressure
from repro.workloads import BENCHMARK_NAMES, make_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MODELS = {
    "16": high_pressure,
    "24": middle_pressure,
    "32": low_pressure,
}

ALLOCATORS = {
    "chaitin": ChaitinAllocator,
    "briggs": BriggsAllocator,
    "iterated": IteratedCoalescingAllocator,
    "optimistic": OptimisticCoalescingAllocator,
    "callcost": CallCostAllocator,
    "priority": PriorityAllocator,
    "only-coalescing": lambda: PreferenceDirectedAllocator(
        PreferenceConfig.only_coalescing()
    ),
    "full": PreferenceDirectedAllocator,
    "full-nocpg": lambda: PreferenceDirectedAllocator(
        name="full-nocpg", use_cpg=False
    ),
    "only-coalescing-nocpg": lambda: PreferenceDirectedAllocator(
        PreferenceConfig.only_coalescing(), name="only-coalescing-nocpg",
        use_cpg=False,
    ),
    "no-volatility": lambda: PreferenceDirectedAllocator(
        PreferenceConfig(volatility=False), name="no-volatility"
    ),
    "no-paired": lambda: PreferenceDirectedAllocator(
        PreferenceConfig(paired_loads=False), name="no-paired"
    ),
    "no-byte": lambda: PreferenceDirectedAllocator(
        PreferenceConfig(byte_loads=False), name="no-byte"
    ),
    "no-coalesce": lambda: PreferenceDirectedAllocator(
        PreferenceConfig(coalesce=False, dedicated=False),
        name="no-coalesce",
    ),
}

_prepared_cache: dict[tuple[str, str], object] = {}
_sweep_cache: dict[tuple[str, str, str], ModuleAllocation] = {}


def prepared_module(bench: str, model: str):
    key = (bench, model)
    if key not in _prepared_cache:
        machine = MODELS[model]()
        _prepared_cache[key] = (prepare_module(make_benchmark(bench),
                                               machine), machine)
    return _prepared_cache[key]


def sweep(bench: str, model: str, allocator: str) -> ModuleAllocation:
    """Cached allocation of one benchmark under one model/allocator."""
    key = (bench, model, allocator)
    if key not in _sweep_cache:
        prepared, machine = prepared_module(bench, model)
        _sweep_cache[key] = allocate_module(
            prepared, machine, ALLOCATORS[allocator]()
        )
    return _sweep_cache[key]


def fp_rows() -> list[str]:
    """The float-result rows the paper adds for mpegaudio and mtrt."""
    return ["mpegaudio fp", "mtrt fp"]


def emit(name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def run_one_allocation():
    """Callable for pytest-benchmark: one fresh allocation, timed."""

    def runner(bench: str, model: str, allocator: str):
        prepared, machine = prepared_module(bench, model)

        def work():
            return allocate_module(prepared, machine,
                                   ALLOCATORS[allocator]())

        return work

    return runner


def all_int_rows() -> list[str]:
    return list(BENCHMARK_NAMES)
